// Fig. 6d — "Memory Space on Real Datasets".
//
// Reports each algorithm's *intermediate* memory: the partial-sum caches,
// the MST + diff lists, the outer caches, and (for mtx-SR) the SVD factor
// matrices — the same accounting the paper plots (the O(n²) score output
// is excluded; its size is fixed by n and identical across iterative
// methods; we print the number of live score buffers separately).
//
// Expected shapes: mtx-SR is orders of magnitude above the rest and is the
// reason the paper runs it only on DBLP; OIP's intermediate memory stays
// within a small factor of psum-SR's; costs are flat in K.
#include <cstdio>

#include "simrank/benchlib/datasets.h"
#include "simrank/common/string_util.h"
#include "simrank/common/table_printer.h"
#include "simrank/common/timer.h"
#include "simrank/core/engine.h"

namespace simrank::bench {
namespace {

void CoauthorPanel() {
  PrintSection("Fig 6d, panel 1: COAUTH snapshots (eps = 1e-3, C = 0.6)");
  TablePrinter table(
      {"Dataset", "algorithm", "aux memory", "score bufs", "vs psum-SR"});
  for (const Dataset& dataset : AllCoauthorSnapshots()) {
    uint64_t psum_bytes = 0;
    for (Algorithm algorithm : {Algorithm::kPsum, Algorithm::kOip,
                                Algorithm::kOipDsr, Algorithm::kMtx}) {
      EngineOptions options;
      options.algorithm = algorithm;
      options.simrank.damping = 0.6;
      options.simrank.epsilon = 1e-3;
      options.mtx.rank = 64;
      auto run = ComputeSimRank(dataset.graph, options);
      OIPSIM_CHECK(run.ok());
      if (algorithm == Algorithm::kPsum) {
        psum_bytes = run->stats.aux_peak_bytes;
      }
      table.AddRow(
          {dataset.name, AlgorithmName(algorithm),
           FormatBytes(run->stats.aux_peak_bytes),
           StrFormat("%u", run->stats.score_buffers),
           psum_bytes > 0
               ? StrFormat("%.1fx", static_cast<double>(
                                        run->stats.aux_peak_bytes) /
                                        static_cast<double>(psum_bytes))
               : "-"});
    }
    table.AddSeparator();
  }
  table.Print();
}

void SweepPanel(const Dataset& dataset, const std::vector<uint32_t>& ks,
                const char* title) {
  PrintSection(title);
  TablePrinter table({"K", "psum-SR", "OIP-SR", "OIP-DSR"});
  for (uint32_t k : ks) {
    std::vector<std::string> row{StrFormat("%u", k)};
    for (Algorithm algorithm :
         {Algorithm::kPsum, Algorithm::kOip, Algorithm::kOipDsr}) {
      EngineOptions options;
      options.algorithm = algorithm;
      options.simrank.damping = 0.6;
      options.simrank.iterations = k;
      auto run = ComputeSimRank(dataset.graph, options);
      OIPSIM_CHECK(run.ok());
      row.push_back(FormatBytes(run->stats.aux_peak_bytes));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("(flat in K: partial sums are freed after every iteration, "
              "as in the paper)\n");
}

}  // namespace
}  // namespace simrank::bench

int main() {
  using namespace simrank::bench;
  CoauthorPanel();
  SweepPanel(MakeWebGraph(), {5, 10, 15},
             "Fig 6d, panel 2: WEBG, intermediate memory vs K");
  SweepPanel(MakeCitationGraph(), {5, 10, 15},
             "Fig 6d, panel 3: CITN, intermediate memory vs K");
  return 0;
}
