// Fig. 6b — "Amortized Time on Real Data".
//
// Splits OIP-SR and OIP-DSR runtime into the two phases of Proposition 5:
// "Build MST" (DMST-Reduce) and "Share Sums" (the iterative phase), on the
// WEBG and CITN datasets at eps = 1e-3. The paper's observations to
// reproduce: Build MST is a small fraction for OIP-SR but a noticeably
// larger *fraction* for OIP-DSR (same absolute setup cost, much shorter
// iterative phase).
#include <cstdio>

#include "simrank/benchlib/datasets.h"
#include "simrank/common/string_util.h"
#include "simrank/common/table_printer.h"
#include "simrank/common/timer.h"
#include "simrank/core/engine.h"

namespace simrank::bench {
namespace {

void RunDataset(const Dataset& dataset, TablePrinter* table) {
  for (Algorithm algorithm : {Algorithm::kOip, Algorithm::kOipDsr}) {
    EngineOptions options;
    options.algorithm = algorithm;
    options.simrank.damping = 0.6;
    options.simrank.epsilon = 1e-3;
    auto run = ComputeSimRank(dataset.graph, options);
    OIPSIM_CHECK(run.ok());
    const double total = run->stats.seconds_total();
    table->AddRow(
        {dataset.name, AlgorithmName(algorithm),
         FormatDuration(run->stats.seconds_setup),
         StrFormat("%.0f%%", 100.0 * run->stats.seconds_setup / total),
         FormatDuration(run->stats.seconds_iterate),
         StrFormat("%.0f%%", 100.0 * run->stats.seconds_iterate / total),
         FormatDuration(total)});
  }
  table->AddSeparator();
}

}  // namespace
}  // namespace simrank::bench

int main() {
  using namespace simrank::bench;
  simrank::PrintSection(
      "Fig 6b: amortized phase time (eps = 1e-3, C = 0.6)");
  simrank::TablePrinter table({"Dataset", "algorithm", "Build MST", "(%)",
                               "Share Sums", "(%)", "total"});
  RunDataset(MakeWebGraph(), &table);
  RunDataset(MakeCitationGraph(), &table);
  table.Print();
  std::printf(
      "\nExpected shape (paper): Build MST takes a larger share of "
      "OIP-DSR's total\nthan of OIP-SR's, because the differential model "
      "shrinks only the iterative\nphase.\n");
  return 0;
}
