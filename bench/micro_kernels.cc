// Micro-benchmarks (google-benchmark) for the library's hot kernels:
// one propagation step of each SimRank backend, DMST construction, the
// sparse sandwich product, symmetric-difference merges and the SVD.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <random>

#include "simrank/benchlib/datasets.h"
#include "simrank/common/simd.h"
#include "simrank/common/varint.h"
#include "simrank/core/dmst.h"
#include "simrank/core/oip.h"
#include "simrank/core/parallel.h"
#include "simrank/core/psum.h"
#include "simrank/gen/generators.h"
#include "simrank/graph/set_ops.h"
#include "simrank/linalg/sparse_matrix.h"
#include "simrank/linalg/svd.h"

namespace simrank {
namespace {

DiGraph BenchGraph() {
  gen::WebGraphParams params;
  params.n = 512;
  params.out_degree = 6;
  params.copy_prob = 0.75;
  params.in_copy_prob = 0.6;
  params.seed = 123;
  auto graph = gen::WebGraph(params);
  OIPSIM_CHECK(graph.ok());
  return std::move(graph).value();
}

void BM_PsumPropagate(benchmark::State& state) {
  DiGraph graph = BenchGraph();
  DenseMatrix current = DenseMatrix::Identity(graph.n());
  DenseMatrix next(graph.n(), graph.n());
  for (auto _ : state) {
    internal::PsumPropagate(graph, current, &next, 0.6, true, 0.0, nullptr);
    benchmark::DoNotOptimize(next.Row(0));
  }
  state.SetItemsProcessed(state.iterations() * graph.n() * graph.n());
}
BENCHMARK(BM_PsumPropagate);

void BM_OipPropagate(benchmark::State& state) {
  DiGraph graph = BenchGraph();
  auto mst = DmstReduce(graph);
  OIPSIM_CHECK(mst.ok());
  internal::OipScratch scratch;
  internal::PrepareScratch(*mst, graph.n(), &scratch);
  DenseMatrix current = DenseMatrix::Identity(graph.n());
  DenseMatrix next(graph.n(), graph.n());
  for (auto _ : state) {
    internal::OipPropagate(*mst, current, &next, 0.6, true, nullptr,
                           &scratch);
    benchmark::DoNotOptimize(next.Row(0));
  }
  state.SetItemsProcessed(state.iterations() * graph.n() * graph.n());
}
BENCHMARK(BM_OipPropagate);

void BM_OipPropagateBlocked(benchmark::State& state) {
  DiGraph graph = BenchGraph();
  auto mst = DmstReduce(graph);
  OIPSIM_CHECK(mst.ok());
  PropagationExecutor executor(static_cast<uint32_t>(state.range(0)));
  internal::OipPropagationKernel kernel(graph, *mst, executor);
  DenseMatrix current = DenseMatrix::Identity(graph.n());
  DenseMatrix next(graph.n(), graph.n());
  for (auto _ : state) {
    RunPropagation(kernel, executor, current, &next, 0.6,
                   /*pin_diagonal=*/true, nullptr);
    benchmark::DoNotOptimize(next.Row(0));
  }
  state.SetItemsProcessed(state.iterations() * graph.n() * graph.n());
}
BENCHMARK(BM_OipPropagateBlocked)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_DmstReduce(benchmark::State& state) {
  DiGraph graph = BenchGraph();
  for (auto _ : state) {
    auto mst = DmstReduce(graph);
    benchmark::DoNotOptimize(mst->total_cost);
  }
}
BENCHMARK(BM_DmstReduce);

void BM_SparseSandwich(benchmark::State& state) {
  DiGraph graph = BenchGraph();
  SparseMatrix q = SparseMatrix::BackwardTransition(graph);
  DenseMatrix s = DenseMatrix::Identity(graph.n());
  for (auto _ : state) {
    DenseMatrix out = q.SandwichDense(s);
    benchmark::DoNotOptimize(out.Row(0));
  }
}
BENCHMARK(BM_SparseSandwich);

void BM_SymmetricDifference(benchmark::State& state) {
  DiGraph graph = BenchGraph();
  // All pairs among the first 64 non-empty in-neighbour sets.
  std::vector<VertexId> sample;
  for (VertexId v = 0; v < graph.n() && sample.size() < 64; ++v) {
    if (graph.InDegree(v) > 0) sample.push_back(v);
  }
  for (auto _ : state) {
    uint64_t total = 0;
    for (VertexId a : sample) {
      for (VertexId b : sample) {
        total += SymmetricDifferenceSize(graph.InNeighbors(a),
                                         graph.InNeighbors(b));
      }
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_SymmetricDifference);

void BM_RandomizedSvd(benchmark::State& state) {
  DiGraph graph = BenchGraph();
  SparseMatrix q = SparseMatrix::BackwardTransition(graph);
  SvdOptions options;
  options.rank = 32;
  for (auto _ : state) {
    auto svd = RandomizedSvd(q, options);
    benchmark::DoNotOptimize(svd->sigma);
  }
}
BENCHMARK(BM_RandomizedSvd);

// ---------------------------------------------------------------------------
// Serve-path vector kernels, benchmarked per tier (Arg: 0 = scalar,
// 1 = SSE4, 2 = AVX2). Each run first checks the tier produces bitwise the
// same output as the scalar reference, then times it; unsupported tiers
// skip instead of silently clamping.

bool ResolveTier(benchmark::State& state, SimdLevel* level) {
  const auto requested = static_cast<uint8_t>(state.range(0));
  if (requested > static_cast<uint8_t>(MaxSupportedSimdLevel())) {
    state.SkipWithError("tier not supported by this CPU");
    return false;
  }
  *level = static_cast<SimdLevel>(requested);
  state.SetLabel(SimdLevelName(*level));
  return true;
}

// The scalar tail every tier shares: finishes whatever the vector kernel
// did not commit (mirrors walk_store.cc's decode loop on valid input).
size_t ScalarDeltaFinish(const uint8_t** cursor, const uint8_t* end,
                         uint32_t prev, uint32_t* out, size_t count) {
  size_t done = 0;
  while (done < count) {
    uint64_t zigzag = 0;
    if (!DecodeVarint64(cursor, end, &zigzag)) break;
    prev = static_cast<uint32_t>(static_cast<int64_t>(prev) +
                                 ZigZagDecode64(zigzag));
    out[done++] = prev;
  }
  return done;
}

void BM_VarintBlockDecode(benchmark::State& state) {
  SimdLevel level;
  if (!ResolveTier(state, &level)) return;
  constexpr uint32_t kN = 1u << 20;
  constexpr size_t kCount = 8192;
  std::mt19937 rng(31);
  std::uniform_int_distribution<int> step(-20, 20);
  std::vector<uint8_t> bytes;
  std::vector<uint32_t> expected;
  uint32_t prev = kN / 2;
  uint32_t value = prev;
  for (size_t i = 0; i < kCount; ++i) {
    int delta = step(rng);
    if (static_cast<int64_t>(value) + delta < 0 ||
        static_cast<int64_t>(value) + delta >= kN) {
      delta = -delta;
    }
    AppendVarint64(&bytes, ZigZagEncode64(delta));
    value = static_cast<uint32_t>(static_cast<int64_t>(value) + delta);
    expected.push_back(value);
  }
  const uint8_t* const start = bytes.data();
  const uint8_t* const end = start + bytes.size();
  std::vector<uint32_t> out(kCount);

  auto decode = [&]() {
    const uint8_t* cursor = start;
    const size_t bulk =
        DecodeDeltaRun(level, &cursor, end, prev, kN, out.data(), kCount);
    return bulk + ScalarDeltaFinish(&cursor, end,
                                    bulk == 0 ? prev : out[bulk - 1],
                                    out.data() + bulk, kCount - bulk);
  };
  if (decode() != kCount || out != expected) {
    state.SkipWithError("tier output differs from scalar reference");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kCount);
  state.SetBytesProcessed(state.iterations() * bytes.size());
}
BENCHMARK(BM_VarintBlockDecode)->Arg(0)->Arg(1)->Arg(2);

void BM_BucketIntersect(benchmark::State& state) {
  SimdLevel level;
  if (!ResolveTier(state, &level)) return;
  // A realistic inverted slot: many duplicate positions, sorted ascending.
  constexpr size_t kCount = 1u << 16;
  constexpr uint32_t kPositions = 4096;
  std::mt19937 rng(37);
  std::vector<uint32_t> values(kCount);
  for (auto& v : values) {
    v = std::uniform_int_distribution<uint32_t>(0, kPositions - 1)(rng);
  }
  std::sort(values.begin(), values.end());
  std::vector<uint32_t> keys(1024);
  for (auto& k : keys) {
    k = std::uniform_int_distribution<uint32_t>(0, kPositions - 1)(rng);
  }
  for (uint32_t key : keys) {
    const EqualRange got = EqualRangeU32(level, values.data(), kCount, key);
    const auto [lo, hi] = std::equal_range(values.begin(), values.end(), key);
    if (got.begin != static_cast<size_t>(lo - values.begin()) ||
        got.end != static_cast<size_t>(hi - values.begin())) {
      state.SkipWithError("tier output differs from scalar reference");
      return;
    }
  }
  for (auto _ : state) {
    size_t total = 0;
    for (uint32_t key : keys) {
      const EqualRange range =
          EqualRangeU32(level, values.data(), kCount, key);
      total += range.end - range.begin;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK(BM_BucketIntersect)->Arg(0)->Arg(1)->Arg(2);

void BM_SingleSourceAccumulate(benchmark::State& state) {
  SimdLevel level;
  if (!ResolveTier(state, &level)) return;
  constexpr uint32_t kN = 1u << 16;
  std::mt19937 rng(41);
  // 64 buckets of strictly-ascending distinct ids, ~kN/8 entries each.
  std::vector<std::vector<uint32_t>> buckets(64);
  for (auto& bucket : buckets) {
    for (uint32_t v = 0; v < kN; ++v) {
      if (std::uniform_int_distribution<int>(0, 7)(rng) == 0) {
        bucket.push_back(v);
      }
    }
  }
  std::vector<uint32_t> met(kN, 0);
  std::vector<double> result(kN, 0.0);
  uint32_t round = 0;
  auto accumulate = [&]() {
    ++round;
    for (const auto& bucket : buckets) {
      if (FindFirstInvalidVertex(level, bucket.data(), bucket.size(), kN) !=
          bucket.size()) {
        return false;
      }
      AccumulateBucket(level, bucket.data(), bucket.size(), round, 0.125,
                       met.data(), result.data());
    }
    return true;
  };
  // Bitwise gate: one tier round vs one scalar round on fresh state.
  {
    std::vector<uint32_t> met_ref(kN, 0);
    std::vector<double> result_ref(kN, 0.0);
    for (const auto& bucket : buckets) {
      AccumulateBucket(SimdLevel::kScalar, bucket.data(), bucket.size(), 1,
                       0.125, met_ref.data(), result_ref.data());
    }
    if (!accumulate() || met != met_ref ||
        std::memcmp(result.data(), result_ref.data(),
                    kN * sizeof(double)) != 0) {
      state.SkipWithError("tier output differs from scalar reference");
      return;
    }
  }
  uint64_t items = 0;
  for (const auto& bucket : buckets) items += bucket.size();
  for (auto _ : state) {
    if (!accumulate()) {
      state.SkipWithError("guard rejected a valid bucket");
      return;
    }
    benchmark::DoNotOptimize(result.data());
  }
  state.SetItemsProcessed(state.iterations() * items);
}
BENCHMARK(BM_SingleSourceAccumulate)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace simrank

BENCHMARK_MAIN();
