// Micro-benchmarks (google-benchmark) for the library's hot kernels:
// one propagation step of each SimRank backend, DMST construction, the
// sparse sandwich product, symmetric-difference merges and the SVD.
#include <benchmark/benchmark.h>

#include "simrank/benchlib/datasets.h"
#include "simrank/core/dmst.h"
#include "simrank/core/oip.h"
#include "simrank/core/parallel.h"
#include "simrank/core/psum.h"
#include "simrank/gen/generators.h"
#include "simrank/graph/set_ops.h"
#include "simrank/linalg/sparse_matrix.h"
#include "simrank/linalg/svd.h"

namespace simrank {
namespace {

DiGraph BenchGraph() {
  gen::WebGraphParams params;
  params.n = 512;
  params.out_degree = 6;
  params.copy_prob = 0.75;
  params.in_copy_prob = 0.6;
  params.seed = 123;
  auto graph = gen::WebGraph(params);
  OIPSIM_CHECK(graph.ok());
  return std::move(graph).value();
}

void BM_PsumPropagate(benchmark::State& state) {
  DiGraph graph = BenchGraph();
  DenseMatrix current = DenseMatrix::Identity(graph.n());
  DenseMatrix next(graph.n(), graph.n());
  for (auto _ : state) {
    internal::PsumPropagate(graph, current, &next, 0.6, true, 0.0, nullptr);
    benchmark::DoNotOptimize(next.Row(0));
  }
  state.SetItemsProcessed(state.iterations() * graph.n() * graph.n());
}
BENCHMARK(BM_PsumPropagate);

void BM_OipPropagate(benchmark::State& state) {
  DiGraph graph = BenchGraph();
  auto mst = DmstReduce(graph);
  OIPSIM_CHECK(mst.ok());
  internal::OipScratch scratch;
  internal::PrepareScratch(*mst, graph.n(), &scratch);
  DenseMatrix current = DenseMatrix::Identity(graph.n());
  DenseMatrix next(graph.n(), graph.n());
  for (auto _ : state) {
    internal::OipPropagate(*mst, current, &next, 0.6, true, nullptr,
                           &scratch);
    benchmark::DoNotOptimize(next.Row(0));
  }
  state.SetItemsProcessed(state.iterations() * graph.n() * graph.n());
}
BENCHMARK(BM_OipPropagate);

void BM_OipPropagateBlocked(benchmark::State& state) {
  DiGraph graph = BenchGraph();
  auto mst = DmstReduce(graph);
  OIPSIM_CHECK(mst.ok());
  PropagationExecutor executor(static_cast<uint32_t>(state.range(0)));
  internal::OipPropagationKernel kernel(graph, *mst, executor);
  DenseMatrix current = DenseMatrix::Identity(graph.n());
  DenseMatrix next(graph.n(), graph.n());
  for (auto _ : state) {
    RunPropagation(kernel, executor, current, &next, 0.6,
                   /*pin_diagonal=*/true, nullptr);
    benchmark::DoNotOptimize(next.Row(0));
  }
  state.SetItemsProcessed(state.iterations() * graph.n() * graph.n());
}
BENCHMARK(BM_OipPropagateBlocked)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_DmstReduce(benchmark::State& state) {
  DiGraph graph = BenchGraph();
  for (auto _ : state) {
    auto mst = DmstReduce(graph);
    benchmark::DoNotOptimize(mst->total_cost);
  }
}
BENCHMARK(BM_DmstReduce);

void BM_SparseSandwich(benchmark::State& state) {
  DiGraph graph = BenchGraph();
  SparseMatrix q = SparseMatrix::BackwardTransition(graph);
  DenseMatrix s = DenseMatrix::Identity(graph.n());
  for (auto _ : state) {
    DenseMatrix out = q.SandwichDense(s);
    benchmark::DoNotOptimize(out.Row(0));
  }
}
BENCHMARK(BM_SparseSandwich);

void BM_SymmetricDifference(benchmark::State& state) {
  DiGraph graph = BenchGraph();
  // All pairs among the first 64 non-empty in-neighbour sets.
  std::vector<VertexId> sample;
  for (VertexId v = 0; v < graph.n() && sample.size() < 64; ++v) {
    if (graph.InDegree(v) > 0) sample.push_back(v);
  }
  for (auto _ : state) {
    uint64_t total = 0;
    for (VertexId a : sample) {
      for (VertexId b : sample) {
        total += SymmetricDifferenceSize(graph.InNeighbors(a),
                                         graph.InNeighbors(b));
      }
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_SymmetricDifference);

void BM_RandomizedSvd(benchmark::State& state) {
  DiGraph graph = BenchGraph();
  SparseMatrix q = SparseMatrix::BackwardTransition(graph);
  SvdOptions options;
  options.rank = 32;
  for (auto _ : state) {
    auto svd = RandomizedSvd(q, options);
    benchmark::DoNotOptimize(svd->sigma);
  }
}
BENCHMARK(BM_RandomizedSvd);

}  // namespace
}  // namespace simrank

BENCHMARK_MAIN();
