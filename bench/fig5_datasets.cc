// Fig. 5 — "Real-life Dataset Details".
//
// Prints the realised statistics of the generated dataset analogues next
// to the paper's originals (see DESIGN.md §1 for the substitution
// rationale). The OIP-relevant structure columns (distinct in-neighbour
// sets and the DMST share ratio) are printed too, since they drive every
// other experiment.
#include <cstdio>

#include "simrank/benchlib/datasets.h"
#include "simrank/common/string_util.h"
#include "simrank/common/table_printer.h"
#include "simrank/common/timer.h"
#include "simrank/core/dmst.h"
#include "simrank/graph/graph_stats.h"

namespace simrank::bench {
namespace {

void AddDatasetRow(TablePrinter* table, const Dataset& dataset) {
  DegreeStats stats = ComputeDegreeStats(dataset.graph);
  auto mst = DmstReduce(dataset.graph);
  OIPSIM_CHECK(mst.ok());
  table->AddRow({dataset.name, FormatCount(stats.n), FormatCount(stats.m),
                 StrFormat("%.1f", stats.avg_in_degree),
                 FormatCount(mst->sets.num_sets),
                 StrFormat("%.2f", mst->share_ratio()),
                 dataset.paper_counterpart});
}

void Run() {
  PrintSection("Fig 5: dataset details (generated analogues)");
  TablePrinter table({"Dataset", "Vertices", "Edges", "Avg Deg.",
                      "Distinct I()", "Share ratio", "Paper counterpart"});
  AddDatasetRow(&table, MakeWebGraph());
  AddDatasetRow(&table, MakeCitationGraph());
  for (const Dataset& snapshot : AllCoauthorSnapshots()) {
    AddDatasetRow(&table, snapshot);
  }
  for (uint32_t d : {5u, 10u, 20u, 30u, 40u, 50u}) {
    AddDatasetRow(&table, MakeSynGraph(d));
  }
  table.Print();
  std::printf(
      "\nNote: sizes are scaled ~1:100 - 1:1000 versus the paper (laptop-"
      "scale\nreproduction); average degree and in-neighbour overlap — the "
      "quantities the\nalgorithms' costs depend on — match the originals. "
      "See EXPERIMENTS.md.\n");
}

}  // namespace
}  // namespace simrank::bench

int main() {
  simrank::bench::Run();
  return 0;
}
