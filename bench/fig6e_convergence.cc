// Fig. 6e/6f — "Convergence Rate" and the Lambert-W / Log bounds on K'.
//
// On the largest co-authorship snapshot with C = 0.8 (the paper's Exp-3
// setting), sweeps eps from 1e-2 to 1e-6 and reports:
//   * measured iterations of the conventional model (OIP-SR column),
//   * measured iterations of the differential model (OIP-DSR column),
//   * the a-priori estimates: exact minimal K' (Prop. 7), the Lambert-W
//     estimate (Corollary 1), and the log estimate (Corollary 2).
//
// Expected shape: the conventional column grows linearly in -log eps
// (geometric convergence) while the differential column grows barely at
// all (exponential convergence); the estimates sit within ~1 of measured.
#include <cstdio>

#include "simrank/benchlib/convergence.h"
#include "simrank/benchlib/datasets.h"
#include "simrank/common/string_util.h"
#include "simrank/common/table_printer.h"
#include "simrank/core/bounds.h"

namespace simrank::bench {
namespace {

void Run() {
  const double damping = 0.8;
  Dataset dataset = MakeCoauthorSnapshot(3);  // COAUTH-d11
  PrintSection(StrFormat(
      "Fig 6e/6f: convergence on %s (n = %u, C = %.1f)",
      dataset.name.c_str(), dataset.graph.n(), damping));
  TablePrinter table({"eps", "OIP-SR (measured)", "OIP-DSR (measured)",
                      "K' exact", "LamW Est.", "Log Est.",
                      "K bound (conv.)"});
  for (double eps : {1e-2, 1e-3, 1e-4, 1e-5, 1e-6}) {
    ConvergenceResult conventional =
        MeasureConventionalConvergence(dataset.graph, damping, eps, 120);
    ConvergenceResult differential =
        MeasureDifferentialConvergence(dataset.graph, damping, eps, 120);
    table.AddRow(
        {StrFormat("%.0e", eps),
         StrFormat("%u%s", conventional.iterations,
                   conventional.truncated ? "+" : ""),
         StrFormat("%u", differential.iterations),
         StrFormat("%u", DifferentialIterationsExact(damping, eps)),
         StrFormat("%u", DifferentialIterationsLambertW(damping, eps)),
         StrFormat("%u", DifferentialIterationsLogEstimate(damping, eps)),
         StrFormat("%u", ConventionalIterationsForAccuracy(damping, eps))});
  }
  table.Print();
  std::printf(
      "\nPaper's Fig 6f at C = 0.8 for comparison (eps: SR / DSR / LamW / "
      "Log):\n  1e-2: 19/4/4/-   1e-3: 30/5/5/5   1e-4: 43/6/7/7   "
      "1e-5: 50/7/8/9   1e-6: 64/8/9/10\n");
}

}  // namespace
}  // namespace simrank::bench

int main() {
  simrank::bench::Run();
  return 0;
}
