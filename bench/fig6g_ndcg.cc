// Fig. 6g — "Relative Ordering": NDCG@p of OIP-DSR versus OIP-SR.
//
// Ground truth substitutes converged conventional SimRank (K = 40) for the
// paper's ten human evaluators (DESIGN.md §1): the question Fig. 6g asks is
// whether the differential model preserves conventional SimRank's relative
// order, so the noise-free reference is conventional SimRank itself. The
// three query "authors" are the three highest-degree vertices of the
// largest co-authorship snapshot (the paper queries three prolific
// authors). Expected shape: NDCG ≈ 0.95+ at p = 10, mildly lower at
// p = 30/50, with OIP-SR ≥ OIP-DSR by only a small margin.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "simrank/benchlib/datasets.h"
#include "simrank/common/string_util.h"
#include "simrank/common/table_printer.h"
#include "simrank/core/engine.h"
#include "simrank/eval/ndcg.h"
#include "simrank/extra/topk.h"

namespace simrank::bench {
namespace {

std::vector<VertexId> TopDegreeVertices(const DiGraph& graph, uint32_t k) {
  std::vector<VertexId> vertices(graph.n());
  std::iota(vertices.begin(), vertices.end(), 0u);
  std::partial_sort(vertices.begin(), vertices.begin() + k, vertices.end(),
                    [&graph](VertexId a, VertexId b) {
                      return graph.InDegree(a) > graph.InDegree(b);
                    });
  vertices.resize(k);
  return vertices;
}

void Run() {
  Dataset dataset = MakeCoauthorSnapshot(3);  // COAUTH-d11
  PrintSection(StrFormat("Fig 6g: NDCG_p on %s (C = 0.6, eps = 1e-3)",
                         dataset.name.c_str()));

  // Ground truth: converged conventional SimRank.
  EngineOptions truth_options;
  truth_options.algorithm = Algorithm::kOip;
  truth_options.simrank.damping = 0.6;
  truth_options.simrank.iterations = 40;
  auto truth = ComputeSimRank(dataset.graph, truth_options);
  OIPSIM_CHECK(truth.ok());

  // Candidates at the working accuracy.
  EngineOptions sr_options;
  sr_options.algorithm = Algorithm::kOip;
  sr_options.simrank.damping = 0.6;
  sr_options.simrank.epsilon = 1e-3;
  auto sr = ComputeSimRank(dataset.graph, sr_options);
  EngineOptions dsr_options = sr_options;
  dsr_options.algorithm = Algorithm::kOipDsr;
  auto dsr = ComputeSimRank(dataset.graph, dsr_options);
  OIPSIM_CHECK(sr.ok() && dsr.ok());

  std::vector<VertexId> queries = TopDegreeVertices(dataset.graph, 3);
  TablePrinter table({"p", "OIP-SR NDCG_p", "OIP-DSR NDCG_p"});
  for (uint32_t p : {10u, 30u, 50u}) {
    double sr_sum = 0.0, dsr_sum = 0.0;
    for (VertexId query : queries) {
      std::vector<double> truth_row(dataset.graph.n());
      for (uint32_t v = 0; v < dataset.graph.n(); ++v) {
        truth_row[v] = truth->scores(query, v);
      }
      sr_sum += NdcgForRanking(TopKIds(sr->scores, query, p), truth_row, p);
      dsr_sum +=
          NdcgForRanking(TopKIds(dsr->scores, query, p), truth_row, p);
    }
    table.AddRow({StrFormat("%u", p),
                  StrFormat("%.3f", sr_sum / queries.size()),
                  StrFormat("%.3f", dsr_sum / queries.size())});
  }
  table.Print();
  std::printf("\nQueries: the 3 highest-degree authors (ids");
  for (VertexId q : queries) std::printf(" %u", q);
  std::printf("). Paper reports 0.96/0.92-0.93/0.83-0.85 for p=10/30/50.\n");
}

}  // namespace
}  // namespace simrank::bench

int main() {
  simrank::bench::Run();
  return 0;
}
