// Serving-frontend benchmark: closed-loop loopback clients against
// simrank_server's event loop, per-endpoint QPS and latency percentiles.
//
// The scenario continues bench/index_throughput's: the same 10k-vertex
// web-style graph and walk index, but now queried over real sockets
// through the epoll frontend instead of direct QueryEngine calls, so the
// numbers include HTTP parsing, JSON encoding, admission control and the
// worker handoff. Before any number prints, a correctness gate fetches a
// sample of every endpoint over HTTP and asserts the served scores are
// *bitwise* equal to direct QueryEngine results (the JSON layer emits
// shortest-round-trip doubles precisely so this comparison is exact).
// Each client thread then runs a closed loop — send, block for the
// response, repeat — over a keep-alive connection; per-request latencies
// aggregate into p50/p99.
//
// With --router the same workload runs against a 2-shard cluster instead:
// the index is split with WriteShardIndex, two shard servers come up, and
// the clients talk to a scatter-gather simrank_router. The identical
// correctness gate runs first — the router must answer bitwise-equal to
// the direct QueryEngine over the full index — so the reported QPS/p50/
// p99 quantify the fan-out overhead of answers already proven exact.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <utility>
#include <vector>

#include "simrank/cluster/router.h"
#include "simrank/cluster/shard_plan.h"
#include "simrank/cluster/shard_split.h"
#include "simrank/common/rng.h"
#include "simrank/common/string_util.h"
#include "simrank/common/table_printer.h"
#include "simrank/common/timer.h"
#include "simrank/gen/generators.h"
#include "simrank/index/query_engine.h"
#include "simrank/index/walk_index.h"
#include "simrank/server/http_client.h"
#include "simrank/server/server.h"

namespace simrank::bench {
namespace {

constexpr uint32_t kVertices = 10000;
constexpr uint32_t kHotVertices = 64;
constexpr uint32_t kClients = 4;
constexpr uint32_t kGateQueries = 24;
constexpr uint32_t kTopK = 10;

DiGraph MakeGraph() {
  gen::WebGraphParams params;
  params.n = kVertices;
  params.out_degree = 3;
  params.copy_prob = 0.5;
  params.in_copy_prob = 0.3;
  params.seed = 7;
  auto graph = gen::WebGraph(params);
  OIPSIM_CHECK(graph.ok());
  return std::move(graph).value();
}


void CheckBitwise(double served, double expected, const char* what) {
  OIPSIM_CHECK_MSG(
      std::memcmp(&served, &expected, sizeof(double)) == 0,
      "%s: served %.17g differs from direct QueryEngine %.17g", what,
      served, expected);
}

/// Asserts HTTP responses are bitwise-identical to direct engine calls on
/// a sample of every endpoint. `reference` is a second engine over the
/// same index, so cache state on the served engine cannot mask a
/// discrepancy (the estimates are deterministic either way).
void CorrectnessGate(uint16_t port, QueryEngine& reference,
                     const std::vector<VertexId>& hot) {
  auto client = LoopbackHttpClient::Connect(port);
  OIPSIM_CHECK(client.ok());
  Rng rng(1234);
  for (uint32_t i = 0; i < kGateQueries; ++i) {
    const VertexId a = hot[rng.NextUint64(hot.size())];
    const VertexId b =
        static_cast<VertexId>(rng.NextUint64(reference.index().n()));
    auto response = client->Get(StrFormat("/v1/pair?a=%u&b=%u", a, b));
    OIPSIM_CHECK_MSG(response.ok() && response->status == 200,
                     "pair query failed: %s",
                     response.ok() ? response->body.c_str()
                                   : response.status().ToString().c_str());
    CheckBitwise(FindJsonNumber(response->body, "score"),
                 *reference.Pair(a, b), "/v1/pair");
  }
  for (uint32_t i = 0; i < kGateQueries; ++i) {
    const VertexId v = hot[i % hot.size()];
    auto response = client->Get(StrFormat("/v1/single_source?v=%u", v));
    OIPSIM_CHECK(response.ok() && response->status == 200);
    const QueryEngine::Row row = *reference.SingleSource(v);
    const std::vector<double>& expected = *row;
    const std::vector<double> served =
        FindJsonNumberArray(response->body, "scores");
    OIPSIM_CHECK_MSG(served.size() == expected.size(),
                     "single_source row of %u has %zu entries, expected n",
                     v, served.size());
    for (size_t j = 0; j < expected.size(); ++j) {
      CheckBitwise(served[j], expected[j], "/v1/single_source");
    }
  }
  for (uint32_t i = 0; i < kGateQueries; ++i) {
    const VertexId v = hot[(i * 7) % hot.size()];
    auto response = client->Get(StrFormat("/v1/topk?v=%u&k=%u", v, kTopK));
    OIPSIM_CHECK(response.ok() && response->status == 200);
    const auto expected = *reference.TopK(v, kTopK);
    size_t cursor = 0;
    for (const ScoredVertex& scored : expected) {
      const double vertex =
          FindJsonNumber(response->body, "vertex", &cursor);
      OIPSIM_CHECK_MSG(static_cast<VertexId>(vertex) == scored.vertex,
                       "topk of %u ranks vertex %u where %u belongs", v,
                       static_cast<VertexId>(vertex), scored.vertex);
      CheckBitwise(FindJsonNumber(response->body, "score", &cursor),
                   scored.score, "/v1/topk");
    }
  }
  // POST /v1/batch_pair: one body of kGateQueries pairs, answers in
  // request order, each bitwise-equal to the engine's batch API.
  {
    std::vector<std::pair<VertexId, VertexId>> pairs;
    std::string body;
    for (uint32_t i = 0; i < kGateQueries; ++i) {
      const VertexId a = hot[rng.NextUint64(hot.size())];
      const VertexId b =
          static_cast<VertexId>(rng.NextUint64(reference.index().n()));
      pairs.emplace_back(a, b);
      body += StrFormat("%u %u\n", a, b);
    }
    auto response = client->Post("/v1/batch_pair", body);
    OIPSIM_CHECK_MSG(response.ok() && response->status == 200,
                     "batch_pair failed: %s",
                     response.ok() ? response->body.c_str()
                                   : response.status().ToString().c_str());
    const auto expected = reference.BatchPair(pairs);
    const std::vector<double> served =
        FindJsonNumberArray(response->body, "scores");
    OIPSIM_CHECK_MSG(served.size() == expected.size(),
                     "batch_pair answered %zu of %zu pairs", served.size(),
                     expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      OIPSIM_CHECK(expected[i].ok());
      CheckBitwise(served[i], *expected[i], "/v1/batch_pair");
    }
  }
}

struct EndpointLoad {
  const char* label;
  /// Request targets cycled by every client.
  std::vector<std::string> targets;
  uint32_t requests_per_client;
};

struct LoadResult {
  double seconds = 0;
  uint64_t requests = 0;
  double p50_us = 0;
  double p99_us = 0;
};

/// Closed loop: kClients threads, each its own keep-alive connection,
/// next request issued only after the previous response fully arrived.
LoadResult RunClosedLoop(uint16_t port, const EndpointLoad& load) {
  std::vector<std::vector<double>> latencies(kClients);
  std::vector<std::thread> clients;
  WallTimer wall;
  wall.Start();
  for (uint32_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = LoopbackHttpClient::Connect(port);
      OIPSIM_CHECK(client.ok());
      latencies[c].reserve(load.requests_per_client);
      for (uint32_t i = 0; i < load.requests_per_client; ++i) {
        const std::string& target =
            load.targets[(c + i) % load.targets.size()];
        WallTimer timer;
        timer.Start();
        auto response = client->Get(target);
        timer.Stop();
        OIPSIM_CHECK_MSG(response.ok() && response->status == 200,
                         "%s failed under load", target.c_str());
        latencies[c].push_back(timer.ElapsedMicros());
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  wall.Stop();

  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  std::sort(all.begin(), all.end());
  LoadResult result;
  result.seconds = wall.ElapsedSeconds();
  result.requests = all.size();
  result.p50_us = all[all.size() / 2];
  result.p99_us = all[all.size() * 99 / 100];
  return result;
}

/// One in-process shard server over a WriteShardIndex file.
struct BenchShard {
  BenchShard(const std::string& path, const ShardPlan& plan,
             uint32_t shard_id) {
    auto loaded = WalkIndex::Load(path);
    OIPSIM_CHECK(loaded.ok());
    index = std::make_unique<WalkIndex>(std::move(loaded).value());
    engine = std::make_unique<QueryEngine>(*index);
    ServerOptions options;
    options.port = 0;
    options.threads = 0;
    options.max_inflight = 256;
    options.max_endpoint_inflight = 128;
    options.sharded = true;
    options.shard_plan = plan;
    options.shard_id = shard_id;
    server = std::make_unique<SimRankServer>(*engine, options);
    OIPSIM_CHECK(server->Bind().ok());
    serve_thread = std::thread([this] { OIPSIM_CHECK(server->Serve().ok()); });
  }

  ~BenchShard() {
    server->Shutdown();
    serve_thread.join();
  }

  std::unique_ptr<WalkIndex> index;
  std::unique_ptr<QueryEngine> engine;
  std::unique_ptr<SimRankServer> server;
  std::thread serve_thread;
};

}  // namespace

int Main(bool router_mode) {
  std::printf("# server_throughput: n=%u web graph, %u closed-loop "
              "clients, loopback HTTP%s\n",
              kVertices, kClients,
              router_mode ? ", 2-shard scatter-gather router" : "");
  DiGraph graph = MakeGraph();

  WalkIndexOptions options;
  options.num_fingerprints = 128;
  options.walk_length = 8;
  options.damping = 0.6;
  auto index = WalkIndex::Build(graph, options);
  OIPSIM_CHECK(index.ok());

  QueryEngine engine(*index);
  QueryEngine reference(*index);

  // The serving frontend under test: either one server over the full
  // index, or two shard servers behind a router.
  std::unique_ptr<SimRankServer> server;
  std::thread serve_thread;
  std::vector<std::unique_ptr<BenchShard>> shards;
  std::unique_ptr<SimRankRouter> router;
  std::vector<std::string> shard_paths;
  uint16_t serving_port = 0;
  if (router_mode) {
    auto plan =
        ShardPlan::EvenSplit(index->n(), index->graph_fingerprint(), 2);
    OIPSIM_CHECK(plan.ok());
    RouterOptions router_options;
    router_options.plan = *plan;
    for (const ShardRange& range : plan->shards) {
      const std::string path = StrFormat(
          "/tmp/simrank-bench-%d-shard-%u.widx", getpid(), range.shard_id);
      OIPSIM_CHECK(
          WriteShardIndex(index->store(), range, path, false).ok());
      shard_paths.push_back(path);
      shards.push_back(
          std::make_unique<BenchShard>(path, *plan, range.shard_id));
      router_options.shards.push_back(
          RouterShard{range.shard_id, shards.back()->server->port(), 0});
    }
    router = std::make_unique<SimRankRouter>(std::move(router_options));
    OIPSIM_CHECK(router->Bind().ok());
    OIPSIM_CHECK(router->Start().ok());
    serving_port = router->port();
    std::printf("# router on 127.0.0.1:%u, shards on :%u :%u\n",
                serving_port, shards[0]->server->port(),
                shards[1]->server->port());
  } else {
    ServerOptions server_options;
    server_options.port = 0;
    server_options.threads = 0;  // hardware concurrency
    server_options.max_inflight = 256;
    server_options.max_endpoint_inflight = 128;
    server = std::make_unique<SimRankServer>(engine, server_options);
    OIPSIM_CHECK(server->Bind().ok());
    serve_thread = std::thread([&server] {
      OIPSIM_CHECK(server->Serve().ok());
    });
    serving_port = server->port();
    std::printf("# serving on 127.0.0.1:%u\n", serving_port);
  }

  // Hot-set workload, as in index_throughput.
  Rng rng(99);
  std::vector<VertexId> hot;
  for (uint32_t i = 0; i < kHotVertices; ++i) {
    hot.push_back(static_cast<VertexId>(rng.NextUint64(graph.n())));
  }

  CorrectnessGate(serving_port, reference, hot);
  std::printf("# correctness gate: pair/single_source/topk/batch_pair "
              "responses bitwise-equal to direct QueryEngine on %u "
              "samples each%s\n",
              kGateQueries,
              router_mode ? " (merged across 2 shards)" : "");

  EndpointLoad pair_load{"/v1/pair", {}, 2000};
  EndpointLoad single_source_load{"/v1/single_source", {}, 150};
  EndpointLoad topk_load{"/v1/topk", {}, 400};
  for (uint32_t i = 0; i < kHotVertices; ++i) {
    const VertexId v = hot[i];
    pair_load.targets.push_back(StrFormat(
        "/v1/pair?a=%u&b=%u", v,
        static_cast<VertexId>(rng.NextUint64(graph.n()))));
    single_source_load.targets.push_back(
        StrFormat("/v1/single_source?v=%u", v));
    topk_load.targets.push_back(StrFormat("/v1/topk?v=%u&k=%u", v, kTopK));
  }

  TablePrinter table(
      {"endpoint", "requests", "QPS", "p50 latency", "p99 latency"});
  for (const EndpointLoad& load :
       {pair_load, single_source_load, topk_load}) {
    const LoadResult result = RunClosedLoop(serving_port, load);
    table.AddRow({load.label, FormatCount(result.requests),
                  StrFormat("%.0f", result.requests / result.seconds),
                  FormatDuration(result.p50_us / 1e6),
                  FormatDuration(result.p99_us / 1e6)});
  }
  std::printf("%s\n", table.Render().c_str());

  auto stats_response = HttpGet(serving_port, "/v1/stats");
  OIPSIM_CHECK(stats_response.ok() && stats_response->status == 200);
  std::printf("# /v1/stats: %s\n", stats_response->body.c_str());

  if (router_mode) {
    router->Shutdown();
    shards.clear();
    for (const std::string& path : shard_paths) std::remove(path.c_str());
  } else {
    server->Shutdown();
    serve_thread.join();
  }
  std::printf("%s drained cleanly; all responses bitwise-equal to "
              "direct QueryEngine results\n",
              router_mode ? "router and shards" : "server");
  return 0;
}

}  // namespace simrank::bench

int main(int argc, char** argv) {
  bool router_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--router") {
      router_mode = true;
    } else {
      std::fprintf(stderr, "usage: %s [--router]\n", argv[0]);
      return 2;
    }
  }
  return simrank::bench::Main(router_mode);
}
