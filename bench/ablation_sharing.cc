// Ablation — which design choices of Section III actually pay?
//
// On the WEBG dataset, compares the addition counts and runtime of:
//   * psum-SR (no sharing at all — the Lizorkin baseline);
//   * OIP with DmstPolicy::kAlwaysRoot (set deduplication only: every
//     distinct in-neighbour set recomputed from scratch);
//   * OIP with DmstPolicy::kPreviousInOrder (naive chaining in size order,
//     no MST optimisation);
//   * OIP with DmstPolicy::kMinCost (the paper's DMST-Reduce).
//
// Also prints each plan's static cost model (Σ additions per target
// column) so the measured counts can be checked against the prediction.
#include <cstdio>

#include "simrank/benchlib/datasets.h"
#include "simrank/common/string_util.h"
#include "simrank/common/table_printer.h"
#include "simrank/common/timer.h"
#include "simrank/core/dmst.h"
#include "simrank/core/oip.h"
#include "simrank/core/psum.h"

namespace simrank::bench {
namespace {

const char* PolicyName(DmstPolicy policy) {
  switch (policy) {
    case DmstPolicy::kMinCost:
      return "OIP (DMST, paper)";
    case DmstPolicy::kPreviousInOrder:
      return "OIP (chain order)";
    case DmstPolicy::kAlwaysRoot:
      return "OIP (dedupe only)";
  }
  return "?";
}

void Run() {
  Dataset dataset = MakeWebGraph();
  const uint32_t iterations = 8;
  PrintSection(StrFormat(
      "Ablation: sharing plans on %s (n = %u, K = %u, C = 0.6)",
      dataset.name.c_str(), dataset.graph.n(), iterations));

  SimRankOptions options;
  options.damping = 0.6;
  options.iterations = iterations;

  TablePrinter table({"plan", "schedule cost", "share ratio", "time",
                      "partial adds", "outer adds", "adds vs psum"});

  KernelStats psum_stats;
  OIPSIM_CHECK(PsumSimRank(dataset.graph, options, &psum_stats).ok());
  const double psum_adds =
      static_cast<double>(psum_stats.ops.total_adds());
  table.AddRow({"psum-SR (no sharing)", "-", "-",
                FormatDuration(psum_stats.seconds_total()),
                FormatCount(psum_stats.ops.partial_sum_adds),
                FormatCount(psum_stats.ops.outer_sum_adds), "1.00x"});

  for (DmstPolicy policy : {DmstPolicy::kAlwaysRoot,
                            DmstPolicy::kPreviousInOrder,
                            DmstPolicy::kMinCost}) {
    DmstOptions dmst_options;
    dmst_options.policy = policy;
    auto mst = DmstReduce(dataset.graph, dmst_options);
    OIPSIM_CHECK(mst.ok());
    KernelStats stats;
    OIPSIM_CHECK(
        OipSimRankWithMst(dataset.graph, *mst, options, &stats).ok());
    table.AddRow(
        {PolicyName(policy), FormatCount(mst->schedule_cost),
         StrFormat("%.2f", mst->share_ratio()),
         FormatDuration(stats.seconds_total()),
         FormatCount(stats.ops.partial_sum_adds),
         FormatCount(stats.ops.outer_sum_adds),
         StrFormat("%.2fx",
                   static_cast<double>(stats.ops.total_adds()) / psum_adds)});
  }
  table.Print();
  std::printf(
      "\nReading: dedupe-only already helps when duplicate in-neighbour "
      "sets exist;\nthe MST plan must dominate the naive chain; the paper's "
      "claim is the MST row.\n");
}

}  // namespace
}  // namespace simrank::bench

int main() {
  simrank::bench::Run();
  return 0;
}
