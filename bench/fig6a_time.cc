// Fig. 6a — "Time Efficiency on Real Datasets" (three panels).
//
//  Panel 1: COAUTH snapshots d02..d11 at eps = 1e-3, all four algorithms.
//  Panel 2: WEBG (BerkStan analogue), iteration sweep K = 5..25.
//  Panel 3: CITN (Patent analogue), iteration sweep K = 5..20.
//
// As in the paper, OIP-DSR runs the number of differential iterations that
// attains the *same accuracy* as K conventional iterations (eps_K =
// C^{K+1}), and mtx-SR is only run on the low-rank COAUTH graphs. Besides
// wall time we print the machine-independent addition counts; the paper's
// claims are about the ratios between rows, which survive the ~1:100
// dataset scaling (absolute times do not).
#include <cstdio>

#include "simrank/benchlib/datasets.h"
#include "simrank/common/string_util.h"
#include "simrank/common/table_printer.h"
#include "simrank/common/timer.h"
#include "simrank/core/bounds.h"
#include "simrank/core/engine.h"

namespace simrank::bench {
namespace {

struct Row {
  std::string label;
  double seconds = 0.0;
  uint64_t adds = 0;
  uint32_t iterations = 0;
  bool available = true;
};

Row RunAlgorithm(const DiGraph& graph, Algorithm algorithm,
                 const SimRankOptions& simrank_options) {
  EngineOptions options;
  options.algorithm = algorithm;
  options.simrank = simrank_options;
  options.mtx.rank = 64;
  auto run = ComputeSimRank(graph, options);
  OIPSIM_CHECK(run.ok());
  Row row;
  row.label = AlgorithmName(algorithm);
  row.seconds = run->stats.seconds_total();
  row.adds = run->stats.ops.total_adds();
  row.iterations = run->stats.iterations;
  return row;
}

void CoauthorPanel() {
  PrintSection("Fig 6a, panel 1: COAUTH snapshots, eps = 1e-3, C = 0.6");
  TablePrinter table({"Dataset", "n", "algorithm", "K", "time",
                      "adds", "vs psum-SR"});
  for (const Dataset& dataset : AllCoauthorSnapshots()) {
    SimRankOptions simrank_options;
    simrank_options.damping = 0.6;
    simrank_options.epsilon = 1e-3;
    double psum_seconds = 0.0;
    for (Algorithm algorithm : {Algorithm::kPsum, Algorithm::kOip,
                                Algorithm::kOipDsr, Algorithm::kMtx}) {
      Row row = RunAlgorithm(dataset.graph, algorithm, simrank_options);
      if (algorithm == Algorithm::kPsum) psum_seconds = row.seconds;
      table.AddRow({dataset.name, FormatCount(dataset.graph.n()), row.label,
                    StrFormat("%u", row.iterations),
                    FormatDuration(row.seconds),
                    // mtx-SR's dense-matrix kernels are not instrumented
                    // with OpCounter; its cost model is O(K r³ + n² r).
                    row.adds > 0 ? FormatCount(row.adds) : "n/a",
                    row.seconds > 0
                        ? StrFormat("%.2fx", psum_seconds / row.seconds)
                        : "-"});
    }
    table.AddSeparator();
  }
  table.Print();
}

void SweepPanel(const Dataset& dataset, const std::vector<uint32_t>& ks,
                const char* title) {
  PrintSection(title);
  TablePrinter table(
      {"K", "algorithm", "iters", "time", "adds", "vs psum-SR"});
  for (uint32_t k : ks) {
    SimRankOptions conventional;
    conventional.damping = 0.6;
    conventional.iterations = k;
    // Accuracy-equivalent differential iteration count (Prop. 7 vs the
    // C^{K+1} bound of the conventional model).
    SimRankOptions differential = conventional;
    differential.iterations =
        DifferentialIterationsExact(0.6, ConventionalErrorBound(0.6, k));

    double psum_seconds = 0.0;
    for (Algorithm algorithm :
         {Algorithm::kPsum, Algorithm::kOip, Algorithm::kOipDsr}) {
      const SimRankOptions& simrank_options =
          algorithm == Algorithm::kOipDsr ? differential : conventional;
      Row row = RunAlgorithm(dataset.graph, algorithm, simrank_options);
      if (algorithm == Algorithm::kPsum) psum_seconds = row.seconds;
      table.AddRow({StrFormat("%u", k), row.label,
                    StrFormat("%u", row.iterations),
                    FormatDuration(row.seconds), FormatCount(row.adds),
                    row.seconds > 0
                        ? StrFormat("%.2fx", psum_seconds / row.seconds)
                        : "-"});
    }
    table.AddSeparator();
  }
  table.Print();
  std::printf("(mtx-SR omitted: the SVD factors destroy sparsity on this "
              "graph — Fig. 6d note)\n");
}

}  // namespace
}  // namespace simrank::bench

int main() {
  using namespace simrank::bench;
  CoauthorPanel();
  SweepPanel(MakeWebGraph(), {5, 10, 15, 20, 25},
             "Fig 6a, panel 2: WEBG (BerkStan analogue), K sweep, C = 0.6");
  SweepPanel(MakeCitationGraph(), {5, 10, 15, 20},
             "Fig 6a, panel 3: CITN (Patent analogue), K sweep, C = 0.6");
  return 0;
}
