// Fig. 6c — "Effect of Density" on SYN (R-MAT) graphs.
//
// Fixes n and sweeps the average degree d from 5 to 50; reports the
// runtime of psum-SR, OIP-SR and OIP-DSR plus the DMST share ratio
// annotation the paper prints above the curves. Expected shape: all
// methods grow with density; the OIP speed-up widens as d grows (denser
// graphs overlap more), with OIP-DSR fastest by an increasing margin.
#include <cstdio>

#include "simrank/benchlib/datasets.h"
#include "simrank/common/string_util.h"
#include "simrank/common/table_printer.h"
#include "simrank/common/timer.h"
#include "simrank/core/dmst.h"
#include "simrank/core/engine.h"

namespace simrank::bench {
namespace {

void Run() {
  PrintSection("Fig 6c: density sweep on SYN (n = 1024, eps = 1e-3, C = 0.6)");
  TablePrinter table({"avg deg d", "share ratio", "psum-SR", "OIP-SR",
                      "OIP-DSR", "OIP speedup", "DSR speedup"});
  for (uint32_t d : {5u, 10u, 20u, 30u, 40u, 50u}) {
    Dataset dataset = MakeSynGraph(d);
    auto mst = DmstReduce(dataset.graph);
    OIPSIM_CHECK(mst.ok());

    double seconds[3] = {0, 0, 0};
    int slot = 0;
    for (Algorithm algorithm :
         {Algorithm::kPsum, Algorithm::kOip, Algorithm::kOipDsr}) {
      EngineOptions options;
      options.algorithm = algorithm;
      options.simrank.damping = 0.6;
      options.simrank.epsilon = 1e-3;
      auto run = ComputeSimRank(dataset.graph, options);
      OIPSIM_CHECK(run.ok());
      seconds[slot++] = run->stats.seconds_total();
    }
    table.AddRow({StrFormat("%u", d), StrFormat("%.2f", mst->share_ratio()),
                  FormatDuration(seconds[0]), FormatDuration(seconds[1]),
                  FormatDuration(seconds[2]),
                  StrFormat("%.2fx", seconds[0] / seconds[1]),
                  StrFormat("%.2fx", seconds[0] / seconds[2])});
  }
  table.Print();
}

}  // namespace
}  // namespace simrank::bench

int main() {
  simrank::bench::Run();
  return 0;
}
