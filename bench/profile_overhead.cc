// Profiler overhead gate: proves the sampling CPU profiler is free when
// disarmed and near-free when armed, and that an armed session changes
// no response byte. Key figures land in BENCH_profile.json; the binary
// exits non-zero when a gate fails, so CI runs it as a regression check.
//
// Disarmed, the profiler touches no request path at all — registration
// is one thread-local store at thread start — so the interesting bound
// is the *armed* cost: SIGPROF delivery plus a frame-pointer walk into a
// per-thread ring, at kDefaultHz per CPU-second per thread. The gate
// runs the same closed-loop pair workload with and without an active
// session (best-of-N p50 on both sides to shed scheduler noise) and
// asserts the armed p50 within 2% of disarmed.
//
// The armed run doubles as the attribution check: the session's report
// must attribute at least half of its samples to symbolized simrank::
// frames — if symbolization or the stack walk regressed, the profile
// degenerates to unknown frames and this trips. A final pass exercises
// the HTTP surface: GET /v1/debug/profile under background load returns
// collapsed stacks containing a known simrank symbol, and the response
// bodies with a session armed are byte-identical to disarmed ones.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "simrank/common/json_writer.h"
#include "simrank/common/rng.h"
#include "simrank/common/string_util.h"
#include "simrank/common/timer.h"
#include "simrank/gen/generators.h"
#include "simrank/index/query_engine.h"
#include "simrank/index/walk_index.h"
#include "simrank/obs/profiler.h"
#include "simrank/server/http_client.h"
#include "simrank/server/server.h"

namespace simrank::bench {
namespace {

constexpr uint32_t kVertices = 5000;
constexpr uint32_t kHotVertices = 64;
constexpr uint32_t kClients = 4;
constexpr uint32_t kRequestsPerClient = 1200;
constexpr uint32_t kLoadRounds = 5;  // best-of-N per side
constexpr double kArmedGateFraction = 0.02;
constexpr double kMinSimrankFraction = 0.5;

DiGraph MakeGraph() {
  gen::WebGraphParams params;
  params.n = kVertices;
  params.out_degree = 3;
  params.copy_prob = 0.5;
  params.in_copy_prob = 0.3;
  params.seed = 7;
  auto graph = gen::WebGraph(params);
  OIPSIM_CHECK(graph.ok());
  return std::move(graph).value();
}

struct LoadResult {
  double p50_us = 0;
  double p99_us = 0;
  double qps = 0;
  double wall_seconds = 0;
};

/// One closed-loop pair round over loopback HTTP.
LoadResult RunPairLoad(uint16_t port,
                       const std::vector<std::string>& targets) {
  std::vector<std::vector<double>> latencies(kClients);
  std::vector<std::thread> clients;
  WallTimer wall;
  wall.Start();
  for (uint32_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = LoopbackHttpClient::Connect(port);
      OIPSIM_CHECK(client.ok());
      latencies[c].reserve(kRequestsPerClient);
      for (uint32_t i = 0; i < kRequestsPerClient; ++i) {
        const std::string& target = targets[(c + i) % targets.size()];
        WallTimer timer;
        timer.Start();
        auto response = client->Get(target);
        timer.Stop();
        OIPSIM_CHECK_MSG(response.ok() && response->status == 200,
                         "%s failed under load", target.c_str());
        latencies[c].push_back(timer.ElapsedMicros());
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  wall.Stop();
  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  std::sort(all.begin(), all.end());
  LoadResult result;
  result.p50_us = all[all.size() / 2];
  result.p99_us = all[all.size() * 99 / 100];
  result.qps = all.size() / wall.ElapsedSeconds();
  result.wall_seconds = wall.ElapsedSeconds();
  return result;
}

/// Fraction of samples whose stack contains a simrank:: frame, from
/// flamegraph collapsed text ("thread;frame;...;leaf count" lines).
double SimrankSampleFraction(const std::string& collapsed,
                             uint64_t* total_out) {
  uint64_t total = 0;
  uint64_t simrank = 0;
  for (std::string_view line : StrSplit(collapsed, '\n')) {
    const size_t space = line.rfind(' ');
    if (space == std::string_view::npos) continue;
    uint64_t count = 0;
    if (!ParseUint64(line.substr(space + 1), &count)) continue;
    total += count;
    if (line.find("simrank::") != std::string_view::npos) simrank += count;
  }
  if (total_out != nullptr) *total_out = total;
  return total == 0 ? 0.0 : static_cast<double>(simrank) / total;
}

}  // namespace

int Main() {
  std::printf("# profile_overhead: n=%u web graph, %u closed-loop clients, "
              "%u pair requests/round, best of %u rounds\n",
              kVertices, kClients, kRequestsPerClient, kLoadRounds);

  DiGraph graph = MakeGraph();
  WalkIndexOptions options;
  options.num_fingerprints = 128;
  options.walk_length = 8;
  options.damping = 0.6;
  auto index = WalkIndex::Build(graph, options);
  OIPSIM_CHECK(index.ok());
  QueryEngine engine(*index);

  ServerOptions server_options;
  server_options.port = 0;
  server_options.threads = 0;
  SimRankServer server(engine, server_options);
  OIPSIM_CHECK(server.Bind().ok());
  std::thread serve_thread([&server] { OIPSIM_CHECK(server.Serve().ok()); });

  Rng rng(99);
  std::vector<std::string> targets;
  for (uint32_t i = 0; i < kHotVertices; ++i) {
    targets.push_back(StrFormat(
        "/v1/pair?a=%u&b=%u",
        static_cast<VertexId>(rng.NextUint64(graph.n())),
        static_cast<VertexId>(rng.NextUint64(graph.n()))));
  }

  // Warm caches and connections before any timed round, and record the
  // disarmed bodies the armed run must reproduce bit-for-bit.
  RunPairLoad(server.port(), targets);
  std::vector<std::string> disarmed_bodies;
  {
    auto client = LoopbackHttpClient::Connect(server.port());
    OIPSIM_CHECK(client.ok());
    for (const std::string& target : targets) {
      auto response = client->Get(target);
      OIPSIM_CHECK(response.ok() && response->status == 200);
      disarmed_bodies.push_back(std::move(response->body));
    }
  }

  // Interleave disarmed and armed rounds so scheduler drift and thermal
  // state hit both sides equally; each armed round runs inside its own
  // Start/Stop session and the session reports are pooled for the
  // attribution figures. The gate takes the *minimum* per-pair ratio:
  // measurement noise only ever inflates a round, so the best observed
  // pair is the tightest sound bound on the profiler's real cost.
  LoadResult disarmed;
  LoadResult armed;
  double min_pair_ratio = 0.0;
  uint64_t session_samples = 0;
  uint64_t session_simrank_weighted = 0;
  uint64_t session_dropped = 0;
  uint32_t session_armed_threads = 0;
  for (uint32_t r = 0; r < kLoadRounds; ++r) {
    const LoadResult off = RunPairLoad(server.port(), targets);
    if (r == 0 || off.p50_us < disarmed.p50_us) disarmed = off;

    OIPSIM_CHECK(
        CpuProfiler::Instance().Start(CpuProfiler::kDefaultHz).ok());
    const LoadResult on = RunPairLoad(server.port(), targets);
    // Byte-identity while the session is live: the hot targets answer
    // exactly their disarmed bytes.
    if (r == 0) {
      auto client = LoopbackHttpClient::Connect(server.port());
      OIPSIM_CHECK(client.ok());
      for (size_t i = 0; i < targets.size(); ++i) {
        auto response = client->Get(targets[i]);
        OIPSIM_CHECK(response.ok() && response->status == 200);
        OIPSIM_CHECK_MSG(response->body == disarmed_bodies[i],
                         "armed response body differs from disarmed for %s",
                         targets[i].c_str());
      }
    }
    const ProfileReport round_report = CpuProfiler::Instance().Stop();
    if (r == 0 || on.p50_us < armed.p50_us) armed = on;
    const double pair_ratio = on.p50_us / off.p50_us;
    if (r == 0 || pair_ratio < min_pair_ratio) min_pair_ratio = pair_ratio;
    uint64_t round_samples = 0;
    const double round_fraction =
        SimrankSampleFraction(round_report.collapsed, &round_samples);
    session_samples += round_samples;
    session_simrank_weighted +=
        static_cast<uint64_t>(round_fraction * round_samples + 0.5);
    session_dropped += round_report.dropped_samples;
    session_armed_threads =
        std::max(session_armed_threads, round_report.armed_threads);
  }
  const double simrank_fraction =
      session_samples == 0
          ? 0.0
          : static_cast<double>(session_simrank_weighted) / session_samples;

  // HTTP surface: a live on-demand profile under background load must
  // come back with symbolized simrank frames in collapsed format. This
  // is the attribution gate's subject — a full-rate closed loop keeps
  // the workers deep in simrank query code for the whole capture.
  std::atomic<bool> stop_load{false};
  std::vector<std::thread> background;
  for (uint32_t c = 0; c < kClients; ++c) {
    background.emplace_back([&, c] {
      auto client = LoopbackHttpClient::Connect(server.port());
      OIPSIM_CHECK(client.ok());
      uint32_t i = 0;
      while (!stop_load.load(std::memory_order_relaxed)) {
        auto response =
            client->Get(targets[(c + i++) % targets.size()]);
        OIPSIM_CHECK(response.ok() && response->status == 200);
      }
    });
  }
  std::string endpoint_profile;
  {
    auto client = LoopbackHttpClient::Connect(server.port());
    OIPSIM_CHECK(client.ok());
    auto response = client->Get("/v1/debug/profile?seconds=2&hz=251");
    OIPSIM_CHECK_MSG(response.ok() && response->status == 200,
                     "GET /v1/debug/profile failed under load");
    endpoint_profile = std::move(response->body);
  }
  stop_load.store(true, std::memory_order_relaxed);
  for (std::thread& thread : background) thread.join();

  uint64_t endpoint_samples = 0;
  const double endpoint_fraction =
      SimrankSampleFraction(endpoint_profile, &endpoint_samples);
  // Keep the raw collapsed stacks as a bench artifact — when the gate
  // trips, the unattributed frames are the first thing to look at.
  {
    std::FILE* collapsed = std::fopen("BENCH_profile_collapsed.txt", "w");
    OIPSIM_CHECK(collapsed != nullptr);
    std::fwrite(endpoint_profile.data(), 1, endpoint_profile.size(),
                collapsed);
    std::fclose(collapsed);
  }

  server.Shutdown();
  serve_thread.join();

  const double armed_overhead = min_pair_ratio - 1.0;
  std::printf(
      "# pair p50: %.1f us disarmed, %.1f us armed (%.0f / %.0f QPS), "
      "best-pair overhead %+.2f%% (gate < %.0f%%)\n",
      disarmed.p50_us, armed.p50_us, disarmed.qps, armed.qps,
      armed_overhead * 100.0, kArmedGateFraction * 100.0);
  std::printf(
      "# armed sessions: %llu samples, %.1f%% in simrank:: frames; "
      "endpoint profile: %llu samples, %.1f%% (gate >= %.0f%%)\n",
      static_cast<unsigned long long>(session_samples),
      simrank_fraction * 100.0,
      static_cast<unsigned long long>(endpoint_samples),
      endpoint_fraction * 100.0, kMinSimrankFraction * 100.0);

  const bool overhead_ok = armed_overhead < kArmedGateFraction;
  const bool attribution_ok =
      endpoint_samples > 0 && endpoint_fraction >= kMinSimrankFraction;

  JsonWriter json;
  json.BeginObject();
  json.Key("bench").String("profile_overhead");
  json.Key("pair_p50_us_disarmed").Double(disarmed.p50_us);
  json.Key("pair_p99_us_disarmed").Double(disarmed.p99_us);
  json.Key("pair_p50_us_armed").Double(armed.p50_us);
  json.Key("pair_p99_us_armed").Double(armed.p99_us);
  json.Key("qps_disarmed").Double(disarmed.qps);
  json.Key("qps_armed").Double(armed.qps);
  json.Key("armed_overhead_fraction").Double(armed_overhead);
  json.Key("session_frequency_hz").Uint(CpuProfiler::kDefaultHz);
  json.Key("session_samples").Uint(session_samples);
  json.Key("session_dropped_samples").Uint(session_dropped);
  json.Key("session_armed_threads").Uint(session_armed_threads);
  json.Key("simrank_sample_fraction").Double(simrank_fraction);
  json.Key("endpoint_samples").Uint(endpoint_samples);
  json.Key("endpoint_simrank_fraction").Double(endpoint_fraction);
  json.Key("gate_passed").Bool(overhead_ok && attribution_ok);
  json.EndObject();
  std::FILE* out = std::fopen("BENCH_profile.json", "w");
  OIPSIM_CHECK(out != nullptr);
  std::fprintf(out, "%s\n", json.str().c_str());
  std::fclose(out);
  std::printf("# wrote BENCH_profile.json\n");

  OIPSIM_CHECK_MSG(overhead_ok,
                   "armed p50 overhead %.2f%% breaches the %.0f%% gate",
                   armed_overhead * 100.0, kArmedGateFraction * 100.0);
  OIPSIM_CHECK_MSG(attribution_ok,
                   "only %.1f%% of /v1/debug/profile samples hit simrank:: "
                   "frames (gate >= %.0f%%) — symbolization or stack walk "
                   "broken? see BENCH_profile_collapsed.txt",
                   endpoint_fraction * 100.0, kMinSimrankFraction * 100.0);
  std::printf("profiler overhead gate passed; armed and disarmed bodies "
              "byte-identical\n");
  return 0;
}

}  // namespace simrank::bench

int main() { return simrank::bench::Main(); }
