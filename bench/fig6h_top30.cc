// Fig. 6h — "Top-30 Co-authors" qualitative comparison.
//
// The paper lists the top-30 co-authors of one prolific author under
// OIP-DSR and notes the list differs from OIP-SR's "in one inversion at
// two adjacent positions". We query the highest-degree author of the
// largest snapshot, print both top-30 lists side by side, and count the
// inversions and position disagreements. Expected shape: overlap ≈ 1.0,
// inversions in the low single digits, disagreements near the tail.
#include <cstdio>

#include "simrank/benchlib/datasets.h"
#include "simrank/common/string_util.h"
#include "simrank/common/table_printer.h"
#include "simrank/core/engine.h"
#include "simrank/eval/topk_metrics.h"
#include "simrank/extra/topk.h"

namespace simrank::bench {
namespace {

void Run() {
  Dataset dataset = MakeCoauthorSnapshot(3);  // COAUTH-d11
  // Highest-degree author stands in for "Jeffrey Xu Yu".
  VertexId query = 0;
  for (VertexId v = 1; v < dataset.graph.n(); ++v) {
    if (dataset.graph.InDegree(v) > dataset.graph.InDegree(query)) query = v;
  }
  PrintSection(StrFormat(
      "Fig 6h: top-30 most similar authors to author %u on %s "
      "(C = 0.6, eps = 1e-3)",
      query, dataset.name.c_str()));

  EngineOptions sr_options;
  sr_options.algorithm = Algorithm::kOip;
  sr_options.simrank.damping = 0.6;
  sr_options.simrank.epsilon = 1e-3;
  auto sr = ComputeSimRank(dataset.graph, sr_options);
  EngineOptions dsr_options = sr_options;
  dsr_options.algorithm = Algorithm::kOipDsr;
  auto dsr = ComputeSimRank(dataset.graph, dsr_options);
  OIPSIM_CHECK(sr.ok() && dsr.ok());

  auto sr_top = TopKSimilar(sr->scores, query, 30);
  auto dsr_top = TopKSimilar(dsr->scores, query, 30);
  TablePrinter table({"#", "OIP-SR author", "s(q,.)", "OIP-DSR author",
                      "s^(q,.)", "agree"});
  for (size_t i = 0; i < sr_top.size() && i < dsr_top.size(); ++i) {
    table.AddRow({StrFormat("%zu", i + 1),
                  StrFormat("%u", sr_top[i].vertex),
                  StrFormat("%.4f", sr_top[i].score),
                  StrFormat("%u", dsr_top[i].vertex),
                  StrFormat("%.4f", dsr_top[i].score),
                  sr_top[i].vertex == dsr_top[i].vertex ? "yes" : "NO"});
  }
  table.Print();

  std::vector<VertexId> sr_ids, dsr_ids;
  for (const auto& sv : sr_top) sr_ids.push_back(sv.vertex);
  for (const auto& sv : dsr_top) dsr_ids.push_back(sv.vertex);
  std::vector<VertexId> sr_top10(sr_ids.begin(),
                                 sr_ids.begin() + std::min<size_t>(
                                                      10, sr_ids.size()));
  std::vector<VertexId> dsr_top10(dsr_ids.begin(),
                                  dsr_ids.begin() + std::min<size_t>(
                                                        10, dsr_ids.size()));
  std::printf("\noverlap@10 = %.2f (inversions %llu), overlap@30 = %.2f "
              "(inversions %llu), disagreeing positions = %zu\n",
              TopKOverlap(sr_top10, dsr_top10),
              static_cast<unsigned long long>(
                  RankingInversions(sr_top10, dsr_top10)),
              TopKOverlap(sr_ids, dsr_ids),
              static_cast<unsigned long long>(
                  RankingInversions(sr_ids, dsr_ids)),
              DisagreeingPositions(sr_ids, dsr_ids).size());
  std::printf(
      "Paper: identical lists except one inversion at two adjacent "
      "positions (#23/#24).\nNote: disagreements concentrate in the tail "
      "where scores fall below eps = 1e-3,\ni.e. below the working "
      "accuracy of both methods.\n");
}

}  // namespace
}  // namespace simrank::bench

int main() {
  simrank::bench::Run();
  return 0;
}
