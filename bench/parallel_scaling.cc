// Parallel scaling of the block-parallel all-pairs engines.
//
// Runs OIP-SR and OIP-DSR on a generated web graph (n >= 2000, the
// heavy-overlap regime of the paper's WEBG dataset) with 1/2/4/8 workers
// and prints the speedup curve. Two invariants are asserted on every run:
// the scores are bitwise identical to the single-threaded result (the
// block decomposition is thread-count independent, core/parallel.h), and
// so are the machine-independent addition counts — so the measured curve
// is pure scheduling, not a change of algorithm.
#include <cstdio>

#include "simrank/common/string_util.h"
#include "simrank/common/table_printer.h"
#include "simrank/common/timer.h"
#include "simrank/core/dmst.h"
#include "simrank/core/engine.h"
#include "simrank/core/parallel.h"
#include "simrank/gen/generators.h"

namespace simrank::bench {
namespace {

constexpr uint32_t kIterations = 8;
constexpr uint32_t kThreadCounts[] = {1, 2, 4, 8};

DiGraph MakeGraph() {
  gen::WebGraphParams params;
  params.n = 2048;
  params.out_degree = 8;
  params.copy_prob = 0.8;
  params.seed = 77;
  auto graph = gen::WebGraph(params);
  OIPSIM_CHECK(graph.ok());
  return std::move(graph).value();
}

void Run() {
  DiGraph graph = MakeGraph();
  auto mst = DmstReduce(graph);
  OIPSIM_CHECK(mst.ok());
  const uint64_t schedule_steps = mst->schedule.size();
  PrintSection(StrFormat(
      "Parallel scaling: web graph n = %u, m = %llu, K = %u, "
      "%llu schedule steps in %u blocks",
      graph.n(), static_cast<unsigned long long>(graph.m()), kIterations,
      static_cast<unsigned long long>(schedule_steps),
      DefaultBlockCount(schedule_steps)));

  for (Algorithm algorithm : {Algorithm::kOip, Algorithm::kOipDsr}) {
    const AlgorithmInfo* info = FindAlgorithm(algorithm);
    OIPSIM_CHECK(info != nullptr && info->parallel);
    std::printf("\n%s (%s)\n", info->name, info->summary);
    TablePrinter table(
        {"threads", "setup", "iterate", "total", "speedup", "efficiency",
         "adds", "bitwise"});

    EngineOptions options;
    options.algorithm = algorithm;
    options.simrank.damping = 0.6;
    options.simrank.iterations = kIterations;

    DenseMatrix baseline;
    double baseline_seconds = 0.0;
    uint64_t baseline_adds = 0;
    for (uint32_t threads : kThreadCounts) {
      options.simrank.threads = threads;
      auto run = ComputeSimRank(graph, options);
      OIPSIM_CHECK(run.ok());
      const double seconds = run->stats.seconds_total();
      const uint64_t adds = run->stats.ops.total_adds();
      bool bitwise = true;
      if (threads == 1) {
        baseline = run->scores;
        baseline_seconds = seconds;
        baseline_adds = adds;
      } else {
        bitwise = run->scores == baseline;
        OIPSIM_CHECK(bitwise);  // the determinism contract of the refactor
        OIPSIM_CHECK(adds == baseline_adds);
      }
      const double speedup = baseline_seconds / seconds;
      table.AddRow({StrFormat("%u", threads),
                    FormatDuration(run->stats.seconds_setup),
                    FormatDuration(run->stats.seconds_iterate),
                    FormatDuration(seconds), StrFormat("%.2fx", speedup),
                    StrFormat("%.0f%%", 100.0 * speedup / threads),
                    FormatCount(adds), bitwise ? "yes" : "NO"});
    }
    table.Print();
  }
  std::printf(
      "\nReading: adds are constant by construction (the decomposition "
      "never depends\non the worker count); the speedup column is the "
      "paper-track claim. Expect ~3x+\nat 8 workers on an 8-core machine; "
      "single-core machines show ~1x throughout.\n");
}

}  // namespace
}  // namespace simrank::bench

int main() {
  simrank::bench::Run();
  return 0;
}
