// Dynamic-update benchmark: local walk patching vs. full index rebuild.
//
// The scenario extends bench/index_throughput's: the same 10k-vertex
// web-style graph and walk index, now hit by a stream of small edge-update
// batches. For each batch we measure
//   1. the updater's patch latency (discovery through the inverted index,
//      suffix re-simulation, overlay publish — the WAL append runs
//      unsynced so the number is the pure patch path), and
//   2. a from-scratch WalkIndex::Build on the updated graph, the cost the
//      patch replaces.
// Before any timing prints, an equivalence gate asserts the patched index
// is *bitwise identical* to the rebuild: sampled pair estimates and full
// single-source rows compare exactly, and Compact()'s output file is
// byte-for-byte equal to a fresh Save of the rebuilt index — for raw and
// compressed encodings both.
//
// The acceptance bar for this harness: single-edge updates (the
// canonical streaming case) at least 50x faster than the rebuild;
// larger batches print as ungated context rows showing how the per-batch
// fixed costs amortize while the patched-walk count grows.
//
// Two further phases exercise the streaming machinery:
//   - thread scaling: the same recorded batch stream patched serially and
//     at 2/4/8 workers; compacted files must be byte-identical across
//     thread counts (always), and with >= 8 hardware threads the 8-worker
//     stream must run >= 4x faster than serial (gated);
//   - sustained mixed load: a writer streams batches while reader threads
//     query, with a small --overlay-budget equivalent armed so background
//     auto-compactions fire mid-stream. Reports update QPS, patch and
//     under-load query latency quantiles and the compaction pause, then
//     gates on bitwise equivalence against a rebuild of the final graph.
// Key figures land in BENCH_update.json.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "simrank/common/json_writer.h"
#include "simrank/common/latency_histogram.h"
#include "simrank/common/rng.h"
#include "simrank/common/string_util.h"
#include "simrank/common/table_printer.h"
#include "simrank/common/timer.h"
#include "simrank/gen/generators.h"
#include "simrank/graph/graph_io.h"
#include "simrank/index/edge_update.h"
#include "simrank/index/index_updater.h"
#include "simrank/index/walk_index.h"

namespace simrank::bench {
namespace {

constexpr uint32_t kVertices = 10000;
/// The gated scenario: single-edge batches, the canonical streaming case.
constexpr uint32_t kGatedBatches = 4;
/// Ungated context rows showing how patch cost amortizes with batch size.
constexpr uint32_t kContextBatchEdges[] = {8, 32};
constexpr uint32_t kSampleRows = 16;
constexpr uint32_t kSamplePairs = 256;
constexpr double kRequiredSpeedup = 50.0;
/// Thread-scaling phase: recorded stream of this many single-edge batches,
/// replayed per worker count.
constexpr uint32_t kScalingBatches = 32;
constexpr uint32_t kScalingThreadCounts[] = {1, 2, 4, 8};
/// Gate for the 8-worker replay, applied only with >= 8 hardware threads
/// (the byte-identity check across counts always applies).
constexpr double kRequiredParallelSpeedup = 4.0;
/// Sustained phase: writer batches and reader threads.
constexpr uint32_t kSustainedBatches = 120;
constexpr uint32_t kSustainedBatchEdges = 4;
constexpr uint32_t kSustainedReaders = 2;
/// Overlay budget small enough that the sustained stream trips background
/// auto-compaction several times.
constexpr uint64_t kSustainedOverlayBudget = 192 * 1024;

DiGraph MakeGraph() {
  gen::WebGraphParams params;
  params.n = kVertices;
  params.out_degree = 3;
  params.copy_prob = 0.5;
  params.in_copy_prob = 0.3;
  params.seed = 7;
  auto graph = gen::WebGraph(params);
  OIPSIM_CHECK(graph.ok());
  return std::move(graph).value();
}

/// A batch of `edges` updates against `graph`: half fresh insertions,
/// half deletions of existing edges (a single-edge batch alternates).
std::vector<EdgeUpdate> MakeBatch(const DiGraph& graph, Rng& rng,
                                  uint32_t edges) {
  std::vector<EdgeUpdate> updates;
  while (updates.size() < (edges + 1) / 2) {
    const auto src = static_cast<VertexId>(rng.NextUint64(graph.n()));
    const auto dst = static_cast<VertexId>(rng.NextUint64(graph.n()));
    if (graph.HasEdge(src, dst)) continue;
    bool duplicate = false;
    for (const EdgeUpdate& u : updates) {
      duplicate = duplicate || (u.src == src && u.dst == dst);
    }
    if (duplicate) continue;
    updates.push_back(EdgeUpdate{EdgeUpdate::Op::kInsert, src, dst});
  }
  while (updates.size() < edges) {
    const auto src = static_cast<VertexId>(rng.NextUint64(graph.n()));
    const auto out = graph.OutNeighbors(src);
    if (out.empty()) continue;
    const VertexId dst = out[rng.NextUint64(out.size())];
    bool duplicate = false;
    for (const EdgeUpdate& u : updates) {
      duplicate = duplicate || (u.src == src && u.dst == dst);
    }
    if (duplicate) continue;
    updates.push_back(EdgeUpdate{EdgeUpdate::Op::kDelete, src, dst});
  }
  return updates;
}

void CheckBitwiseRow(const std::vector<double>& patched,
                     const std::vector<double>& rebuilt, VertexId v) {
  OIPSIM_CHECK_MSG(patched.size() == rebuilt.size(),
                   "row of %u: size mismatch", v);
  OIPSIM_CHECK_MSG(std::memcmp(patched.data(), rebuilt.data(),
                               patched.size() * sizeof(double)) == 0,
                   "row of %u: patched index diverges from rebuild", v);
}

std::vector<uint8_t> ReadFileOrDie(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  OIPSIM_CHECK_MSG(f != nullptr, "cannot open %s", path.c_str());
  std::vector<uint8_t> bytes;
  char chunk[1 << 16];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  std::fclose(f);
  return bytes;
}

/// cmp-style byte equality of the compacted file against a fresh Save of
/// the rebuilt index, for one encoding.
void CheckCompactEquivalence(IndexUpdater& updater,
                             const WalkIndex& rebuilt, bool compress,
                             const std::string& dir) {
  const std::string compacted =
      dir + (compress ? "/compacted-c.widx" : "/compacted.widx");
  const std::string fresh = dir + (compress ? "/fresh-c.widx" : "/fresh.widx");
  WalkIndex::SaveOptions save;
  save.compress = compress;
  OIPSIM_CHECK(updater.Compact(compacted, save).ok());
  OIPSIM_CHECK(rebuilt.Save(fresh, save).ok());
  const std::vector<uint8_t> a = ReadFileOrDie(compacted);
  const std::vector<uint8_t> b = ReadFileOrDie(fresh);
  OIPSIM_CHECK_MSG(a.size() == b.size() &&
                       std::memcmp(a.data(), b.data(), a.size()) == 0,
                   "compacted %s index is not byte-identical to a fresh "
                   "build on the updated graph",
                   compress ? "compressed" : "raw");
}

/// Pre-records a deterministic stream of batches: each generated against
/// the graph as evolved by its predecessors, so every replay (whatever
/// the worker count) sees the identical valid stream.
std::vector<std::vector<EdgeUpdate>> RecordBatchStream(const DiGraph& start,
                                                       uint64_t seed,
                                                       uint32_t batches,
                                                       uint32_t edges) {
  std::vector<std::vector<EdgeUpdate>> stream;
  stream.reserve(batches);
  Rng rng(seed);
  DiGraph current = start;
  for (uint32_t i = 0; i < batches; ++i) {
    stream.push_back(MakeBatch(current, rng, edges));
    auto next = ApplyEdgeUpdates(current, stream.back());
    OIPSIM_CHECK(next.ok());
    current = std::move(*next);
  }
  return stream;
}

struct ScalingResult {
  uint32_t threads = 0;
  double seconds = 0;
};

/// Replays the recorded stream at each worker count over a fresh copy of
/// the base index; compacted output must be byte-identical across counts.
/// Returns per-count wall time for the whole stream.
std::vector<ScalingResult> RunThreadScaling(
    const DiGraph& graph, const WalkIndexOptions& options,
    const std::vector<std::vector<EdgeUpdate>>& stream,
    const std::string& dir) {
  std::vector<ScalingResult> results;
  std::vector<uint8_t> reference_bytes;
  for (const uint32_t threads : kScalingThreadCounts) {
    auto index = WalkIndex::Build(graph, options);
    OIPSIM_CHECK(index.ok());
    const std::string wal_path =
        dir + StrFormat("/update_scaling_%u.wal", threads);
    std::remove(wal_path.c_str());
    IndexUpdaterOptions updater_options;
    updater_options.wal_path = wal_path;
    updater_options.sync_wal = false;  // the pure patch path, as above
    updater_options.num_threads = threads;
    auto updater = IndexUpdater::Open(*index, graph, updater_options);
    OIPSIM_CHECK_MSG(updater.ok(), "%s",
                     updater.status().ToString().c_str());

    WallTimer timer;
    timer.Start();
    for (const std::vector<EdgeUpdate>& batch : stream) {
      OIPSIM_CHECK((*updater)->ApplyUpdates(batch).ok());
    }
    timer.Stop();
    results.push_back(ScalingResult{threads, timer.ElapsedSeconds()});

    // The whole point of the determinism contract: the compacted file —
    // base + every patch the stream produced — is byte-identical for any
    // worker count.
    const std::string compacted =
        dir + StrFormat("/update_scaling_%u.widx", threads);
    WalkIndex::SaveOptions save;
    OIPSIM_CHECK((*updater)->Compact(compacted, save).ok());
    std::vector<uint8_t> bytes = ReadFileOrDie(compacted);
    std::remove(compacted.c_str());
    std::remove(wal_path.c_str());
    if (reference_bytes.empty()) {
      reference_bytes = std::move(bytes);
    } else {
      OIPSIM_CHECK_MSG(
          bytes.size() == reference_bytes.size() &&
              std::memcmp(bytes.data(), reference_bytes.data(),
                          bytes.size()) == 0,
          "%u-thread patching diverges bytewise from serial", threads);
    }
  }
  return results;
}

struct SustainedResult {
  double update_qps = 0;
  double edge_qps = 0;
  uint64_t patch_p50_us = 0;
  uint64_t patch_p99_us = 0;
  uint64_t query_p99_idle_us = 0;
  uint64_t query_p99_under_load_us = 0;
  uint64_t auto_compactions = 0;
  double compaction_pause_ms = 0;
  double compaction_total_ms = 0;
};

/// Mixed read/write phase: readers hammer pair and single-source queries
/// while a writer streams batches with a small overlay budget armed, so
/// background auto-compactions fire mid-stream. Queries never block on
/// updates or compactions; the final state must be bitwise equal to a
/// rebuild of the final graph.
SustainedResult RunSustained(const DiGraph& graph,
                             const WalkIndexOptions& options,
                             const std::string& dir) {
  auto index = WalkIndex::Build(graph, options);
  OIPSIM_CHECK(index.ok());
  const std::string wal_path = dir + "/update_sustained.wal";
  const std::string compact_path = dir + "/update_sustained.widx";
  const std::string compact_graph_path = dir + "/update_sustained.graph";
  std::remove(wal_path.c_str());
  std::remove(compact_path.c_str());
  std::remove(compact_graph_path.c_str());
  IndexUpdaterOptions updater_options;
  updater_options.wal_path = wal_path;
  updater_options.sync_wal = false;
  updater_options.num_threads = 0;  // hardware concurrency
  updater_options.overlay_budget_bytes = kSustainedOverlayBudget;
  updater_options.auto_compact_path = compact_path;
  updater_options.auto_compact_graph_path = compact_graph_path;
  auto updater = IndexUpdater::Open(*index, graph, updater_options);
  OIPSIM_CHECK_MSG(updater.ok(), "%s",
                   updater.status().ToString().c_str());

  LatencyHistogram query_idle;
  LatencyHistogram query_loaded;
  LatencyHistogram patch;

  std::atomic<bool> writing{false};
  std::atomic<bool> done{false};
  auto reader = [&](uint64_t seed) {
    Rng rng(seed);
    while (!done.load(std::memory_order_relaxed)) {
      const auto a = static_cast<VertexId>(rng.NextUint64(graph.n()));
      const auto b = static_cast<VertexId>(rng.NextUint64(graph.n()));
      WallTimer timer;
      timer.Start();
      // The same mix the serve path is dominated by: mostly pairs, an
      // occasional full row.
      if (rng.NextUint64(16) == 0) {
        volatile double sink = index->EstimateSingleSource(a)[b];
        (void)sink;
      } else {
        volatile double sink = index->EstimatePair(a, b);
        (void)sink;
      }
      timer.Stop();
      const auto micros =
          static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6);
      if (writing.load(std::memory_order_relaxed)) {
        query_loaded.Record(micros);
      } else {
        query_idle.Record(micros);
      }
    }
  };
  std::vector<std::thread> readers;
  readers.reserve(kSustainedReaders);
  for (uint32_t i = 0; i < kSustainedReaders; ++i) {
    readers.emplace_back(reader, 1000 + i);
  }
  // A short idle window first: the baseline the under-load p99 is
  // compared against.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  Rng rng(777);
  writing.store(true, std::memory_order_relaxed);
  WallTimer write_timer;
  write_timer.Start();
  for (uint32_t i = 0; i < kSustainedBatches; ++i) {
    const DiGraph current = (*updater)->CurrentGraph();
    const std::vector<EdgeUpdate> batch =
        MakeBatch(current, rng, kSustainedBatchEdges);
    WallTimer timer;
    timer.Start();
    OIPSIM_CHECK((*updater)->ApplyUpdates(batch).ok());
    timer.Stop();
    patch.Record(static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6));
  }
  write_timer.Stop();
  writing.store(false, std::memory_order_relaxed);
  (*updater)->DrainBackgroundCompaction();
  done.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  const IndexUpdateStats stats = (*updater)->stats();
  OIPSIM_CHECK_MSG(stats.auto_compactions > 0,
                   "sustained stream never tripped the %llu-byte overlay "
                   "budget; the phase is not exercising auto-compaction",
                   static_cast<unsigned long long>(kSustainedOverlayBudget));
  OIPSIM_CHECK_MSG(stats.auto_compact_failures == 0,
                   "background auto-compaction failed mid-stream");

  // Equivalence gate: after the stream (and however many background
  // compactions landed mid-flight), the served state must still be
  // bitwise a rebuild of the final graph.
  auto rebuilt = WalkIndex::Build((*updater)->CurrentGraph(), options);
  OIPSIM_CHECK(rebuilt.ok());
  Rng sample_rng(99);
  for (uint32_t i = 0; i < kSampleRows; ++i) {
    const auto v = static_cast<VertexId>(sample_rng.NextUint64(graph.n()));
    CheckBitwiseRow(index->EstimateSingleSource(v),
                    rebuilt->EstimateSingleSource(v), v);
  }

  SustainedResult result;
  result.update_qps = kSustainedBatches / write_timer.ElapsedSeconds();
  result.edge_qps = result.update_qps * kSustainedBatchEdges;
  const LatencyHistogram::Snapshot patch_snapshot = patch.snapshot();
  result.patch_p50_us = patch_snapshot.QuantileUpperMicros(0.5);
  result.patch_p99_us = patch_snapshot.QuantileUpperMicros(0.99);
  result.query_p99_idle_us =
      query_idle.snapshot().QuantileUpperMicros(0.99);
  result.query_p99_under_load_us =
      query_loaded.snapshot().QuantileUpperMicros(0.99);
  result.auto_compactions = stats.auto_compactions;
  result.compaction_pause_ms = stats.last_compaction_pause_micros / 1e3;
  result.compaction_total_ms = stats.last_compaction_micros / 1e3;

  std::remove(wal_path.c_str());
  std::remove(compact_path.c_str());
  std::remove(compact_graph_path.c_str());
  return result;
}

}  // namespace

int Main() {
  std::printf("# update_throughput: n=%u web graph, %u single-edge "
              "batches (gated) + larger context batches\n",
              kVertices, kGatedBatches);
  DiGraph graph = MakeGraph();
  std::printf("# graph: %u vertices, %llu edges\n", graph.n(),
              static_cast<unsigned long long>(graph.m()));

  WalkIndexOptions options;
  options.num_fingerprints = 256;
  options.walk_length = 12;
  options.damping = 0.6;
  auto index = WalkIndex::Build(graph, options);
  OIPSIM_CHECK(index.ok());

  const char* tmpdir_env = std::getenv("TMPDIR");
  const std::string dir =
      std::string(tmpdir_env != nullptr ? tmpdir_env : "/tmp");
  const std::string wal_path = dir + "/update_throughput.wal";
  std::remove(wal_path.c_str());

  IndexUpdaterOptions updater_options;
  updater_options.wal_path = wal_path;
  // The pure patch path; a production updater fsyncs (see README for the
  // durability story), a rebuild does not even write a file.
  updater_options.sync_wal = false;
  auto updater = IndexUpdater::Open(*index, graph, updater_options);
  OIPSIM_CHECK_MSG(updater.ok(), "%s",
                   updater.status().ToString().c_str());

  Rng rng(4242);
  TablePrinter table({"batch", "edges", "walks patched", "patch time",
                      "rebuild time", "speedup"});
  double total_patch = 0;
  double total_rebuild = 0;
  uint32_t batch_number = 0;
  // One measured batch: patch, rebuild, equivalence gate, table row.
  // Returns the speedup.
  auto run_batch = [&](uint32_t edges, bool last) {
    const DiGraph current = (*updater)->CurrentGraph();
    const std::vector<EdgeUpdate> updates = MakeBatch(current, rng, edges);
    const IndexUpdateStats before = (*updater)->stats();

    WallTimer patch_timer;
    patch_timer.Start();
    OIPSIM_CHECK((*updater)->ApplyUpdates(updates).ok());
    patch_timer.Stop();

    // The cost the patch replaces: a full rebuild on the updated graph.
    WallTimer rebuild_timer;
    rebuild_timer.Start();
    auto rebuilt = WalkIndex::Build((*updater)->CurrentGraph(), options);
    rebuild_timer.Stop();
    OIPSIM_CHECK(rebuilt.ok());

    // --- equivalence gate, before any timing prints ---------------------
    ++batch_number;
    Rng sample_rng(batch_number);
    for (uint32_t i = 0; i < kSamplePairs; ++i) {
      const auto a = static_cast<VertexId>(sample_rng.NextUint64(graph.n()));
      const auto b = static_cast<VertexId>(sample_rng.NextUint64(graph.n()));
      const double patched = index->EstimatePair(a, b);
      const double fresh = rebuilt->EstimatePair(a, b);
      OIPSIM_CHECK_MSG(std::memcmp(&patched, &fresh, sizeof(double)) == 0,
                       "pair (%u, %u): patched %.17g != rebuilt %.17g", a,
                       b, patched, fresh);
    }
    // Rows for every vertex the batch touched, plus random ones.
    std::vector<VertexId> rows;
    for (const EdgeUpdate& update : updates) rows.push_back(update.dst);
    for (uint32_t i = 0; i < kSampleRows; ++i) {
      rows.push_back(static_cast<VertexId>(sample_rng.NextUint64(graph.n())));
    }
    for (const VertexId v : rows) {
      CheckBitwiseRow(index->EstimateSingleSource(v),
                      rebuilt->EstimateSingleSource(v), v);
    }

    const IndexUpdateStats after = (*updater)->stats();
    const double speedup =
        rebuild_timer.ElapsedSeconds() / patch_timer.ElapsedSeconds();
    table.AddRow(
        {StrFormat("%u", batch_number), StrFormat("%u", edges),
         FormatCount(after.walks_resimulated - before.walks_resimulated),
         FormatDuration(patch_timer.ElapsedSeconds()),
         FormatDuration(rebuild_timer.ElapsedSeconds()),
         StrFormat("%.0fx", speedup)});

    if (last) {
      // Compact must reproduce the rebuild byte for byte, both encodings.
      CheckCompactEquivalence(**updater, *rebuilt, /*compress=*/false, dir);
      CheckCompactEquivalence(**updater, *rebuilt, /*compress=*/true, dir);
      std::printf("# equivalence gate: %u sampled pairs, %zu rows per "
                  "batch bitwise-equal to rebuild; compacted files "
                  "byte-identical (raw + compressed)\n",
                  kSamplePairs, rows.size());
    }
    return std::pair(patch_timer.ElapsedSeconds(),
                     rebuild_timer.ElapsedSeconds());
  };

  for (uint32_t batch = 0; batch < kGatedBatches; ++batch) {
    const auto [patch_seconds, rebuild_seconds] =
        run_batch(/*edges=*/1, /*last=*/false);
    total_patch += patch_seconds;
    total_rebuild += rebuild_seconds;
  }
  // Context rows: larger batches amortize the per-batch fixed costs but
  // patch more walks; they ride the same equivalence gate, only the 50x
  // bar is specific to the single-edge stream.
  const size_t num_context = sizeof(kContextBatchEdges) / sizeof(uint32_t);
  for (size_t i = 0; i < num_context; ++i) {
    run_batch(kContextBatchEdges[i], /*last=*/i + 1 == num_context);
  }
  std::printf("%s\n", table.Render().c_str());

  const double aggregate = total_rebuild / total_patch;
  std::printf("gated single-edge batches: patch %.3f ms vs rebuild "
              "%.1f ms per batch (%.0fx)\n",
              total_patch * 1e3 / kGatedBatches,
              total_rebuild * 1e3 / kGatedBatches, aggregate);
  OIPSIM_CHECK_MSG(aggregate >= kRequiredSpeedup,
                   "small-batch updates are only %.1fx faster than "
                   "rebuild; the bar is %.0fx",
                   aggregate, kRequiredSpeedup);
  std::printf("acceptance: %.0fx >= %.0fx required speedup\n", aggregate,
              kRequiredSpeedup);

  // --- thread scaling ----------------------------------------------------
  std::printf("\n# thread scaling: %u single-edge batches per worker "
              "count (compacted output byte-identical across counts)\n",
              kScalingBatches);
  const std::vector<std::vector<EdgeUpdate>> stream =
      RecordBatchStream(graph, /*seed=*/5150, kScalingBatches, /*edges=*/1);
  const std::vector<ScalingResult> scaling =
      RunThreadScaling(graph, options, stream, dir);
  TablePrinter scaling_table({"threads", "stream time", "vs serial"});
  for (const ScalingResult& r : scaling) {
    scaling_table.AddRow({StrFormat("%u", r.threads),
                          FormatDuration(r.seconds),
                          StrFormat("%.2fx", scaling[0].seconds / r.seconds)});
  }
  std::printf("%s\n", scaling_table.Render().c_str());
  const double parallel_speedup =
      scaling.front().seconds / scaling.back().seconds;
  const uint32_t hardware = std::thread::hardware_concurrency();
  if (hardware >= 8) {
    OIPSIM_CHECK_MSG(parallel_speedup >= kRequiredParallelSpeedup,
                     "8-worker patching is only %.2fx serial on a "
                     "%u-thread machine; the bar is %.1fx",
                     parallel_speedup, hardware, kRequiredParallelSpeedup);
    std::printf("acceptance: %.2fx >= %.1fx at 8 workers\n",
                parallel_speedup, kRequiredParallelSpeedup);
  } else {
    std::printf("# %u hardware thread(s): the %.1fx-at-8-workers gate "
                "needs >= 8; byte-identity across counts still checked\n",
                hardware, kRequiredParallelSpeedup);
  }

  // --- sustained mixed read/write ----------------------------------------
  std::printf("\n# sustained: %u batches of %u edges vs %u readers, "
              "overlay budget %llu bytes (background auto-compaction)\n",
              kSustainedBatches, kSustainedBatchEdges, kSustainedReaders,
              static_cast<unsigned long long>(kSustainedOverlayBudget));
  const SustainedResult sustained = RunSustained(graph, options, dir);
  std::printf(
      "updates: %.0f batches/s (%.0f edges/s), patch p50 %llu us, "
      "p99 %llu us\n",
      sustained.update_qps, sustained.edge_qps,
      static_cast<unsigned long long>(sustained.patch_p50_us),
      static_cast<unsigned long long>(sustained.patch_p99_us));
  std::printf(
      "queries: p99 %llu us idle -> %llu us under write load\n",
      static_cast<unsigned long long>(sustained.query_p99_idle_us),
      static_cast<unsigned long long>(sustained.query_p99_under_load_us));
  std::printf(
      "auto-compactions: %llu fired; last took %.1f ms total, paused "
      "updates %.2f ms; final state bitwise-equal to rebuild\n",
      static_cast<unsigned long long>(sustained.auto_compactions),
      sustained.compaction_total_ms, sustained.compaction_pause_ms);

  {
    JsonWriter json;
    json.BeginObject();
    json.Key("bench").String("update_throughput");
    json.Key("hardware_threads").Uint(hardware);
    json.Key("single_edge").BeginObject();
    json.Key("patch_ms_per_batch").Double(total_patch * 1e3 /
                                          kGatedBatches);
    json.Key("rebuild_ms_per_batch").Double(total_rebuild * 1e3 /
                                            kGatedBatches);
    json.Key("speedup_vs_rebuild").Double(aggregate);
    json.EndObject();
    json.Key("thread_scaling").BeginObject();
    for (const ScalingResult& r : scaling) {
      json.Key(StrFormat("stream_seconds_%ut", r.threads).c_str())
          .Double(r.seconds);
    }
    json.Key("speedup_8t_vs_serial").Double(parallel_speedup);
    json.EndObject();
    json.Key("sustained").BeginObject();
    json.Key("update_batches_per_second").Double(sustained.update_qps);
    json.Key("update_edges_per_second").Double(sustained.edge_qps);
    json.Key("patch_p50_us").Uint(sustained.patch_p50_us);
    json.Key("patch_p99_us").Uint(sustained.patch_p99_us);
    json.Key("query_p99_idle_us").Uint(sustained.query_p99_idle_us);
    json.Key("query_p99_under_load_us")
        .Uint(sustained.query_p99_under_load_us);
    json.Key("auto_compactions").Uint(sustained.auto_compactions);
    json.Key("compaction_pause_ms").Double(sustained.compaction_pause_ms);
    json.Key("compaction_total_ms").Double(sustained.compaction_total_ms);
    json.EndObject();
    json.EndObject();
    std::FILE* out = std::fopen("BENCH_update.json", "w");
    OIPSIM_CHECK(out != nullptr);
    std::fprintf(out, "%s\n", json.str().c_str());
    std::fclose(out);
    std::printf("# wrote BENCH_update.json\n");
  }
  return 0;
}

}  // namespace simrank::bench

int main() { return simrank::bench::Main(); }
