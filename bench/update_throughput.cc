// Dynamic-update benchmark: local walk patching vs. full index rebuild.
//
// The scenario extends bench/index_throughput's: the same 10k-vertex
// web-style graph and walk index, now hit by a stream of small edge-update
// batches. For each batch we measure
//   1. the updater's patch latency (discovery through the inverted index,
//      suffix re-simulation, overlay publish — the WAL append runs
//      unsynced so the number is the pure patch path), and
//   2. a from-scratch WalkIndex::Build on the updated graph, the cost the
//      patch replaces.
// Before any timing prints, an equivalence gate asserts the patched index
// is *bitwise identical* to the rebuild: sampled pair estimates and full
// single-source rows compare exactly, and Compact()'s output file is
// byte-for-byte equal to a fresh Save of the rebuilt index — for raw and
// compressed encodings both.
//
// The acceptance bar for this harness: single-edge updates (the
// canonical streaming case) at least 50x faster than the rebuild;
// larger batches print as ungated context rows showing how the per-batch
// fixed costs amortize while the patched-walk count grows.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "simrank/common/rng.h"
#include "simrank/common/string_util.h"
#include "simrank/common/table_printer.h"
#include "simrank/common/timer.h"
#include "simrank/gen/generators.h"
#include "simrank/graph/graph_io.h"
#include "simrank/index/edge_update.h"
#include "simrank/index/index_updater.h"
#include "simrank/index/walk_index.h"

namespace simrank::bench {
namespace {

constexpr uint32_t kVertices = 10000;
/// The gated scenario: single-edge batches, the canonical streaming case.
constexpr uint32_t kGatedBatches = 4;
/// Ungated context rows showing how patch cost amortizes with batch size.
constexpr uint32_t kContextBatchEdges[] = {8, 32};
constexpr uint32_t kSampleRows = 16;
constexpr uint32_t kSamplePairs = 256;
constexpr double kRequiredSpeedup = 50.0;

DiGraph MakeGraph() {
  gen::WebGraphParams params;
  params.n = kVertices;
  params.out_degree = 3;
  params.copy_prob = 0.5;
  params.in_copy_prob = 0.3;
  params.seed = 7;
  auto graph = gen::WebGraph(params);
  OIPSIM_CHECK(graph.ok());
  return std::move(graph).value();
}

/// A batch of `edges` updates against `graph`: half fresh insertions,
/// half deletions of existing edges (a single-edge batch alternates).
std::vector<EdgeUpdate> MakeBatch(const DiGraph& graph, Rng& rng,
                                  uint32_t edges) {
  std::vector<EdgeUpdate> updates;
  while (updates.size() < (edges + 1) / 2) {
    const auto src = static_cast<VertexId>(rng.NextUint64(graph.n()));
    const auto dst = static_cast<VertexId>(rng.NextUint64(graph.n()));
    if (graph.HasEdge(src, dst)) continue;
    bool duplicate = false;
    for (const EdgeUpdate& u : updates) {
      duplicate = duplicate || (u.src == src && u.dst == dst);
    }
    if (duplicate) continue;
    updates.push_back(EdgeUpdate{EdgeUpdate::Op::kInsert, src, dst});
  }
  while (updates.size() < edges) {
    const auto src = static_cast<VertexId>(rng.NextUint64(graph.n()));
    const auto out = graph.OutNeighbors(src);
    if (out.empty()) continue;
    const VertexId dst = out[rng.NextUint64(out.size())];
    bool duplicate = false;
    for (const EdgeUpdate& u : updates) {
      duplicate = duplicate || (u.src == src && u.dst == dst);
    }
    if (duplicate) continue;
    updates.push_back(EdgeUpdate{EdgeUpdate::Op::kDelete, src, dst});
  }
  return updates;
}

void CheckBitwiseRow(const std::vector<double>& patched,
                     const std::vector<double>& rebuilt, VertexId v) {
  OIPSIM_CHECK_MSG(patched.size() == rebuilt.size(),
                   "row of %u: size mismatch", v);
  OIPSIM_CHECK_MSG(std::memcmp(patched.data(), rebuilt.data(),
                               patched.size() * sizeof(double)) == 0,
                   "row of %u: patched index diverges from rebuild", v);
}

std::vector<uint8_t> ReadFileOrDie(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  OIPSIM_CHECK_MSG(f != nullptr, "cannot open %s", path.c_str());
  std::vector<uint8_t> bytes;
  char chunk[1 << 16];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  std::fclose(f);
  return bytes;
}

/// cmp-style byte equality of the compacted file against a fresh Save of
/// the rebuilt index, for one encoding.
void CheckCompactEquivalence(IndexUpdater& updater,
                             const WalkIndex& rebuilt, bool compress,
                             const std::string& dir) {
  const std::string compacted =
      dir + (compress ? "/compacted-c.widx" : "/compacted.widx");
  const std::string fresh = dir + (compress ? "/fresh-c.widx" : "/fresh.widx");
  WalkIndex::SaveOptions save;
  save.compress = compress;
  OIPSIM_CHECK(updater.Compact(compacted, save).ok());
  OIPSIM_CHECK(rebuilt.Save(fresh, save).ok());
  const std::vector<uint8_t> a = ReadFileOrDie(compacted);
  const std::vector<uint8_t> b = ReadFileOrDie(fresh);
  OIPSIM_CHECK_MSG(a.size() == b.size() &&
                       std::memcmp(a.data(), b.data(), a.size()) == 0,
                   "compacted %s index is not byte-identical to a fresh "
                   "build on the updated graph",
                   compress ? "compressed" : "raw");
}

}  // namespace

int Main() {
  std::printf("# update_throughput: n=%u web graph, %u single-edge "
              "batches (gated) + larger context batches\n",
              kVertices, kGatedBatches);
  DiGraph graph = MakeGraph();
  std::printf("# graph: %u vertices, %llu edges\n", graph.n(),
              static_cast<unsigned long long>(graph.m()));

  WalkIndexOptions options;
  options.num_fingerprints = 256;
  options.walk_length = 12;
  options.damping = 0.6;
  auto index = WalkIndex::Build(graph, options);
  OIPSIM_CHECK(index.ok());

  const char* tmpdir_env = std::getenv("TMPDIR");
  const std::string dir =
      std::string(tmpdir_env != nullptr ? tmpdir_env : "/tmp");
  const std::string wal_path = dir + "/update_throughput.wal";
  std::remove(wal_path.c_str());

  IndexUpdaterOptions updater_options;
  updater_options.wal_path = wal_path;
  // The pure patch path; a production updater fsyncs (see README for the
  // durability story), a rebuild does not even write a file.
  updater_options.sync_wal = false;
  auto updater = IndexUpdater::Open(*index, graph, updater_options);
  OIPSIM_CHECK_MSG(updater.ok(), "%s",
                   updater.status().ToString().c_str());

  Rng rng(4242);
  TablePrinter table({"batch", "edges", "walks patched", "patch time",
                      "rebuild time", "speedup"});
  double total_patch = 0;
  double total_rebuild = 0;
  uint32_t batch_number = 0;
  // One measured batch: patch, rebuild, equivalence gate, table row.
  // Returns the speedup.
  auto run_batch = [&](uint32_t edges, bool last) {
    const DiGraph current = (*updater)->CurrentGraph();
    const std::vector<EdgeUpdate> updates = MakeBatch(current, rng, edges);
    const IndexUpdateStats before = (*updater)->stats();

    WallTimer patch_timer;
    patch_timer.Start();
    OIPSIM_CHECK((*updater)->ApplyUpdates(updates).ok());
    patch_timer.Stop();

    // The cost the patch replaces: a full rebuild on the updated graph.
    WallTimer rebuild_timer;
    rebuild_timer.Start();
    auto rebuilt = WalkIndex::Build((*updater)->CurrentGraph(), options);
    rebuild_timer.Stop();
    OIPSIM_CHECK(rebuilt.ok());

    // --- equivalence gate, before any timing prints ---------------------
    ++batch_number;
    Rng sample_rng(batch_number);
    for (uint32_t i = 0; i < kSamplePairs; ++i) {
      const auto a = static_cast<VertexId>(sample_rng.NextUint64(graph.n()));
      const auto b = static_cast<VertexId>(sample_rng.NextUint64(graph.n()));
      const double patched = index->EstimatePair(a, b);
      const double fresh = rebuilt->EstimatePair(a, b);
      OIPSIM_CHECK_MSG(std::memcmp(&patched, &fresh, sizeof(double)) == 0,
                       "pair (%u, %u): patched %.17g != rebuilt %.17g", a,
                       b, patched, fresh);
    }
    // Rows for every vertex the batch touched, plus random ones.
    std::vector<VertexId> rows;
    for (const EdgeUpdate& update : updates) rows.push_back(update.dst);
    for (uint32_t i = 0; i < kSampleRows; ++i) {
      rows.push_back(static_cast<VertexId>(sample_rng.NextUint64(graph.n())));
    }
    for (const VertexId v : rows) {
      CheckBitwiseRow(index->EstimateSingleSource(v),
                      rebuilt->EstimateSingleSource(v), v);
    }

    const IndexUpdateStats after = (*updater)->stats();
    const double speedup =
        rebuild_timer.ElapsedSeconds() / patch_timer.ElapsedSeconds();
    table.AddRow(
        {StrFormat("%u", batch_number), StrFormat("%u", edges),
         FormatCount(after.walks_resimulated - before.walks_resimulated),
         FormatDuration(patch_timer.ElapsedSeconds()),
         FormatDuration(rebuild_timer.ElapsedSeconds()),
         StrFormat("%.0fx", speedup)});

    if (last) {
      // Compact must reproduce the rebuild byte for byte, both encodings.
      CheckCompactEquivalence(**updater, *rebuilt, /*compress=*/false, dir);
      CheckCompactEquivalence(**updater, *rebuilt, /*compress=*/true, dir);
      std::printf("# equivalence gate: %u sampled pairs, %zu rows per "
                  "batch bitwise-equal to rebuild; compacted files "
                  "byte-identical (raw + compressed)\n",
                  kSamplePairs, rows.size());
    }
    return std::pair(patch_timer.ElapsedSeconds(),
                     rebuild_timer.ElapsedSeconds());
  };

  for (uint32_t batch = 0; batch < kGatedBatches; ++batch) {
    const auto [patch_seconds, rebuild_seconds] =
        run_batch(/*edges=*/1, /*last=*/false);
    total_patch += patch_seconds;
    total_rebuild += rebuild_seconds;
  }
  // Context rows: larger batches amortize the per-batch fixed costs but
  // patch more walks; they ride the same equivalence gate, only the 50x
  // bar is specific to the single-edge stream.
  const size_t num_context = sizeof(kContextBatchEdges) / sizeof(uint32_t);
  for (size_t i = 0; i < num_context; ++i) {
    run_batch(kContextBatchEdges[i], /*last=*/i + 1 == num_context);
  }
  std::printf("%s\n", table.Render().c_str());

  const double aggregate = total_rebuild / total_patch;
  std::printf("gated single-edge batches: patch %.3f ms vs rebuild "
              "%.1f ms per batch (%.0fx)\n",
              total_patch * 1e3 / kGatedBatches,
              total_rebuild * 1e3 / kGatedBatches, aggregate);
  OIPSIM_CHECK_MSG(aggregate >= kRequiredSpeedup,
                   "small-batch updates are only %.1fx faster than "
                   "rebuild; the bar is %.0fx",
                   aggregate, kRequiredSpeedup);
  std::printf("acceptance: %.0fx >= %.0fx required speedup\n", aggregate,
              kRequiredSpeedup);
  return 0;
}

}  // namespace simrank::bench

int main() { return simrank::bench::Main(); }
