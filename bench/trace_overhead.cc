// Tracing overhead gate: proves the tracing subsystem is near-free when
// off and quantifies its cost when on. Key figures land in
// BENCH_trace.json; the binary exits non-zero if the gate fails, so CI
// can run it as a regression check.
//
// The off path of every tracing hook is one thread-local pointer load
// and a predicted-not-taken branch (TraceScope does not even read the
// clock when no recorder is bound). A no-trace build of the same commit
// differs from the shipped binary *only* by those hooks, so the p50
// regression of a tracing-disabled server versus that baseline is
// bounded by hooks-per-request x per-hook cost. Both factors are
// measured directly here:
//
//   1. a micro loop times the null-recorder TraceScope (open + close),
//   2. a closed-loop pair workload over loopback HTTP measures the
//      tracing-disabled p50,
//
// and the gate asserts hooks * null_scope < 1% of the disabled p50 —
// the ISSUE's "<1% vs no-trace baseline" bound, derived from the only
// code a baseline build lacks. The same workload is then re-run with
// every request traced (X-Simrank-Trace header) so the *on* cost is
// visible too, and a final check asserts traced and untraced response
// bodies are byte-identical (the header channel never touches bodies).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "simrank/common/json_writer.h"
#include "simrank/common/rng.h"
#include "simrank/common/string_util.h"
#include "simrank/common/timer.h"
#include "simrank/gen/generators.h"
#include "simrank/index/query_engine.h"
#include "simrank/index/walk_index.h"
#include "simrank/obs/trace.h"
#include "simrank/server/http_client.h"
#include "simrank/server/server.h"

namespace simrank::bench {
namespace {

constexpr uint32_t kVertices = 5000;
constexpr uint32_t kHotVertices = 64;
constexpr uint32_t kClients = 4;
constexpr uint32_t kRequestsPerClient = 1500;
constexpr uint64_t kScopeIterations = 50'000'000;
// TraceScope hooks a pair request crosses with tracing off: request
// root, queue wait, cache lookup, serialize, plus the counter hooks.
// Generous on purpose — overcounting only tightens the gate.
constexpr uint32_t kHooksPerRequest = 16;

template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

DiGraph MakeGraph() {
  gen::WebGraphParams params;
  params.n = kVertices;
  params.out_degree = 3;
  params.copy_prob = 0.5;
  params.in_copy_prob = 0.3;
  params.seed = 7;
  auto graph = gen::WebGraph(params);
  OIPSIM_CHECK(graph.ok());
  return std::move(graph).value();
}

/// Per-hook cost with no recorder bound: the exact instructions a
/// no-trace build would not execute.
double MeasureNullScopeNanos() {
  // Warm the TLS slot, then time open+close pairs.
  for (uint64_t i = 0; i < 1000; ++i) {
    TraceScope scope(TraceStage::kCacheLookup);
    DoNotOptimize(scope);
  }
  WallTimer timer;
  timer.Start();
  for (uint64_t i = 0; i < kScopeIterations; ++i) {
    TraceScope scope(TraceStage::kCacheLookup);
    DoNotOptimize(scope);
  }
  timer.Stop();
  return timer.ElapsedSeconds() * 1e9 / kScopeIterations;
}

struct LoadResult {
  double p50_us = 0;
  double p99_us = 0;
  double qps = 0;
};

/// Closed-loop pair workload; when `traced`, every request carries an
/// X-Simrank-Trace header so the server records and returns a full trace.
LoadResult RunPairLoad(uint16_t port, const std::vector<std::string>& targets,
                       bool traced) {
  std::vector<std::pair<std::string, std::string>> headers;
  if (traced) headers.emplace_back("X-Simrank-Trace", "feedc0de");
  std::vector<std::vector<double>> latencies(kClients);
  std::vector<std::thread> clients;
  WallTimer wall;
  wall.Start();
  for (uint32_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = LoopbackHttpClient::Connect(port);
      OIPSIM_CHECK(client.ok());
      latencies[c].reserve(kRequestsPerClient);
      for (uint32_t i = 0; i < kRequestsPerClient; ++i) {
        const std::string& target = targets[(c + i) % targets.size()];
        WallTimer timer;
        timer.Start();
        auto response = client->Get(target, headers);
        timer.Stop();
        OIPSIM_CHECK_MSG(response.ok() && response->status == 200,
                         "%s failed under load", target.c_str());
        if (traced) {
          OIPSIM_CHECK_MSG(
              response->FindHeader("x-simrank-trace-json") != nullptr,
              "traced request returned no X-Simrank-Trace-Json header");
        }
        latencies[c].push_back(timer.ElapsedMicros());
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  wall.Stop();
  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  std::sort(all.begin(), all.end());
  LoadResult result;
  result.p50_us = all[all.size() / 2];
  result.p99_us = all[all.size() * 99 / 100];
  result.qps = all.size() / wall.ElapsedSeconds();
  return result;
}

}  // namespace

int Main() {
  std::printf("# trace_overhead: n=%u web graph, %u closed-loop clients, "
              "%u pair requests each\n",
              kVertices, kClients, kRequestsPerClient);

  const double null_scope_ns = MeasureNullScopeNanos();
  std::printf("# null-recorder TraceScope: %.2f ns per open+close\n",
              null_scope_ns);

  DiGraph graph = MakeGraph();
  WalkIndexOptions options;
  options.num_fingerprints = 128;
  options.walk_length = 8;
  options.damping = 0.6;
  auto index = WalkIndex::Build(graph, options);
  OIPSIM_CHECK(index.ok());
  QueryEngine engine(*index);

  ServerOptions server_options;
  server_options.port = 0;
  server_options.threads = 0;
  SimRankServer server(engine, server_options);
  OIPSIM_CHECK(server.Bind().ok());
  std::thread serve_thread([&server] { OIPSIM_CHECK(server.Serve().ok()); });

  Rng rng(99);
  std::vector<std::string> targets;
  for (uint32_t i = 0; i < kHotVertices; ++i) {
    targets.push_back(StrFormat(
        "/v1/pair?a=%u&b=%u",
        static_cast<VertexId>(rng.NextUint64(graph.n())),
        static_cast<VertexId>(rng.NextUint64(graph.n()))));
  }

  // Tracing must not change a single response byte unless ?trace=1 asks
  // for an inline splice.
  {
    auto client = LoopbackHttpClient::Connect(server.port());
    OIPSIM_CHECK(client.ok());
    auto plain = client->Get(targets[0]);
    auto traced = client->Get(
        targets[0], {{"X-Simrank-Trace", "feedc0de"}});
    OIPSIM_CHECK(plain.ok() && traced.ok());
    OIPSIM_CHECK_MSG(plain->body == traced->body,
                     "traced response body differs from untraced");
  }

  const LoadResult disabled =
      RunPairLoad(server.port(), targets, /*traced=*/false);
  const LoadResult traced =
      RunPairLoad(server.port(), targets, /*traced=*/true);
  server.Shutdown();
  serve_thread.join();

  // The gate: per-request off-path overhead versus a no-trace build.
  const double overhead_us = kHooksPerRequest * null_scope_ns / 1000.0;
  const double overhead_fraction = overhead_us / disabled.p50_us;
  std::printf(
      "# pair p50: %.1f us disabled, %.1f us traced (%.0f / %.0f QPS)\n",
      disabled.p50_us, traced.p50_us, disabled.qps, traced.qps);
  std::printf("# off-path bound: %u hooks x %.2f ns = %.3f us "
              "(%.4f%% of disabled p50, gate < 1%%)\n",
              kHooksPerRequest, null_scope_ns, overhead_us,
              overhead_fraction * 100.0);

  JsonWriter json;
  json.BeginObject();
  json.Key("bench").String("trace_overhead");
  json.Key("null_scope_ns").Double(null_scope_ns);
  json.Key("hooks_per_request").Uint(kHooksPerRequest);
  json.Key("pair_p50_us_disabled").Double(disabled.p50_us);
  json.Key("pair_p99_us_disabled").Double(disabled.p99_us);
  json.Key("pair_p50_us_traced").Double(traced.p50_us);
  json.Key("pair_p99_us_traced").Double(traced.p99_us);
  json.Key("qps_disabled").Double(disabled.qps);
  json.Key("qps_traced").Double(traced.qps);
  json.Key("overhead_bound_fraction").Double(overhead_fraction);
  json.Key("gate_passed").Bool(overhead_fraction < 0.01);
  json.EndObject();
  std::FILE* out = std::fopen("BENCH_trace.json", "w");
  OIPSIM_CHECK(out != nullptr);
  std::fprintf(out, "%s\n", json.str().c_str());
  std::fclose(out);
  std::printf("# wrote BENCH_trace.json\n");

  OIPSIM_CHECK_MSG(overhead_fraction < 0.01,
                   "tracing-disabled overhead bound %.4f%% breaches the "
                   "1%% gate",
                   overhead_fraction * 100.0);
  std::printf("tracing-disabled overhead gate passed; traced and "
              "untraced bodies byte-identical\n");
  return 0;
}

}  // namespace simrank::bench

int main() { return simrank::bench::Main(); }
