// Walk-index serving benchmark: build cost and query throughput of the
// persistent fingerprint index versus the exact on-demand single-pair
// evaluator (extra/single_pair).
//
// The scenario is the ROADMAP's serving workload: a 10k-vertex web-style
// graph, point queries arriving for a skewed set of hot vertices. We
// measure
//   1. index build time (1 thread vs. hardware threads) and size,
//   2. storage backends on the saved v2 file: cold-open time and resident
//      bytes of the fully-verifying in-memory load vs. the mmap open
//      (which must not read the payload),
//   3. pair-query latency: exact single-pair vs. indexed (cold) vs.
//      indexed against a warm row cache,
//   4. single-source latency: legacy full-row scan vs. the inverted
//      position index on both backends — after asserting the inverted
//      rows are bitwise identical to the scan's,
//   5. single-source / top-k throughput cold vs. cached.
// The acceptance bar for this harness: cached indexed pair queries at
// least 10x faster than the exact single-pair path.
#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "simrank/common/json_writer.h"
#include "simrank/common/memory_tracker.h"
#include "simrank/common/simd.h"
#include "simrank/index/segment_reader.h"
#include "simrank/common/rng.h"
#include "simrank/common/string_util.h"
#include "simrank/common/thread_pool.h"
#include "simrank/common/table_printer.h"
#include "simrank/common/timer.h"
#include "simrank/extra/single_pair.h"
#include "simrank/gen/generators.h"
#include "simrank/index/query_engine.h"
#include "simrank/index/walk_index.h"
#include "simrank/index/walk_store.h"

namespace simrank::bench {
namespace {

constexpr uint32_t kVertices = 10000;
constexpr uint32_t kHotVertices = 64;
constexpr uint32_t kPairQueries = 200;
/// The exact path costs seconds per query at K=8 even on this sparse
/// graph (its memoised pair space explodes with depth), so the baseline is
/// averaged over a small subsample of the workload.
constexpr uint32_t kExactQueries = 5;
constexpr uint32_t kTopK = 10;

DiGraph MakeGraph() {
  gen::WebGraphParams params;
  params.n = kVertices;
  params.out_degree = 3;
  params.copy_prob = 0.5;
  params.in_copy_prob = 0.3;
  params.seed = 7;
  auto graph = gen::WebGraph(params);
  OIPSIM_CHECK(graph.ok());
  return std::move(graph).value();
}

double BuildSeconds(const DiGraph& graph, WalkIndexOptions options,
                    uint32_t threads) {
  options.num_threads = threads;
  WallTimer timer;
  timer.Start();
  auto index = WalkIndex::Build(graph, options);
  timer.Stop();
  OIPSIM_CHECK(index.ok());
  return timer.ElapsedSeconds();
}

struct Workload {
  std::vector<std::pair<VertexId, VertexId>> pairs;
  std::vector<VertexId> sources;
};

/// Queries concentrated on a hot set, as serving traffic is.
Workload MakeWorkload(uint32_t n) {
  Workload workload;
  Rng rng(99);
  std::vector<VertexId> hot;
  for (uint32_t i = 0; i < kHotVertices; ++i) {
    hot.push_back(static_cast<VertexId>(rng.NextUint64(n)));
  }
  for (uint32_t i = 0; i < kPairQueries; ++i) {
    workload.pairs.emplace_back(hot[rng.NextUint64(hot.size())],
                                static_cast<VertexId>(rng.NextUint64(n)));
  }
  workload.sources = hot;
  return workload;
}

}  // namespace

int Main() {
  std::printf("# index_throughput: n=%u web graph, %u hot vertices\n",
              kVertices, kHotVertices);
  DiGraph graph = MakeGraph();
  std::printf("# graph: %u vertices, %llu edges, avg in-degree %.2f\n",
              graph.n(), static_cast<unsigned long long>(graph.m()),
              graph.AverageInDegree());

  WalkIndexOptions options;
  options.num_fingerprints = 128;
  options.walk_length = 8;
  options.damping = 0.6;

  // --- build cost ---------------------------------------------------------
  const uint32_t hw = ThreadPool::ResolveThreadCount(0);
  const double serial_build = BuildSeconds(graph, options, 1);
  const double parallel_build =
      hw > 1 ? BuildSeconds(graph, options, hw) : serial_build;
  auto index = WalkIndex::Build(graph, options);
  OIPSIM_CHECK(index.ok());

  TablePrinter build_table({"phase", "threads", "time", "index MiB"});
  build_table.AddRow({"build", "1", FormatDuration(serial_build),
                      StrFormat("%.1f", index->SizeBytes() / 1048576.0)});
  build_table.AddRow({"build", StrFormat("%u", hw),
                      FormatDuration(parallel_build),
                      StrFormat("%.1f", index->SizeBytes() / 1048576.0)});
  std::printf("%s\n", build_table.Render().c_str());

  Workload workload = MakeWorkload(graph.n());

  // --- storage backends: cold open + resident set ------------------------
  // The acceptance bar of the v2 refactor: the mmap backend opens the
  // saved index without reading the payload, so its cold-open time and
  // resident bytes are both orders of magnitude below the in-memory load.
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string index_path =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
      "/oipsim_index_throughput.widx";
  WalkIndex::SaveOptions save_options;
  save_options.compress = true;
  OIPSIM_CHECK(index->Save(index_path, save_options).ok());
  auto file_info = ReadWalkIndexInfo(index_path);
  OIPSIM_CHECK(file_info.ok());

  WallTimer ram_open_timer;
  ram_open_timer.Start();
  auto ram_index = WalkIndex::Load(index_path);
  ram_open_timer.Stop();
  OIPSIM_CHECK(ram_index.ok());

  WalkIndex::LoadOptions mmap_options;
  mmap_options.use_mmap = true;
  WallTimer mmap_open_timer;
  mmap_open_timer.Start();
  auto mmap_index = WalkIndex::Load(index_path, mmap_options);
  mmap_open_timer.Stop();
  OIPSIM_CHECK(mmap_index.ok());

  // Resident deltas accounted through the shared MemoryTracker, like the
  // kernels' scratch accounting: both backends registered, peak = both
  // resident at once (a server warming a replacement index).
  MemoryTracker backend_memory;
  ScopedTrackedBytes ram_resident(&backend_memory, ram_index->SizeBytes());
  ScopedTrackedBytes mmap_resident(&backend_memory,
                                   mmap_index->SizeBytes());
  std::printf("# saved v2 index: %s file (%s segments, %s inverted), "
              "backend resident peak %s\n",
              FormatBytes(file_info->file_bytes).c_str(),
              FormatBytes(file_info->segment_bytes).c_str(),
              FormatBytes(file_info->inverted_bytes).c_str(),
              FormatBytes(backend_memory.peak_bytes()).c_str());
  TablePrinter backend_table(
      {"backend", "cold open", "resident", "resident/file"});
  backend_table.AddRow(
      {"in-memory (full verify)",
       FormatDuration(ram_open_timer.ElapsedSeconds()),
       FormatBytes(ram_index->SizeBytes()),
       StrFormat("%.1f%%", 100.0 * ram_index->SizeBytes() /
                               file_info->file_bytes)});
  backend_table.AddRow(
      {"mmap (header+directory)",
       FormatDuration(mmap_open_timer.ElapsedSeconds()),
       FormatBytes(mmap_index->SizeBytes()),
       StrFormat("%.1f%%", 100.0 * mmap_index->SizeBytes() /
                               file_info->file_bytes)});
  std::printf("%s\n", backend_table.Render().c_str());

  // --- single-source: full-row scan vs inverted index --------------------
  // Correctness gate before any comparison is printed: on every hot
  // vertex the inverted-index row must be bitwise identical to the legacy
  // scan, on both backends.
  for (VertexId v : workload.sources) {
    const auto scan_row = ram_index->EstimateSingleSourceScan(v);
    const auto inverted_row = ram_index->EstimateSingleSource(v);
    const auto mmap_row = mmap_index->EstimateSingleSource(v);
    OIPSIM_CHECK_MSG(
        scan_row.size() == inverted_row.size() &&
            std::memcmp(scan_row.data(), inverted_row.data(),
                        scan_row.size() * sizeof(double)) == 0,
        "inverted single-source row differs from the scan at vertex %u", v);
    OIPSIM_CHECK_MSG(
        scan_row.size() == mmap_row.size() &&
            std::memcmp(scan_row.data(), mmap_row.data(),
                        scan_row.size() * sizeof(double)) == 0,
        "mmap single-source row differs from the scan at vertex %u", v);
  }
  std::printf("# single-source rows bitwise identical: scan == inverted "
              "== mmap on all %zu hot vertices\n",
              workload.sources.size());

  double scan_seconds = 0.0, inverted_seconds = 0.0, mmap_seconds = 0.0;
  {
    WallTimer timer;
    timer.Start();
    for (VertexId v : workload.sources) {
      (void)ram_index->EstimateSingleSourceScan(v);
    }
    timer.Stop();
    scan_seconds = timer.ElapsedSeconds();
  }
  {
    WallTimer timer;
    timer.Start();
    for (VertexId v : workload.sources) {
      (void)ram_index->EstimateSingleSource(v);
    }
    timer.Stop();
    inverted_seconds = timer.ElapsedSeconds();
  }
  {
    WallTimer timer;
    timer.Start();
    for (VertexId v : workload.sources) {
      (void)mmap_index->EstimateSingleSource(v);
    }
    timer.Stop();
    mmap_seconds = timer.ElapsedSeconds();
  }
  const double queries = static_cast<double>(workload.sources.size());
  TablePrinter ss_table(
      {"single-source path", "time/query", "speedup vs scan"});
  ss_table.AddRow({"full-row scan (in-memory)",
                   FormatDuration(scan_seconds / queries), "1x"});
  ss_table.AddRow({"inverted index (in-memory)",
                   FormatDuration(inverted_seconds / queries),
                   StrFormat("%.3gx", scan_seconds / inverted_seconds)});
  ss_table.AddRow({"inverted index (mmap)",
                   FormatDuration(mmap_seconds / queries),
                   StrFormat("%.3gx", scan_seconds / mmap_seconds)});
  std::printf("%s\n", ss_table.Render().c_str());

  // --- exact single-pair baseline ----------------------------------------
  // Same accuracy target as the index: K iterations = walk_length.
  SimRankOptions exact_options;
  exact_options.damping = options.damping;
  exact_options.iterations = options.walk_length;
  WallTimer exact_timer;
  exact_timer.Start();
  double exact_sum = 0.0;
  for (uint32_t i = 0; i < kExactQueries; ++i) {
    const auto& [a, b] = workload.pairs[i];
    auto value = SinglePairSimRank(graph, a, b, exact_options);
    OIPSIM_CHECK(value.ok());
    exact_sum += *value;
  }
  exact_timer.Stop();
  const double exact_per_query =
      exact_timer.ElapsedSeconds() / kExactQueries;

  // --- indexed pair queries, cold cache ----------------------------------
  QueryEngineOptions engine_options;
  engine_options.num_threads = 1;
  double cold_sum = 0.0;
  WallTimer cold_timer;
  {
    QueryEngine cold_engine(*index, engine_options);
    cold_timer.Start();
    for (const auto& [a, b] : workload.pairs) {
      auto value = cold_engine.Pair(a, b);
      OIPSIM_CHECK(value.ok());
      cold_sum += *value;
    }
    cold_timer.Stop();
  }
  const double cold_per_query =
      cold_timer.ElapsedSeconds() / workload.pairs.size();

  // --- indexed pair queries against a warm row cache ---------------------
  QueryEngine warm_engine(*index, engine_options);
  for (VertexId v : workload.sources) {
    OIPSIM_CHECK(warm_engine.SingleSource(v).ok());
  }
  double warm_sum = 0.0;
  WallTimer warm_timer;
  warm_timer.Start();
  for (const auto& [a, b] : workload.pairs) {
    auto value = warm_engine.Pair(a, b);
    OIPSIM_CHECK(value.ok());
    warm_sum += *value;
  }
  warm_timer.Stop();
  const double warm_per_query =
      warm_timer.ElapsedSeconds() / workload.pairs.size();

  TablePrinter pair_table(
      {"pair path", "time/query", "queries/sec", "speedup vs exact"});
  auto add_pair_row = [&pair_table, exact_per_query](const char* label,
                                                     double per_query) {
    pair_table.AddRow({label, FormatDuration(per_query),
                       StrFormat("%.3g", 1.0 / per_query),
                       StrFormat("%.3gx", exact_per_query / per_query)});
  };
  add_pair_row("exact single-pair", exact_per_query);
  add_pair_row("index (cold cache)", cold_per_query);
  add_pair_row("index (warm cache)", warm_per_query);
  std::printf("%s\n", pair_table.Render().c_str());

  // --- single-source / top-k ---------------------------------------------
  QueryEngine topk_engine(*index, engine_options);
  WallTimer ss_cold_timer;
  ss_cold_timer.Start();
  for (VertexId v : workload.sources) {
    OIPSIM_CHECK(topk_engine.TopK(v, kTopK).ok());
  }
  ss_cold_timer.Stop();
  WallTimer ss_warm_timer;
  ss_warm_timer.Start();
  for (VertexId v : workload.sources) {
    OIPSIM_CHECK(topk_engine.TopK(v, kTopK).ok());
  }
  ss_warm_timer.Stop();
  const double ss_cold =
      ss_cold_timer.ElapsedSeconds() / workload.sources.size();
  const double ss_warm =
      ss_warm_timer.ElapsedSeconds() / workload.sources.size();

  TablePrinter topk_table({"top-k path", "time/query", "queries/sec"});
  topk_table.AddRow({"top-10 (cold cache)", FormatDuration(ss_cold),
                     StrFormat("%.0f", 1.0 / ss_cold)});
  topk_table.AddRow({"top-10 (warm cache)", FormatDuration(ss_warm),
                     StrFormat("%.0f", 1.0 / ss_warm)});
  std::printf("%s\n", topk_table.Render().c_str());

  // --- cold serve: page-cache drop to first answer ------------------------
  // The serve-path question a restart poses: with the index file evicted
  // (posix_fadvise DONTNEED), how long from open to the first single-source
  // answer, and through the whole hot sweep? Measured with the io_uring
  // batched reader on and off; the answers themselves are checked equal.
  auto drop_page_cache = [&index_path]() {
    const int fd = ::open(index_path.c_str(), O_RDONLY);
    OIPSIM_CHECK(fd >= 0);
    ::fsync(fd);  // dirty pages cannot be dropped
    ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
    ::close(fd);
  };
  struct ColdServe {
    double open_seconds = 0.0;
    double first_answer_seconds = 0.0;
    double sweep_seconds = 0.0;
    bool used_uring = false;
    double first_row_sum = 0.0;
  };
  auto cold_serve = [&](bool enable_uring) {
    SegmentReader::SetIoUringEnabled(enable_uring);
    drop_page_cache();
    ColdServe measured;
    WallTimer open_timer;
    open_timer.Start();
    auto cold_index = WalkIndex::Load(index_path, mmap_options);
    open_timer.Stop();
    OIPSIM_CHECK(cold_index.ok());
    measured.open_seconds = open_timer.ElapsedSeconds();
    measured.used_uring = cold_index->store().UsesIoUring();
    WallTimer first_timer;
    first_timer.Start();
    const auto first_row =
        cold_index->EstimateSingleSource(workload.sources[0]);
    first_timer.Stop();
    measured.first_answer_seconds = first_timer.ElapsedSeconds();
    for (double s : first_row) measured.first_row_sum += s;
    WallTimer sweep_timer;
    sweep_timer.Start();
    for (VertexId v : workload.sources) {
      (void)cold_index->EstimateSingleSource(v);
    }
    sweep_timer.Stop();
    measured.sweep_seconds = sweep_timer.ElapsedSeconds();
    return measured;
  };
  const bool uring_was_enabled = SegmentReader::IoUringEnabled();
  // Throwaway pass: the first drop-and-serve after saving the index pays
  // for straggling writeback/journal flushes, whichever backend runs it.
  (void)cold_serve(false);
  const ColdServe uring_serve = cold_serve(true);
  const ColdServe fallback_serve = cold_serve(false);
  SegmentReader::SetIoUringEnabled(uring_was_enabled);
  OIPSIM_CHECK_MSG(uring_serve.first_row_sum == fallback_serve.first_row_sum,
                   "cold first answers differ between read backends");
  TablePrinter cold_table({"cold serve (mmap, dropped cache)", "open",
                           "first answer", "hot sweep"});
  cold_table.AddRow(
      {uring_serve.used_uring ? "io_uring batched reads"
                              : "io_uring requested (unavailable)",
       FormatDuration(uring_serve.open_seconds),
       FormatDuration(uring_serve.first_answer_seconds),
       FormatDuration(uring_serve.sweep_seconds)});
  cold_table.AddRow({"pread/fadvise fallback",
                     FormatDuration(fallback_serve.open_seconds),
                     FormatDuration(fallback_serve.first_answer_seconds),
                     FormatDuration(fallback_serve.sweep_seconds)});
  std::printf("%s\n", cold_table.Render().c_str());

  // Machine-readable serve summary for CI trend lines.
  {
    JsonWriter json;
    json.BeginObject();
    json.Key("bench").String("index_throughput");
    json.Key("simd_level").String(SimdLevelName(ActiveSimdLevel()));
    json.Key("io_uring_build_support")
        .Bool(SegmentReader::BuildSupportsIoUring());
    json.Key("io_uring_used").Bool(uring_serve.used_uring);
    json.Key("cold_serve").BeginObject();
    auto emit_cold = [&json](const char* key, const ColdServe& serve) {
      json.Key(key).BeginObject();
      json.Key("open_seconds").Double(serve.open_seconds);
      json.Key("first_answer_seconds").Double(serve.first_answer_seconds);
      json.Key("hot_sweep_seconds").Double(serve.sweep_seconds);
      json.EndObject();
    };
    emit_cold("io_uring", uring_serve);
    emit_cold("fallback", fallback_serve);
    json.EndObject();
    json.Key("single_source_seconds_per_query").BeginObject();
    json.Key("scan_in_memory").Double(scan_seconds / queries);
    json.Key("inverted_in_memory").Double(inverted_seconds / queries);
    json.Key("inverted_mmap").Double(mmap_seconds / queries);
    json.EndObject();
    json.Key("pair_seconds_per_query").BeginObject();
    json.Key("exact").Double(exact_per_query);
    json.Key("index_cold").Double(cold_per_query);
    json.Key("index_warm").Double(warm_per_query);
    json.EndObject();
    json.Key("topk_seconds_per_query").BeginObject();
    json.Key("cold").Double(ss_cold);
    json.Key("warm").Double(ss_warm);
    json.EndObject();
    json.EndObject();
    std::FILE* out = std::fopen("BENCH_serve.json", "w");
    OIPSIM_CHECK(out != nullptr);
    std::fprintf(out, "%s\n", json.str().c_str());
    std::fclose(out);
    std::printf("# wrote BENCH_serve.json\n");
  }

  const auto stats = warm_engine.cache_stats();
  std::printf("# warm cache: %llu hits, %llu misses, %llu evictions\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.evictions));
  // Checksums keep the optimizer honest and double as sanity checks: the
  // cold and warm paths answered the same 200 queries identically, and the
  // index tracks the exact scores on the baseline subsample.
  double index_subsample_sum = 0.0;
  for (uint32_t i = 0; i < kExactQueries; ++i) {
    index_subsample_sum +=
        index->EstimatePair(workload.pairs[i].first,
                            workload.pairs[i].second);
  }
  std::printf("# checksum: cold=%.6f warm=%.6f | subsample exact=%.6f "
              "index=%.6f\n",
              cold_sum, warm_sum, exact_sum, index_subsample_sum);
  const double speedup = exact_per_query / warm_per_query;
  std::printf("cached indexed pair queries: %.1fx the exact single-pair "
              "path (target >= 10x)\n",
              speedup);
  return speedup >= 10.0 ? 0 : 1;
}

}  // namespace simrank::bench

int main() { return simrank::bench::Main(); }
