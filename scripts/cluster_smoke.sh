#!/usr/bin/env bash
# Multi-process cluster smoke: split a v2 index into two shards, bring up
# the shard primaries, a WAL-tailing replica of shard 0 and the
# scatter-gather router, and require every routed response to be
# byte-identical to a single-node simrank_server over the full index —
# before an update, after a live /v1/update broadcast, and after the
# shard-0 primary is killed and reads fail over to the replica.
#
# usage: scripts/cluster_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD_DIR=${1:-build}
CLI=$BUILD_DIR/simrank_cli
SERVER=$BUILD_DIR/simrank_server
ROUTER=$BUILD_DIR/simrank_router

WORK=$(mktemp -d /tmp/simrank-cluster-smoke.XXXXXX)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -KILL "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

BASE=http://127.0.0.1
SINGLE_PORT=18411
SHARD0_PORT=18412
SHARD1_PORT=18413
REPLICA_PORT=18414
ROUTER_PORT=18415

wait_healthz() {
  local port=$1
  for _ in $(seq 1 200); do
    if curl -fs "$BASE:$port/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.05
  done
  echo "FAIL: server on :$port never became healthy" >&2
  return 1
}

# The routed response for PATH-AND-QUERY must be byte-identical to the
# single-node one (shortest-round-trip doubles make body equality a
# bitwise check on every score).
expect_same() {
  local target=$1
  curl -fs "$BASE:$SINGLE_PORT$target" >"$WORK/single.body"
  curl -fs "$BASE:$ROUTER_PORT$target" >"$WORK/routed.body"
  if ! cmp -s "$WORK/single.body" "$WORK/routed.body"; then
    echo "FAIL: router diverges from single-node on $target" >&2
    echo "--- single-node ---" >&2
    cat "$WORK/single.body" >&2
    echo "--- router ---" >&2
    cat "$WORK/routed.body" >&2
    return 1
  fi
}

expect_same_post() {
  local target=$1 data=$2
  printf '%s' "$data" |
    curl -fs -X POST --data-binary @- "$BASE:$SINGLE_PORT$target" \
      >"$WORK/single.body"
  printf '%s' "$data" |
    curl -fs -X POST --data-binary @- "$BASE:$ROUTER_PORT$target" \
      >"$WORK/routed.body"
  if ! cmp -s "$WORK/single.body" "$WORK/routed.body"; then
    echo "FAIL: router diverges from single-node on POST $target" >&2
    echo "--- single-node ---" >&2
    cat "$WORK/single.body" >&2
    echo "--- router ---" >&2
    cat "$WORK/routed.body" >&2
    return 1
  fi
}

http_code() {
  curl -s -o /dev/null -w '%{http_code}' "$@"
}

# curl | grep -q trips pipefail (grep quits at the first match and curl
# reports a write error); fetch to a file, then grep it.
fetch_expect() {
  local url=$1
  shift
  curl -fs "$url" >"$WORK/fetch.body"
  local pattern
  for pattern in "$@"; do
    if ! grep -q "$pattern" "$WORK/fetch.body"; then
      echo "FAIL: $url does not match '$pattern'" >&2
      cat "$WORK/fetch.body" >&2
      return 1
    fi
  done
}

echo "== build the graph and the full v2 index"
# The chain introduces ids 0..23 in numeric order so the reader's
# first-seen interning keeps external ids == internal ids.
{
  for i in $(seq 0 22); do echo "$i $((i + 1))"; done
  for i in $(seq 0 23); do
    echo "$i $(((i * 7 + 3) % 24))"
    echo "$i $(((i * 5 + 11) % 24))"
    echo "$(((i * 13 + 2) % 24)) $i"
  done
} | awk '$1 != $2 && !seen[$0]++' >"$WORK/graph.txt"
"$CLI" build-index "$WORK/graph.txt" --index="$WORK/full.widx" \
  --fingerprints=128 --format=v2

echo "== shard-plan: split into 2 shards"
"$CLI" shard-plan "$WORK/graph.txt" --index="$WORK/full.widx" --shards=2 \
  --out-dir="$WORK"
test -f "$WORK/plan.txt"
test -f "$WORK/shard-0.widx"
test -f "$WORK/shard-1.widx"
test -f "$WORK/graph.bin"

echo "== start single-node reference, shard primaries, replica, router"
"$SERVER" serve --index="$WORK/full.widx" --port=$SINGLE_PORT \
  --graph="$WORK/graph.bin" --wal="$WORK/single.wal" &
SINGLE_PID=$!
PIDS+=($SINGLE_PID)
"$SERVER" serve --index="$WORK/shard-0.widx" --port=$SHARD0_PORT \
  --graph="$WORK/graph.bin" --wal="$WORK/shard-0.wal" \
  --shard-plan="$WORK/plan.txt" --shard-id=0 &
SHARD0_PID=$!
PIDS+=($SHARD0_PID)
"$SERVER" serve --index="$WORK/shard-1.widx" --port=$SHARD1_PORT \
  --graph="$WORK/graph.bin" --wal="$WORK/shard-1.wal" \
  --shard-plan="$WORK/plan.txt" --shard-id=1 &
SHARD1_PID=$!
PIDS+=($SHARD1_PID)
"$SERVER" serve --index="$WORK/shard-0.widx" --port=$REPLICA_PORT \
  --graph="$WORK/graph.bin" --wal="$WORK/replica-0.wal" \
  --shard-plan="$WORK/plan.txt" --shard-id=0 --replica \
  --tail-from=$SHARD0_PORT &
REPLICA_PID=$!
PIDS+=($REPLICA_PID)
for port in $SINGLE_PORT $SHARD0_PORT $SHARD1_PORT $REPLICA_PORT; do
  wait_healthz $port
done
"$ROUTER" --plan="$WORK/plan.txt" --port=$ROUTER_PORT \
  --shard 0=$SHARD0_PORT,$REPLICA_PORT --shard 1=$SHARD1_PORT \
  --scrape-interval-ms=200 --scrape-timeout-ms=300 &
ROUTER_PID=$!
PIDS+=($ROUTER_PID)
wait_healthz $ROUTER_PORT

echo "== fleet health: every target scraped healthy"
for _ in $(seq 1 100); do
  curl -fs "$BASE:$ROUTER_PORT/v1/cluster/health" >"$WORK/health.body" || true
  if grep -q '"healthy":true' "$WORK/health.body" &&
    ! grep -q '"healthy":false' "$WORK/health.body"; then break; fi
  sleep 0.1
done
fetch_expect "$BASE:$ROUTER_PORT/v1/cluster/health" '"scraping":true' \
  '"role":"replica"' '"uptime_seconds"'
if grep -q '"healthy":false' "$WORK/health.body"; then
  echo "FAIL: a scraped target never became healthy" >&2
  cat "$WORK/health.body" >&2
  exit 1
fi
fetch_expect "$BASE:$ROUTER_PORT/metrics" \
  'simrank_fleet_target_healthy{shard="0",role="primary"} 1' \
  'simrank_fleet_target_healthy{shard="1",role="primary"} 1' \
  'simrank_uptime_seconds{shard="0",role="primary"}' \
  'simrank_uptime_seconds{shard="1",role="primary"}'

echo "== routed queries are byte-identical to single-node"
expect_same '/v1/pair?a=0&b=1'           # both in shard 0
expect_same '/v1/pair?a=3&b=20'          # cross-shard
expect_same '/v1/pair?a=11&b=12'         # across the shard boundary
expect_same '/v1/single_source?v=5'
expect_same '/v1/topk?v=0&k=24'          # k spans the boundary
expect_same '/v1/topk?v=17&k=5'
expect_same_post '/v1/batch_pair' '0 13
5 12
3 3
'

echo "== shards reject misdirected queries with 421"
test "$(http_code "$BASE:$SHARD0_PORT/v1/pair?a=0&b=20")" = 421
test "$(http_code "$BASE:$SHARD1_PORT/v1/topk?v=0&k=3")" = 421
fetch_expect "$BASE:$SHARD0_PORT/v1/stats" '"role":"primary"'
fetch_expect "$BASE:$SHARD0_PORT/metrics" \
  'simrank_rejected_total{reason="misdirected"} 1'

echo "== /v1/update broadcast matches single-node"
UPDATES='+ 0 12
- 0 3
+ 23 1
'
printf '%s' "$UPDATES" |
  curl -fs -X POST --data-binary @- "$BASE:$SINGLE_PORT/v1/update" \
    >"$WORK/single.body"
printf '%s' "$UPDATES" |
  curl -fs -X POST --data-binary @- "$BASE:$ROUTER_PORT/v1/update" \
    >"$WORK/routed.body"
# changed_slots counts per-shard re-simulation work (each shard walks the
# full graph for its own rows), so it is the one field that does not sum
# to the single-node figure; everything else must agree byte-for-byte.
sed 's/"changed_slots":[0-9]*/"changed_slots":_/' "$WORK/single.body" \
  >"$WORK/single.norm"
sed 's/"changed_slots":[0-9]*/"changed_slots":_/' "$WORK/routed.body" \
  >"$WORK/routed.norm"
if ! cmp -s "$WORK/single.norm" "$WORK/routed.norm"; then
  echo "FAIL: update ack diverges from single-node" >&2
  cat "$WORK/single.body" "$WORK/routed.body" >&2
  exit 1
fi
grep -q '"applied":3' "$WORK/routed.body"
expect_same '/v1/pair?a=0&b=1'
expect_same '/v1/single_source?v=3'
expect_same '/v1/topk?v=0&k=24'

echo "== replica tails the primary WAL"
test "$(printf '+ 1 0\n' |
  curl -s -o /dev/null -w '%{http_code}' -X POST --data-binary @- \
    "$BASE:$REPLICA_PORT/v1/update")" = 403
for _ in $(seq 1 200); do
  curl -fs "$BASE:$REPLICA_PORT/v1/stats" >"$WORK/replica.stats" || true
  if grep -q '"batches_applied":1' "$WORK/replica.stats"; then break; fi
  sleep 0.05
done
fetch_expect "$BASE:$REPLICA_PORT/v1/stats" '"batches_applied":1' \
  '"role":"replica"'

echo "== kill the shard-0 primary: reads fail over to the replica"
kill -TERM $SHARD0_PID
wait $SHARD0_PID
expect_same '/v1/pair?a=0&b=1'
expect_same '/v1/single_source?v=2'
expect_same '/v1/topk?v=0&k=24'
curl -fs "$BASE:$ROUTER_PORT/metrics" >"$WORK/router.metrics"
FAILOVERS=$(awk '$1 == "simrank_router_failovers_total" {print $2}' \
  "$WORK/router.metrics")
test "${FAILOVERS:-0}" -ge 1
fetch_expect "$BASE:$ROUTER_PORT/v1/stats" '"failovers":'

echo "== fleet health reflects the killed primary within a scrape interval"
for _ in $(seq 1 100); do
  curl -fs "$BASE:$ROUTER_PORT/v1/cluster/health" >"$WORK/health.body" || true
  if grep -q '"healthy":false' "$WORK/health.body"; then break; fi
  sleep 0.1
done
grep -q '"healthy":false' "$WORK/health.body"
fetch_expect "$BASE:$ROUTER_PORT/metrics" \
  'simrank_fleet_target_healthy{shard="0",role="primary"} 0' \
  'simrank_fleet_target_healthy{shard="0",role="replica"} 1'

echo "== updates need every primary: 503 + Retry-After with one dead"
DEAD_CODE=$(printf '+ 1 0\n' |
  curl -s -o "$WORK/dead.body" -D "$WORK/dead.headers" \
    -w '%{http_code}' -X POST --data-binary @- \
    "$BASE:$ROUTER_PORT/v1/update")
test "$DEAD_CODE" = 503
grep -qi '^retry-after:' "$WORK/dead.headers"

echo "== graceful drain"
kill -TERM $ROUTER_PID
wait $ROUTER_PID
kill -TERM $REPLICA_PID
wait $REPLICA_PID
kill -TERM $SHARD1_PID
wait $SHARD1_PID
kill -TERM $SINGLE_PID
wait $SINGLE_PID

echo "cluster smoke: all routed responses byte-identical to single-node"
