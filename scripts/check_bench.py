#!/usr/bin/env python3
"""Bench regression gate: diff fresh BENCH_*.json against committed baselines.

Usage:
    scripts/check_bench.py --fresh-dir build --baseline-dir bench/baselines \
        [--max-regression 0.25]

Each known BENCH file carries a spec of gated metrics — a dotted key path
into the JSON plus the direction that counts as better. A fresh value more
than --max-regression worse than the committed baseline fails the check;
improvements and non-gated keys (environment echoes, sample counts) are
reported but never fail. Missing fresh files fail loudly: a bench that
silently stopped producing output is itself a regression. Baselines are
refreshed by running the bench binaries and copying their BENCH_*.json
over bench/baselines/ in the same commit that changes performance.

Exits 0 when every gated metric holds, 1 on any regression, 2 on usage or
malformed input. Stdlib only.
"""

import argparse
import json
import os
import sys

LOWER = "lower_is_better"
HIGHER = "higher_is_better"

# file -> {dotted.key.path: direction}
SPECS = {
    "BENCH_serve.json": {
        "single_source_seconds_per_query.scan_in_memory": LOWER,
        "single_source_seconds_per_query.inverted_in_memory": LOWER,
        "single_source_seconds_per_query.inverted_mmap": LOWER,
        "pair_seconds_per_query.exact": LOWER,
        "pair_seconds_per_query.index_cold": LOWER,
        "pair_seconds_per_query.index_warm": LOWER,
        "topk_seconds_per_query.cold": LOWER,
        "topk_seconds_per_query.warm": LOWER,
    },
    "BENCH_update.json": {
        "single_edge.patch_ms_per_batch": LOWER,
        "single_edge.speedup_vs_rebuild": HIGHER,
        "thread_scaling.speedup_8t_vs_serial": HIGHER,
    },
    "BENCH_trace.json": {
        "pair_p50_us_disabled": LOWER,
        "pair_p50_us_traced": LOWER,
        "overhead_bound_fraction": LOWER,
    },
    "BENCH_profile.json": {
        "pair_p50_us_disarmed": LOWER,
        "endpoint_simrank_fraction": HIGHER,
    },
}


def dig(obj, path):
    for part in path.split("."):
        if not isinstance(obj, dict) or part not in obj:
            return None
        obj = obj[part]
    return obj


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        return None


def main():
    parser = argparse.ArgumentParser(
        description="Fail when a fresh bench result regresses past its "
        "committed baseline.")
    parser.add_argument("--fresh-dir", required=True,
                        help="directory holding freshly produced BENCH_*.json")
    parser.add_argument("--baseline-dir", default="bench/baselines",
                        help="directory of committed baseline BENCH_*.json")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    args = parser.parse_args()

    failures = []
    checked = 0
    for filename, spec in sorted(SPECS.items()):
        baseline_path = os.path.join(args.baseline_dir, filename)
        fresh_path = os.path.join(args.fresh_dir, filename)
        if not os.path.exists(baseline_path):
            # No baseline committed for this bench yet: nothing to gate.
            print(f"-- {filename}: no baseline, skipped")
            continue
        baseline = load(baseline_path)
        if baseline is None:
            return 2
        if not os.path.exists(fresh_path):
            failures.append(f"{filename}: fresh result missing from "
                            f"{args.fresh_dir} (bench not run or crashed)")
            continue
        fresh = load(fresh_path)
        if fresh is None:
            return 2

        gate = fresh.get("gate_passed")
        if gate is False:
            failures.append(f"{filename}: bench reports gate_passed=false")

        for path, direction in sorted(spec.items()):
            base_value = dig(baseline, path)
            fresh_value = dig(fresh, path)
            if not isinstance(base_value, (int, float)) or isinstance(
                    base_value, bool):
                print(f"-- {filename}:{path}: not in baseline, skipped")
                continue
            if not isinstance(fresh_value, (int, float)) or isinstance(
                    fresh_value, bool):
                failures.append(f"{filename}:{path}: missing from fresh "
                                "result")
                continue
            checked += 1
            if base_value == 0:
                print(f"   {filename}:{path}: baseline 0, skipped")
                continue
            if direction == LOWER:
                change = fresh_value / base_value - 1.0
            else:
                change = base_value / fresh_value - 1.0
            marker = "OK " if change <= args.max_regression else "REG"
            print(f"{marker} {filename}:{path}: baseline {base_value:.6g} "
                  f"fresh {fresh_value:.6g} "
                  f"({'+' if change >= 0 else ''}{change * 100.0:.1f}% "
                  f"{'worse' if change > 0 else 'better'})")
            if change > args.max_regression:
                failures.append(
                    f"{filename}:{path}: {change * 100.0:.1f}% worse than "
                    f"baseline (limit {args.max_regression * 100.0:.0f}%)")

    print(f"\nchecked {checked} gated metric(s), "
          f"{len(failures)} regression(s)")
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
