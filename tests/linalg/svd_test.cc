#include "simrank/linalg/svd.h"

#include <cmath>
#include <gtest/gtest.h>

#include "simrank/common/rng.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

TEST(OrthonormalizeTest, ProducesOrthonormalColumns) {
  Rng rng(5);
  DenseMatrix m(20, 6);
  for (uint32_t i = 0; i < 20; ++i) {
    for (uint32_t j = 0; j < 6; ++j) m(i, j) = rng.NextGaussian();
  }
  uint32_t kept = OrthonormalizeColumns(&m);
  EXPECT_EQ(kept, 6u);
  for (uint32_t a = 0; a < kept; ++a) {
    for (uint32_t b = 0; b < kept; ++b) {
      double dot = 0.0;
      for (uint32_t i = 0; i < 20; ++i) dot += m(i, a) * m(i, b);
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(OrthonormalizeTest, DropsDependentColumns) {
  DenseMatrix m(4, 3);
  for (uint32_t i = 0; i < 4; ++i) {
    m(i, 0) = i + 1.0;
    m(i, 1) = 2.0 * (i + 1.0);  // dependent on column 0
    m(i, 2) = (i == 0) ? 1.0 : 0.0;
  }
  uint32_t kept = OrthonormalizeColumns(&m);
  EXPECT_EQ(kept, 2u);
  EXPECT_EQ(m.cols(), 2u);
}

TEST(SymmetricEigenTest, DiagonalMatrix) {
  DenseMatrix d(3, 3);
  d(0, 0) = 1.0;
  d(1, 1) = 5.0;
  d(2, 2) = 3.0;
  std::vector<double> eigvals;
  DenseMatrix eigvecs;
  SymmetricEigen(d, &eigvals, &eigvecs);
  ASSERT_EQ(eigvals.size(), 3u);
  EXPECT_NEAR(eigvals[0], 5.0, 1e-10);
  EXPECT_NEAR(eigvals[1], 3.0, 1e-10);
  EXPECT_NEAR(eigvals[2], 1.0, 1e-10);
}

TEST(SymmetricEigenTest, ReconstructsMatrix) {
  Rng rng(11);
  const uint32_t n = 8;
  DenseMatrix sym(n, n);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i; j < n; ++j) {
      sym(i, j) = rng.NextGaussian();
      sym(j, i) = sym(i, j);
    }
  }
  std::vector<double> eigvals;
  DenseMatrix v;
  SymmetricEigen(sym, &eigvals, &v);
  // Rebuild V·Λ·Vᵀ.
  DenseMatrix vl(n, n);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) vl(i, j) = v(i, j) * eigvals[j];
  }
  DenseMatrix rebuilt = vl.MultiplyTransposed(v);
  EXPECT_LT(DenseMatrix::MaxAbsDiff(rebuilt, sym), 1e-9);
}

TEST(RandomizedSvdTest, ReconstructsLowRankMatrix) {
  // Build an exactly rank-3 sparse matrix and recover it.
  Rng rng(3);
  const uint32_t n = 40;
  std::vector<Triplet> triplets;
  // Sum of 3 sparse outer products.
  for (int r = 0; r < 3; ++r) {
    std::vector<uint32_t> rows = rng.SampleWithoutReplacement(n, 12);
    std::vector<uint32_t> cols = rng.SampleWithoutReplacement(n, 12);
    for (uint32_t i : rows) {
      for (uint32_t j : cols) {
        triplets.push_back(Triplet{i, j, 1.0 / (r + 1)});
      }
    }
  }
  SparseMatrix a = SparseMatrix::FromTriplets(n, n, triplets);
  SvdOptions options;
  options.rank = 6;
  options.power_iterations = 3;
  auto svd = RandomizedSvd(a, options);
  ASSERT_TRUE(svd.ok());
  // Rebuild U·Σ·Vᵀ and compare.
  DenseMatrix us = svd->u;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < svd->sigma.size(); ++j) {
      us(i, j) *= svd->sigma[j];
    }
  }
  DenseMatrix rebuilt = us.MultiplyTransposed(svd->v);
  EXPECT_LT(DenseMatrix::MaxAbsDiff(rebuilt, a.ToDense()), 1e-6);
}

TEST(RandomizedSvdTest, SingularValuesDescending) {
  DiGraph graph = testing::RandomGraph(50, 250, 8);
  SparseMatrix q = SparseMatrix::BackwardTransition(graph);
  SvdOptions options;
  options.rank = 10;
  auto svd = RandomizedSvd(q, options);
  ASSERT_TRUE(svd.ok());
  for (size_t i = 1; i < svd->sigma.size(); ++i) {
    EXPECT_GE(svd->sigma[i - 1], svd->sigma[i] - 1e-12);
  }
  EXPECT_GE(svd->sigma.back(), 0.0);
}

TEST(RandomizedSvdTest, RejectsBadRank) {
  DiGraph graph = testing::RandomGraph(10, 30, 2);
  SparseMatrix q = SparseMatrix::BackwardTransition(graph);
  SvdOptions options;
  options.rank = 0;
  EXPECT_FALSE(RandomizedSvd(q, options).ok());
  options.rank = 50;  // rank + oversample > n
  EXPECT_FALSE(RandomizedSvd(q, options).ok());
}

}  // namespace
}  // namespace simrank
