#include "simrank/linalg/sparse_matrix.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace simrank {
namespace {

TEST(SparseMatrixTest, FromTripletsSumsDuplicates) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      2, 2, {{0, 0, 1.0}, {0, 0, 2.0}, {1, 0, 5.0}});
  EXPECT_EQ(m.nnz(), 2u);
  DenseMatrix dense = m.ToDense();
  EXPECT_DOUBLE_EQ(dense(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(dense(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(dense(1, 1), 0.0);
}

TEST(SparseMatrixTest, BackwardTransitionRowsSumToOneOrZero) {
  DiGraph graph = testing::PaperExampleGraph();
  SparseMatrix q = SparseMatrix::BackwardTransition(graph);
  DenseMatrix dense = q.ToDense();
  for (uint32_t i = 0; i < graph.n(); ++i) {
    double row_sum = 0.0;
    for (uint32_t j = 0; j < graph.n(); ++j) row_sum += dense(i, j);
    if (graph.InDegree(i) == 0) {
      EXPECT_DOUBLE_EQ(row_sum, 0.0);
    } else {
      EXPECT_NEAR(row_sum, 1.0, 1e-12);
    }
  }
  EXPECT_LE(q.InfinityNorm(), 1.0 + 1e-12);
}

TEST(SparseMatrixTest, BackwardTransitionEntries) {
  DiGraph graph = testing::PaperExampleGraph();
  SparseMatrix q = SparseMatrix::BackwardTransition(graph);
  DenseMatrix dense = q.ToDense();
  // [Q]_{a,b} = 1/|I(a)| iff edge (b -> a): I(a) = {b, g}, so 1/2.
  EXPECT_DOUBLE_EQ(dense(testing::kA, testing::kB), 0.5);
  EXPECT_DOUBLE_EQ(dense(testing::kA, testing::kG), 0.5);
  EXPECT_DOUBLE_EQ(dense(testing::kA, testing::kC), 0.0);
  // I(b) has four members -> 1/4 each.
  EXPECT_DOUBLE_EQ(dense(testing::kB, testing::kE), 0.25);
}

TEST(SparseMatrixTest, MultiplyVectorMatchesDense) {
  DiGraph graph = testing::RandomGraph(30, 120, 5);
  SparseMatrix q = SparseMatrix::BackwardTransition(graph);
  DenseMatrix dense = q.ToDense();
  std::vector<double> x(graph.n());
  for (uint32_t i = 0; i < graph.n(); ++i) x[i] = 0.1 * i - 1.0;
  std::vector<double> y;
  q.MultiplyVector(x, &y);
  for (uint32_t i = 0; i < graph.n(); ++i) {
    double expected = 0.0;
    for (uint32_t j = 0; j < graph.n(); ++j) expected += dense(i, j) * x[j];
    EXPECT_NEAR(y[i], expected, 1e-12);
  }
}

TEST(SparseMatrixTest, MultiplyDenseMatchesDenseProduct) {
  DiGraph graph = testing::RandomGraph(25, 100, 6);
  SparseMatrix q = SparseMatrix::BackwardTransition(graph);
  DenseMatrix dense_q = q.ToDense();
  DenseMatrix s(graph.n(), graph.n());
  for (uint32_t i = 0; i < graph.n(); ++i) {
    for (uint32_t j = 0; j < graph.n(); ++j) {
      s(i, j) = (i == j) ? 1.0 : 0.01 * (i + j);
    }
  }
  EXPECT_LT(DenseMatrix::MaxAbsDiff(q.MultiplyDense(s),
                                    dense_q.Multiply(s)),
            1e-12);
}

TEST(SparseMatrixTest, SandwichMatchesExplicitProduct) {
  DiGraph graph = testing::RandomGraph(25, 100, 7);
  SparseMatrix q = SparseMatrix::BackwardTransition(graph);
  DenseMatrix dense_q = q.ToDense();
  DenseMatrix s = DenseMatrix::Identity(graph.n());
  DenseMatrix expected =
      dense_q.Multiply(s).MultiplyTransposed(dense_q);
  EXPECT_LT(DenseMatrix::MaxAbsDiff(q.SandwichDense(s), expected), 1e-12);
}

TEST(SparseMatrixTest, TransposeRoundTrip) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      3, 2, {{0, 1, 2.0}, {2, 0, -1.0}});
  SparseMatrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  DenseMatrix td = t.ToDense();
  EXPECT_DOUBLE_EQ(td(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(td(0, 2), -1.0);
  EXPECT_LT(DenseMatrix::MaxAbsDiff(t.Transposed().ToDense(), m.ToDense()),
            1e-15);
}

}  // namespace
}  // namespace simrank
