#include "simrank/linalg/dense_matrix.h"

#include <gtest/gtest.h>

namespace simrank {
namespace {

TEST(DenseMatrixTest, ZeroInitialised) {
  DenseMatrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (uint32_t i = 0; i < 2; ++i) {
    for (uint32_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(m(i, j), 0.0);
  }
}

TEST(DenseMatrixTest, IdentityAndConstant) {
  DenseMatrix id = DenseMatrix::Identity(3);
  EXPECT_DOUBLE_EQ(id(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
  DenseMatrix c = DenseMatrix::Constant(2, 2, 0.5);
  EXPECT_DOUBLE_EQ(c(1, 1), 0.5);
}

TEST(DenseMatrixTest, AddScaleFill) {
  DenseMatrix a = DenseMatrix::Constant(2, 2, 1.0);
  DenseMatrix b = DenseMatrix::Constant(2, 2, 2.0);
  a.Add(b);
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
  a.AddScaled(b, 0.5);
  EXPECT_DOUBLE_EQ(a(1, 1), 4.0);
  a.Scale(0.25);
  EXPECT_DOUBLE_EQ(a(0, 1), 1.0);
  a.Fill(-1.0);
  EXPECT_DOUBLE_EQ(a(1, 0), -1.0);
}

TEST(DenseMatrixTest, MultiplyKnownProduct) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  DenseMatrix b(2, 2);
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  DenseMatrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(DenseMatrixTest, MultiplyTransposedEqualsMultiplyOfTranspose) {
  DenseMatrix a(2, 3);
  DenseMatrix b(4, 3);
  for (uint32_t i = 0; i < 2; ++i) {
    for (uint32_t j = 0; j < 3; ++j) a(i, j) = i * 3.0 + j;
  }
  for (uint32_t i = 0; i < 4; ++i) {
    for (uint32_t j = 0; j < 3; ++j) b(i, j) = i - 2.0 * j;
  }
  DenseMatrix direct = a.MultiplyTransposed(b);
  DenseMatrix via_transpose = a.Multiply(b.Transposed());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(direct, via_transpose), 1e-12);
}

TEST(DenseMatrixTest, TransposeInvolution) {
  DenseMatrix a(3, 2);
  a(2, 1) = 5.0;
  a(0, 1) = -1.0;
  EXPECT_EQ(a.Transposed().Transposed(), a);
  EXPECT_DOUBLE_EQ(a.Transposed()(1, 2), 5.0);
}

TEST(DenseMatrixTest, Norms) {
  DenseMatrix a(2, 2);
  a(0, 0) = 3.0;
  a(1, 1) = -4.0;
  EXPECT_DOUBLE_EQ(a.MaxNorm(), 4.0);
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), 5.0);
  DenseMatrix b(2, 2);
  EXPECT_DOUBLE_EQ(DenseMatrix::MaxAbsDiff(a, b), 4.0);
}

}  // namespace
}  // namespace simrank
