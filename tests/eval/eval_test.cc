#include <cmath>
#include <gtest/gtest.h>

#include "simrank/eval/ndcg.h"
#include "simrank/eval/rank_corr.h"
#include "simrank/eval/topk_metrics.h"

namespace simrank {
namespace {

TEST(NdcgTest, IdealRankingScoresOne) {
  std::vector<double> relevance{3, 2, 2, 1, 0};
  EXPECT_DOUBLE_EQ(NdcgAtP(relevance, 5), 1.0);
  EXPECT_DOUBLE_EQ(NdcgAtP(relevance, 3), 1.0);
}

TEST(NdcgTest, WorstRankingScoresBelowOne) {
  std::vector<double> relevance{0, 0, 1, 2, 3};
  const double ndcg = NdcgAtP(relevance, 5);
  EXPECT_GT(ndcg, 0.0);
  EXPECT_LT(ndcg, 0.8);
}

TEST(NdcgTest, AllZeroRelevanceIsZero) {
  EXPECT_DOUBLE_EQ(NdcgAtP({0, 0, 0}, 3), 0.0);
}

TEST(NdcgTest, SwapNearTopCostsMoreThanSwapNearBottom) {
  std::vector<double> top_swap{2, 3, 1, 0.5, 0};   // positions 1,2 swapped
  std::vector<double> bottom_swap{3, 2, 1, 0, 0.5};  // positions 4,5 swapped
  EXPECT_LT(NdcgAtP(top_swap, 5), NdcgAtP(bottom_swap, 5));
}

TEST(NdcgTest, KnownHandComputedValue) {
  // relevance (3, 0), p=2: DCG = 7/1 + 0 = 7; IDCG = 7 -> 1.
  EXPECT_DOUBLE_EQ(NdcgAtP({3, 0}, 2), 1.0);
  // relevance (0, 3): DCG = 0 + 7/log2(3); IDCG = 7.
  EXPECT_NEAR(NdcgAtP({0, 3}, 2), 1.0 / std::log2(3.0), 1e-12);
}

TEST(NdcgForRankingTest, PerfectAgreementIsOne) {
  std::vector<double> truth{0.9, 0.8, 0.7, 0.6, 0.1};
  std::vector<VertexId> ranking{0, 1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(NdcgForRanking(ranking, truth, 5), 1.0);
}

TEST(NdcgForRankingTest, ReversedOrderScoresLower) {
  std::vector<double> truth{0.9, 0.8, 0.7, 0.2, 0.1};
  std::vector<VertexId> reversed{4, 3, 2, 1, 0};
  EXPECT_LT(NdcgForRanking(reversed, truth, 5), 0.9);
}

TEST(KendallTauTest, PerfectAndInverse) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(KendallTau(x, y), 1.0, 1e-12);
  std::vector<double> z{5, 4, 3, 2, 1};
  EXPECT_NEAR(KendallTau(x, z), -1.0, 1e-12);
}

TEST(KendallTauTest, SingleAdjacentSwap) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{2, 1, 3, 4};
  // 1 discordant of 6 pairs: (5 - 1)/6.
  EXPECT_NEAR(KendallTau(x, y), 4.0 / 6.0, 1e-12);
}

TEST(KendallTauTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(KendallTau({1.0}, {2.0}), 0.0);
  EXPECT_DOUBLE_EQ(KendallTau({1, 1, 1}, {2, 2, 2}), 0.0);
}

TEST(SpearmanRhoTest, MonotoneTransformsScoreOne) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{1, 4, 9, 16, 25};
  EXPECT_NEAR(SpearmanRho(x, y), 1.0, 1e-12);
}

TEST(SpearmanRhoTest, HandlesTies) {
  std::vector<double> x{1, 2, 2, 3};
  std::vector<double> y{1, 2, 2, 3};
  EXPECT_NEAR(SpearmanRho(x, y), 1.0, 1e-12);
}

TEST(TopKOverlapTest, Basics) {
  EXPECT_DOUBLE_EQ(TopKOverlap({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(TopKOverlap({1, 2, 3}, {4, 5, 6}), 0.0);
  EXPECT_NEAR(TopKOverlap({1, 2, 3}, {3, 4, 5}), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(TopKOverlap({}, {1}), 0.0);
}

TEST(RankingInversionsTest, PaperStyleAdjacentSwap) {
  // Fig. 6h: identical top-30 except one adjacent transposition -> 1.
  std::vector<VertexId> a{10, 20, 30, 40};
  std::vector<VertexId> b{10, 20, 40, 30};
  EXPECT_EQ(RankingInversions(a, b), 1u);
  EXPECT_EQ(RankingInversions(a, a), 0u);
}

TEST(RankingInversionsTest, IgnoresNonCommonItems) {
  std::vector<VertexId> a{1, 2, 99};
  std::vector<VertexId> b{2, 1, 77};
  EXPECT_EQ(RankingInversions(a, b), 1u);
}

TEST(DisagreeingPositionsTest, ReportsIndices) {
  std::vector<VertexId> a{1, 2, 3, 4};
  std::vector<VertexId> b{1, 3, 2, 4};
  EXPECT_EQ(DisagreeingPositions(a, b), (std::vector<uint32_t>{1, 2}));
  EXPECT_TRUE(DisagreeingPositions(a, a).empty());
}

}  // namespace
}  // namespace simrank
