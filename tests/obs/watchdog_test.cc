#include "simrank/obs/watchdog.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "simrank/obs/profiler.h"

namespace simrank {
namespace {

TEST(WatchdogTest, QuietWhileLoopBeats) {
  WatchdogOptions options;
  options.poll_interval_ms = 5;
  options.stall_threshold_us = 200'000;
  options.name = "beating-loop";
  Watchdog watchdog(options);
  std::atomic<bool> stop{false};
  std::thread loop([&watchdog, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      watchdog.Beat();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  watchdog.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const Watchdog::Snapshot snapshot = watchdog.snapshot();
  watchdog.Stop();
  stop.store(true, std::memory_order_release);
  loop.join();
  EXPECT_EQ(snapshot.stalls, 0u);
  EXPECT_LT(snapshot.max_loop_lag_us, options.stall_threshold_us);
}

TEST(WatchdogTest, DetectsInjectedStallOncePerEpisode) {
  WatchdogOptions options;
  options.poll_interval_ms = 5;
  options.stall_threshold_us = 40'000;
  options.name = "stalling-loop";
  Watchdog watchdog(options);
  std::atomic<bool> stop{false};
  std::atomic<bool> stall{false};
  std::thread loop([&] {
    ScopedProfiledThread profiled("stalling-loop");
    watchdog.SetWatchedTid(CurrentTid());
    while (!stop.load(std::memory_order_acquire)) {
      watchdog.Beat();
      if (stall.load(std::memory_order_acquire)) {
        // One long gap between beats: a deterministic stall episode.
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        stall.store(false, std::memory_order_release);
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
  watchdog.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(watchdog.snapshot().stalls, 0u);

  stall.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  const Watchdog::Snapshot during = watchdog.snapshot();
  EXPECT_EQ(during.stalls, 1u) << "one episode, counted once";
  EXPECT_GE(during.max_loop_lag_us, options.stall_threshold_us);
  EXPECT_GE(during.last_stall_us, options.stall_threshold_us);

  // A second injected episode increments the count again.
  stall.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  EXPECT_EQ(watchdog.snapshot().stalls, 2u);

  watchdog.Stop();
  stop.store(true, std::memory_order_release);
  loop.join();
}

TEST(WatchdogTest, TracksQueueDepthHighWater) {
  WatchdogOptions options;
  options.poll_interval_ms = 2;
  options.stall_threshold_us = 1'000'000;
  Watchdog watchdog(options);
  std::atomic<uint64_t> depth{0};
  watchdog.SetQueueDepthProvider(
      [&depth] { return depth.load(std::memory_order_relaxed); });
  watchdog.Beat();
  watchdog.Start();
  depth.store(3);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  depth.store(17);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  depth.store(4);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const Watchdog::Snapshot snapshot = watchdog.snapshot();
  watchdog.Stop();
  EXPECT_EQ(snapshot.queue_depth, 4u);
  EXPECT_GE(snapshot.max_queue_depth, 17u);
}

TEST(WatchdogTest, StopIsIdempotentAndRestartable) {
  Watchdog watchdog;
  watchdog.Beat();
  watchdog.Start();
  watchdog.Stop();
  watchdog.Stop();  // no-op
  WatchdogOptions options;
  options.poll_interval_ms = 3;
  watchdog.set_options(options);  // valid while stopped
  watchdog.Beat();
  watchdog.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  watchdog.Stop();
  EXPECT_EQ(watchdog.options().poll_interval_ms, 3u);
}

}  // namespace
}  // namespace simrank
