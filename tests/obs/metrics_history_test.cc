#include "simrank/obs/metrics_history.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

namespace simrank {
namespace {

constexpr const char* kExposition =
    "# TYPE simrank_requests_total counter\n"
    "simrank_requests_total{endpoint=\"pair\"} 41\n"
    "simrank_requests_total{endpoint=\"topk\"} 7\n"
    "# TYPE simrank_inflight gauge\n"
    "simrank_inflight 3\n"
    "# TYPE simrank_request_seconds histogram\n"
    "simrank_request_seconds_bucket{le=\"0.001\"} 10\n"
    "simrank_request_seconds_bucket{le=\"+Inf\"} 12\n"
    "simrank_request_seconds_sum 0.5\n"
    "simrank_request_seconds_count 12\n";

TEST(ParsePrometheusTextTest, GroupsFamiliesAndLabels) {
  const auto families = ParsePrometheusText(kExposition);
  ASSERT_EQ(families.size(), 3u);

  EXPECT_EQ(families[0].name, "simrank_requests_total");
  EXPECT_EQ(families[0].type, "counter");
  ASSERT_EQ(families[0].samples.size(), 2u);
  EXPECT_EQ(families[0].samples[0].labels, "{endpoint=\"pair\"}");
  EXPECT_EQ(families[0].samples[0].value, 41.0);
  EXPECT_EQ(families[0].samples[1].value, 7.0);

  EXPECT_EQ(families[1].name, "simrank_inflight");
  EXPECT_EQ(families[1].type, "gauge");
  ASSERT_EQ(families[1].samples.size(), 1u);
  EXPECT_EQ(families[1].samples[0].labels, "");
  EXPECT_EQ(families[1].samples[0].value, 3.0);

  // Histogram suffixes fold into the declared family; the sample names
  // keep their _bucket/_sum/_count spelling.
  EXPECT_EQ(families[2].name, "simrank_request_seconds");
  EXPECT_EQ(families[2].type, "histogram");
  ASSERT_EQ(families[2].samples.size(), 4u);
  EXPECT_EQ(families[2].samples[0].name, "simrank_request_seconds_bucket");
  EXPECT_EQ(families[2].samples[2].name, "simrank_request_seconds_sum");
  EXPECT_EQ(families[2].samples[3].value, 12.0);
}

TEST(ParsePrometheusTextTest, SkipsGarbageLines) {
  const auto families = ParsePrometheusText(
      "# HELP something helpful\n"
      "not a metric line at all\n"
      "# TYPE ok gauge\n"
      "ok 1\n"
      "missing_value\n"
      "bad_value x\n");
  ASSERT_EQ(families.size(), 1u);
  EXPECT_EQ(families[0].name, "ok");
  ASSERT_EQ(families[0].samples.size(), 1u);
}

TEST(MetricsHistoryTest, RecordsAndQueriesSeries) {
  MetricsHistory history({/*window_seconds=*/60, /*interval_ms=*/1000});
  history.Record(kExposition, 1000);
  history.Record(
      "# TYPE simrank_inflight gauge\n"
      "simrank_inflight 5\n",
      1001);
  EXPECT_GT(history.series_count(), 0u);

  const std::string json = history.QueryJson("simrank_inflight", 0);
  EXPECT_NE(json.find("simrank_inflight"), std::string::npos);
  EXPECT_NE(json.find("1000"), std::string::npos) << json;
  EXPECT_NE(json.find("1001"), std::string::npos) << json;
  EXPECT_NE(json.find("5"), std::string::npos) << json;

  // Histogram families expand to their _bucket/_sum/_count series.
  const std::string histogram_json =
      history.QueryJson("simrank_request_seconds", 0);
  EXPECT_NE(histogram_json.find("simrank_request_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(histogram_json.find("simrank_request_seconds_count"),
            std::string::npos);

  const std::string list = history.ListJson();
  EXPECT_NE(list.find("simrank_requests_total"), std::string::npos);
  EXPECT_NE(list.find("simrank_inflight"), std::string::npos);
}

TEST(MetricsHistoryTest, WindowDropsOldPoints) {
  MetricsHistory history({/*window_seconds=*/300, /*interval_ms=*/1000});
  const char* gauge =
      "# TYPE g gauge\n"
      "g %d\n";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), gauge, 1);
  history.Record(buffer, 1000);
  std::snprintf(buffer, sizeof(buffer), gauge, 2);
  history.Record(buffer, 1200);
  // A 100 s window anchored at the newest stamp (1200) excludes 1000.
  const std::string json = history.QueryJson("g", 100);
  EXPECT_NE(json.find("1200"), std::string::npos) << json;
  EXPECT_EQ(json.find("[1000,"), std::string::npos) << json;
}

TEST(MetricsHistoryTest, RingCapsPointsPerSeries) {
  // window 10 s at 1 s interval -> ~10 slots; 50 recordings must not grow
  // unbounded and must keep the newest points.
  MetricsHistory history({/*window_seconds=*/10, /*interval_ms=*/1000});
  for (int i = 0; i < 50; ++i) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer),
                  "# TYPE g gauge\ng %d\n", i);
    history.Record(buffer, 1000 + i);
  }
  const std::string json = history.QueryJson("g", 0);
  EXPECT_NE(json.find("1049"), std::string::npos) << json;  // newest kept
  EXPECT_EQ(json.find("[1000,"), std::string::npos) << json;  // oldest gone
}

TEST(MetricsHistoryTest, UnknownMetricGivesEmptySeries) {
  MetricsHistory history({60, 1000});
  history.Record(kExposition, 1000);
  const std::string json = history.QueryJson("no_such_metric", 0);
  EXPECT_NE(json.find("\"series\":[]"), std::string::npos) << json;
}

TEST(MetricsSamplerTest, DrivesHistoryAtInterval) {
  MetricsHistory history({/*window_seconds=*/60, /*interval_ms=*/20});
  std::atomic<int> calls{0};
  MetricsSampler sampler(&history, [&calls] {
    ++calls;
    return std::string("# TYPE g gauge\ng 1\n");
  });
  sampler.Start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (sampler.samples_taken() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  sampler.Stop();
  EXPECT_GE(sampler.samples_taken(), 3u);
  EXPECT_GE(calls.load(), 3);
  EXPECT_EQ(history.series_count(), 1u);
}

}  // namespace
}  // namespace simrank
