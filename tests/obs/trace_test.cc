// Unit tests for the tracing subsystem: the span recorder and its JSON,
// trace-id parsing, thread-local binding, the slow-query ring and the
// background JSONL sink.
#include "simrank/obs/trace.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "simrank/common/string_util.h"
#include "simrank/obs/log_sink.h"
#include "simrank/obs/slow_query_log.h"

namespace simrank {
namespace {

TEST(TraceId, GenerateIsNonZeroAndDistinct) {
  const uint64_t a = GenerateTraceId();
  const uint64_t b = GenerateTraceId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(TraceId, HexRoundTrip) {
  const uint64_t id = 0x0123456789abcdefULL;
  const std::string hex = TraceIdToHex(id);
  EXPECT_EQ(hex, "0123456789abcdef");
  uint64_t parsed = 0;
  ASSERT_TRUE(ParseTraceId(hex, &parsed));
  EXPECT_EQ(parsed, id);
}

TEST(TraceId, ParseRejectsMalformed) {
  uint64_t parsed = 42;
  EXPECT_FALSE(ParseTraceId("", &parsed));
  EXPECT_FALSE(ParseTraceId("xyz", &parsed));
  EXPECT_FALSE(ParseTraceId("0", &parsed));  // zero id is reserved
  EXPECT_FALSE(ParseTraceId("00000000000000000", &parsed));  // 17 digits
  EXPECT_FALSE(ParseTraceId("12 34", &parsed));
  EXPECT_EQ(parsed, 42u) << "failed parse must not clobber the output";
  EXPECT_TRUE(ParseTraceId("f", &parsed));
  EXPECT_EQ(parsed, 0xfu);
}

TEST(TraceRecorder, ZeroIdGetsGenerated) {
  TraceRecorder recorder(0);
  EXPECT_NE(recorder.trace_id(), 0u);
  TraceRecorder pinned(0x1234);
  EXPECT_EQ(pinned.trace_id(), 0x1234u);
}

TEST(TraceRecorder, NestingSetsParents) {
  TraceRecorder recorder(1);
  const int root = recorder.OpenSpan(TraceStage::kRequest, "pair");
  const int child = recorder.OpenSpan(TraceStage::kCacheLookup);
  const int grandchild = recorder.OpenSpan(TraceStage::kDecode);
  recorder.CloseSpan(grandchild);
  recorder.CloseSpan(child);
  const int sibling = recorder.OpenSpan(TraceStage::kSerialize);
  recorder.CloseSpan(sibling);
  recorder.CloseSpan(root);

  ASSERT_EQ(recorder.num_spans(), 4u);
  EXPECT_EQ(recorder.span(0).parent, -1);
  EXPECT_EQ(recorder.span(1).parent, 0);
  EXPECT_EQ(recorder.span(2).parent, 1);
  EXPECT_EQ(recorder.span(3).parent, 0);
  EXPECT_STREQ(recorder.span(0).detail, "pair");
  EXPECT_EQ(recorder.span(0).start_ns, 0u)
      << "first span anchors the relative timeline";
  // The root closed last, so it covers every child.
  EXPECT_GE(recorder.span(0).duration_ns, recorder.span(1).duration_ns);
  EXPECT_GE(recorder.span(1).duration_ns, recorder.span(2).duration_ns);
}

TEST(TraceRecorder, CloseIgnoresInvalidIndex) {
  TraceRecorder recorder(1);
  recorder.CloseSpan(-1);
  recorder.CloseSpan(7);
  EXPECT_EQ(recorder.num_spans(), 0u);
}

TEST(TraceRecorder, AddCompletedSpanUsesAbsoluteStart) {
  TraceRecorder recorder(1);
  const int root = recorder.OpenSpan(TraceStage::kRequest);
  const uint64_t start = TraceNowNanos();
  recorder.AddCompletedSpan(TraceStage::kShardExchange, start, 1500,
                            "shard=1");
  recorder.CloseSpan(root);
  ASSERT_EQ(recorder.num_spans(), 2u);
  EXPECT_EQ(recorder.span(1).duration_ns, 1500u);
  EXPECT_STREQ(recorder.span(1).detail, "shard=1");
  // A start earlier than the recorder's first span clamps to 0 instead
  // of underflowing.
  recorder.AddCompletedSpan(TraceStage::kQueueWait, 1, 10);
  EXPECT_EQ(recorder.span(2).start_ns, 0u);
}

TEST(TraceRecorder, DropsBeyondCapacityAndCounts) {
  TraceRecorder recorder(1);
  for (uint32_t i = 0; i < TraceRecorder::kMaxSpans + 10; ++i) {
    const int span = recorder.OpenSpan(TraceStage::kCacheLookup);
    if (i < TraceRecorder::kMaxSpans) {
      EXPECT_GE(span, 0);
    } else {
      EXPECT_EQ(span, -1);
    }
    recorder.CloseSpan(span);
  }
  EXPECT_EQ(recorder.num_spans(), TraceRecorder::kMaxSpans);
  EXPECT_EQ(recorder.dropped_spans(), 10u);
  EXPECT_NE(recorder.ToJson().find("\"dropped_spans\":10"),
            std::string::npos);
}

TEST(TraceRecorder, DetailTruncates) {
  TraceRecorder recorder(1);
  const std::string long_detail(100, 'x');
  recorder.OpenSpan(TraceStage::kRequest, long_detail);
  EXPECT_EQ(std::strlen(recorder.span(0).detail),
            TraceSpan::kDetailCapacity - 1);
}

TEST(TraceRecorder, JsonShape) {
  TraceRecorder recorder(0xabcd);
  const int root = recorder.OpenSpan(TraceStage::kRequest, "topk");
  recorder.Add(TraceCounter::kCacheHits, 2);
  recorder.Add(TraceCounter::kBytesRead, 4096);
  recorder.CloseSpan(root);
  recorder.AddChildTrace("{\"trace_id\":\"beef\",\"spans\":[]}");
  recorder.AddChildTrace("not json");  // ignored

  const std::string json = recorder.ToJson();
  EXPECT_EQ(json.find('\n'), std::string::npos)
      << "trace JSON must be header-safe (single line)";
  EXPECT_NE(json.find("\"trace_id\":\"000000000000abcd\""),
            std::string::npos);
  EXPECT_NE(json.find("\"stage\":\"request\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"topk\""), std::string::npos);
  EXPECT_NE(json.find("\"cache_hits\":2"), std::string::npos);
  EXPECT_NE(json.find("\"bytes_read\":4096"), std::string::npos);
  ASSERT_EQ(recorder.children().size(), 1u);
  EXPECT_NE(json.find("\"children\":[{\"trace_id\":\"beef\""),
            std::string::npos);
  EXPECT_EQ(json.find("dropped_spans"), std::string::npos)
      << "dropped_spans omitted when zero";
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(TraceBinding, ScopesAreNoOpsWithoutRecorder) {
  EXPECT_EQ(CurrentTraceRecorder(), nullptr);
  {
    TraceScope scope(TraceStage::kCacheLookup);
    TraceAdd(TraceCounter::kCacheHits, 1);
  }
  EXPECT_EQ(CurrentTraceRecorder(), nullptr);
}

TEST(TraceBinding, BindsAndRestores) {
  TraceRecorder outer(1);
  TraceRecorder inner(2);
  {
    TraceBinding bind_outer(&outer);
    EXPECT_EQ(CurrentTraceRecorder(), &outer);
    {
      TraceBinding bind_inner(&inner);
      EXPECT_EQ(CurrentTraceRecorder(), &inner);
      TraceScope scope(TraceStage::kDecode);
      TraceAdd(TraceCounter::kRowsDecoded, 3);
    }
    EXPECT_EQ(CurrentTraceRecorder(), &outer);
  }
  EXPECT_EQ(CurrentTraceRecorder(), nullptr);
  EXPECT_EQ(inner.num_spans(), 1u);
  EXPECT_EQ(inner.counter(TraceCounter::kRowsDecoded), 3u);
  EXPECT_EQ(outer.num_spans(), 0u);
}

TEST(TraceBinding, IsPerThread) {
  TraceRecorder recorder(1);
  TraceBinding binding(&recorder);
  std::thread other([] {
    EXPECT_EQ(CurrentTraceRecorder(), nullptr)
        << "a binding must not leak into other threads";
  });
  other.join();
}

TEST(TraceStageNames, AllDistinctAndNonEmpty) {
  std::vector<std::string> seen;
  for (uint32_t i = 0; i < kNumTraceStages; ++i) {
    const char* name = TraceStageName(static_cast<TraceStage>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_NE(std::strlen(name), 0u);
    for (const std::string& previous : seen) EXPECT_NE(previous, name);
    seen.push_back(name);
  }
  for (uint32_t i = 0; i < kNumTraceCounters; ++i) {
    ASSERT_NE(TraceCounterName(static_cast<TraceCounter>(i)), nullptr);
  }
}

TEST(SlowQueryLog, EvictsOldestFirst) {
  SlowQueryLog log(3);
  for (uint64_t i = 1; i <= 5; ++i) {
    SlowQueryEntry entry;
    entry.trace_id = i;
    entry.duration_micros = i * 100;
    entry.target = StrFormat("/v1/pair?a=%llu",
                             static_cast<unsigned long long>(i));
    log.Record(std::move(entry));
  }
  EXPECT_EQ(log.total_recorded(), 5u);
  EXPECT_EQ(log.capacity(), 3u);
  const std::vector<SlowQueryEntry> entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].trace_id, 3u);
  EXPECT_EQ(entries[1].trace_id, 4u);
  EXPECT_EQ(entries[2].trace_id, 5u);
}

TEST(SlowQueryLog, ZeroCapacityDropsEverything) {
  SlowQueryLog log(0);
  log.Record(SlowQueryEntry{});
  EXPECT_TRUE(log.Snapshot().empty());
}

TEST(JsonlLogSink, AppendsLinesInOrder) {
  const std::string path =
      StrFormat("/tmp/simrank-trace-test-%d.jsonl", getpid());
  std::remove(path.c_str());
  {
    auto sink = JsonlLogSink::Open(path);
    ASSERT_TRUE(sink.ok()) << sink.status().ToString();
    for (int i = 0; i < 100; ++i) {
      (*sink)->Append(StrFormat("{\"i\":%d}", i));
    }
    (*sink)->Flush();
    EXPECT_EQ((*sink)->lines_written(), 100u);
    EXPECT_EQ((*sink)->lines_dropped(), 0u);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char chunk[4096];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    content.append(chunk, got);
  }
  std::fclose(f);
  std::remove(path.c_str());
  int lines = 0;
  size_t at = 0;
  while ((at = content.find('\n', at)) != std::string::npos) {
    ++lines;
    ++at;
  }
  EXPECT_EQ(lines, 100);
  EXPECT_EQ(content.substr(0, 8), "{\"i\":0}\n");
  EXPECT_NE(content.find("{\"i\":99}\n"), std::string::npos);
}

TEST(JsonlLogSink, OpenFailsOnBadPath) {
  auto sink = JsonlLogSink::Open("/nonexistent-dir/x/y.jsonl");
  EXPECT_FALSE(sink.ok());
}

}  // namespace
}  // namespace simrank
