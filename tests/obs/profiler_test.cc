#include "simrank/obs/profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "simrank/common/string_util.h"

namespace simrank {
namespace {

// Separate compilation-visible burner so its symbol shows up in profiles.
// noinline keeps the frame (and its name) out of the caller.
__attribute__((noinline)) uint64_t BurnCpu(std::atomic<bool>* stop) {
  volatile uint64_t acc = 1;
  while (!stop->load(std::memory_order_relaxed)) {
    for (int i = 0; i < 4096; ++i) acc = acc * 2862933555777941757ull + 3037;
  }
  return acc;
}

#if defined(__linux__)

TEST(CpuProfilerTest, SamplesRegisteredBusyThread) {
  std::atomic<bool> stop{false};
  std::thread burner([&stop] {
    ScopedProfiledThread profiled("burner");
    BurnCpu(&stop);
  });
  auto report =
      CpuProfiler::Instance().ProfileFor(0.4, /*frequency_hz=*/211);
  stop.store(true, std::memory_order_relaxed);
  burner.join();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->armed_threads, 1u);
  EXPECT_GT(report->total_samples, 10u)
      << "a pegged thread at 211 Hz over 0.4 s should deliver samples";
  EXPECT_EQ(report->frequency_hz, 211u);
  EXPECT_GT(report->duration_seconds, 0.3);
  // The burner's stacks are rooted at its registered name and symbolize
  // into the burner function (internal linkage — exercises the .symtab
  // fallback).
  EXPECT_NE(report->collapsed.find("burner;"), std::string::npos)
      << report->collapsed;
  EXPECT_NE(report->collapsed.find("BurnCpu"), std::string::npos)
      << report->collapsed;
}

TEST(CpuProfilerTest, IdleRegisteredThreadCostsNothing) {
  std::atomic<bool> stop{false};
  std::thread idler([&stop] {
    ScopedProfiledThread profiled("idler");
    while (!stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  auto report = CpuProfiler::Instance().ProfileFor(0.25);
  stop.store(true, std::memory_order_release);
  idler.join();
  ASSERT_TRUE(report.ok());
  // CPU-time timers do not fire for a sleeping thread.
  for (std::string_view line : StrSplit(report->collapsed, '\n')) {
    EXPECT_EQ(line.find("idler;"), std::string_view::npos) << line;
  }
}

TEST(CpuProfilerTest, ConcurrentSessionsAreRejected) {
  std::atomic<bool> stop{false};
  std::thread burner([&stop] {
    ScopedProfiledThread profiled("burner2");
    BurnCpu(&stop);
  });
  ASSERT_TRUE(CpuProfiler::Instance().Start().ok());
  EXPECT_TRUE(CpuProfiler::Instance().running());
  const Status second = CpuProfiler::Instance().Start();
  EXPECT_FALSE(second.ok());
  const ProfileReport report = CpuProfiler::Instance().Stop();
  EXPECT_FALSE(CpuProfiler::Instance().running());
  stop.store(true, std::memory_order_relaxed);
  burner.join();
  // Stop after Stop is a harmless no-op with an empty report.
  const ProfileReport idle_report = CpuProfiler::Instance().Stop();
  EXPECT_EQ(idle_report.total_samples, 0u);
  (void)report;
}

TEST(CpuProfilerTest, RejectsOutOfRangeArguments) {
  EXPECT_FALSE(CpuProfiler::Instance().Start(0).ok());
  EXPECT_FALSE(CpuProfiler::Instance().Start(CpuProfiler::kMaxHz + 1).ok());
  EXPECT_FALSE(CpuProfiler::Instance().ProfileFor(0.0).ok());
  EXPECT_FALSE(
      CpuProfiler::Instance().ProfileFor(CpuProfiler::kMaxSeconds + 1).ok());
}

TEST(CpuProfilerTest, CaptureThreadStackNamesBusyFrame) {
  std::atomic<bool> stop{false};
  std::atomic<int64_t> tid{0};
  std::thread burner([&stop, &tid] {
    ScopedProfiledThread profiled("capture-me");
    tid.store(CurrentTid(), std::memory_order_release);
    BurnCpu(&stop);
  });
  while (tid.load(std::memory_order_acquire) == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Give the thread a beat to be reliably inside the burn loop.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const std::string stack =
      CpuProfiler::Instance().CaptureThreadStack(tid.load());
  stop.store(true, std::memory_order_relaxed);
  burner.join();
  ASSERT_FALSE(stack.empty());
  EXPECT_EQ(stack.rfind("capture-me", 0), 0u) << stack;
}

TEST(CpuProfilerTest, CaptureOfUnknownTidIsEmpty) {
  EXPECT_EQ(CpuProfiler::Instance().CaptureThreadStack(1), "");
}

TEST(ProfileLoggerTest, WritesJsonlRecords) {
  const std::string path =
      StrFormat("/tmp/oipsim_profile_log_%d.jsonl", ::getpid());
  std::remove(path.c_str());
  std::atomic<bool> stop{false};
  std::thread burner([&stop] {
    ScopedProfiledThread profiled("logged-burner");
    BurnCpu(&stop);
  });
  ProfileLogger::Options options;
  options.path = path;
  options.frequency_hz = 211;
  options.period_seconds = 1;
  options.duty_cycle = 0.3;
  auto logger = ProfileLogger::Start(options);
  ASSERT_TRUE(logger.ok()) << logger.status().ToString();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while ((*logger)->profiles_written() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  (*logger)->Stop();
  stop.store(true, std::memory_order_relaxed);
  burner.join();
  EXPECT_GE((*logger)->profiles_written(), 1u);

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char chunk[4096];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    content.append(chunk, got);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(content.find("\"collapsed\""), std::string::npos);
  EXPECT_NE(content.find("\"frequency_hz\":211"), std::string::npos);
  EXPECT_NE(content.find("logged-burner"), std::string::npos);
}

#else  // !__linux__

TEST(CpuProfilerTest, UnsupportedPlatformReturnsUnimplemented) {
  EXPECT_FALSE(CpuProfiler::Instance().Start().ok());
  EXPECT_FALSE(CpuProfiler::Instance().ProfileFor(1.0).ok());
  EXPECT_EQ(CpuProfiler::Instance().CaptureThreadStack(1), "");
}

#endif  // __linux__

}  // namespace
}  // namespace simrank
