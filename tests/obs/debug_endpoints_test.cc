// End-to-end tests of the self-diagnosis HTTP surface on a real server:
// /v1/debug/profile, /v1/debug/timeseries, /v1/debug/stall, and the
// watchdog / build_info blocks in /v1/stats and /metrics.
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "simrank/common/string_util.h"
#include "simrank/index/query_engine.h"
#include "simrank/index/walk_index.h"
#include "simrank/server/http_client.h"
#include "simrank/server/server.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

class DiagnosticsFixture {
 public:
  explicit DiagnosticsFixture(ServerOptions options = {})
      : graph_(testing::RandomGraph(60, 240, 11)),
        index_(BuildIndex(graph_)),
        engine_(index_) {
    options.port = 0;
    server_ = std::make_unique<SimRankServer>(engine_, options, nullptr);
    OIPSIM_CHECK(server_->Bind().ok());
    serve_thread_ = std::thread([this] {
      OIPSIM_CHECK(server_->Serve().ok());
    });
  }

  ~DiagnosticsFixture() {
    if (serve_thread_.joinable()) {
      server_->Shutdown();
      serve_thread_.join();
    }
  }

  uint16_t port() const { return server_->port(); }
  SimRankServer& server() { return *server_; }

  Result<HttpClientResponse> Get(const std::string& target) {
    auto client = LoopbackHttpClient::Connect(port());
    OIPSIM_CHECK(client.ok());
    return client->Get(target);
  }

 private:
  static WalkIndex BuildIndex(const DiGraph& graph) {
    WalkIndexOptions options;
    options.num_fingerprints = 48;
    auto index = WalkIndex::Build(graph, options);
    OIPSIM_CHECK(index.ok());
    return std::move(*index);
  }

  DiGraph graph_;
  WalkIndex index_;
  QueryEngine engine_;
  std::unique_ptr<SimRankServer> server_;
  std::thread serve_thread_;
};

#if defined(__linux__)
TEST(DebugProfileTest, ReturnsCollapsedStacksUnderLoad) {
  DiagnosticsFixture fixture;
  std::atomic<bool> stop{false};
  std::thread load([&fixture, &stop] {
    auto client = LoopbackHttpClient::Connect(fixture.port());
    OIPSIM_CHECK(client.ok());
    uint32_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto response =
          client->Get(StrFormat("/v1/pair?a=%u&b=%u", i % 60, (i + 7) % 60));
      OIPSIM_CHECK(response.ok() && response->status == 200);
      ++i;
    }
  });
  auto response = fixture.Get("/v1/debug/profile?seconds=0.5&hz=211");
  stop.store(true, std::memory_order_relaxed);
  load.join();
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200);
  EXPECT_EQ(response->body.rfind("# profile ", 0), 0u) << response->body;
  EXPECT_NE(response->body.find("frequency_hz=211"), std::string::npos);
  // The epoll loop burns CPU serving the load, so its registered root
  // frame must appear with symbolized simrank frames under it.
  EXPECT_NE(response->body.find("epoll-loop;"), std::string::npos)
      << response->body;
  EXPECT_NE(response->body.find("simrank::"), std::string::npos)
      << response->body;
}

TEST(DebugProfileTest, ValidatesParamsAndMethod) {
  DiagnosticsFixture fixture;
  EXPECT_EQ(fixture.Get("/v1/debug/profile?seconds=0")->status, 400);
  EXPECT_EQ(fixture.Get("/v1/debug/profile?seconds=120")->status, 400);
  EXPECT_EQ(fixture.Get("/v1/debug/profile?hz=0")->status, 400);
  EXPECT_EQ(fixture.Get("/v1/debug/profile?hz=100000")->status, 400);
  EXPECT_EQ(fixture.Get("/v1/debug/profile?bogus=1")->status, 400);
  auto client = LoopbackHttpClient::Connect(fixture.port());
  ASSERT_TRUE(client.ok());
  auto post = client->Post("/v1/debug/profile", "{}");
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post->status, 405);
}

TEST(DebugProfileTest, ConcurrentProfileAnswers409) {
  DiagnosticsFixture fixture;
  std::thread first([&fixture] {
    auto response = fixture.Get("/v1/debug/profile?seconds=1");
    OIPSIM_CHECK(response.ok() && response->status == 200);
  });
  // Let the first session arm, then a second request must be rejected.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  auto second = fixture.Get("/v1/debug/profile?seconds=1");
  first.join();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->status, 409);
}

TEST(DebugProfileTest, ProfilingDoesNotChangeResponseBytes) {
  DiagnosticsFixture fixture;
  auto client = LoopbackHttpClient::Connect(fixture.port());
  ASSERT_TRUE(client.ok());
  std::vector<std::string> before;
  for (uint32_t v = 0; v < 8; ++v) {
    auto response = client->Get(StrFormat("/v1/pair?a=%u&b=%u", v, v + 1));
    ASSERT_TRUE(response.ok() && response->status == 200);
    before.push_back(std::move(response->body));
  }
  std::thread profile([&fixture] {
    auto response = fixture.Get("/v1/debug/profile?seconds=1");
    OIPSIM_CHECK(response.ok() && response->status == 200);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  for (uint32_t v = 0; v < 8; ++v) {
    auto response = client->Get(StrFormat("/v1/pair?a=%u&b=%u", v, v + 1));
    ASSERT_TRUE(response.ok() && response->status == 200);
    EXPECT_EQ(response->body, before[v]) << "vertex " << v;
  }
  profile.join();
}
#endif  // __linux__

TEST(DebugTimeseriesTest, ServesRecordedSeries) {
  ServerOptions options;
  options.metrics_history_interval_ms = 20;  // fast sampling for the test
  DiagnosticsFixture fixture(options);
  // Wait until the sampler recorded at least one exposition.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    auto list = fixture.Get("/v1/debug/timeseries");
    ASSERT_TRUE(list.ok());
    ASSERT_EQ(list->status, 200);
    if (list->body.find("simrank_uptime_seconds") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  auto series = fixture.Get("/v1/debug/timeseries?metric=simrank_inflight");
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->status, 200);
  EXPECT_NE(series->body.find("simrank_inflight"), std::string::npos);
  EXPECT_NE(series->body.find("\"points\""), std::string::npos)
      << series->body;

  auto bad = fixture.Get("/v1/debug/timeseries?metric=g&window=abc");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 400);
}

TEST(DebugTimeseriesTest, DisabledHistoryAnswers503) {
  ServerOptions options;
  options.metrics_history_window_s = 0;
  DiagnosticsFixture fixture(options);
  auto response = fixture.Get("/v1/debug/timeseries");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 503);
}

TEST(DebugStallTest, ArmedStallHookTripsWatchdogDeterministically) {
  ServerOptions options;
  options.debug_stall_limit_ms = 500;
  options.watchdog_interval_ms = 5;
  options.watchdog_stall_us = 50'000;  // 50 ms
  DiagnosticsFixture fixture(options);
  EXPECT_EQ(fixture.server().watchdog_snapshot().stalls, 0u);
  // Blocks the loop thread for 200 ms — past the 50 ms threshold.
  auto response = fixture.Get("/v1/debug/stall?ms=200");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200);
  EXPECT_NE(response->body.find("\"stalled_ms\":200"), std::string::npos);
  // The monitor observes the lag while the loop sleeps; give it one more
  // poll to finalize counters after the beat resumes.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fixture.server().watchdog_snapshot().stalls == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const Watchdog::Snapshot snapshot = fixture.server().watchdog_snapshot();
  EXPECT_GE(snapshot.stalls, 1u);
  EXPECT_GE(snapshot.max_loop_lag_us, 50'000u);

  // The request's duration is clamped to the configured limit.
  auto clamped = fixture.Get("/v1/debug/stall?ms=100000");
  ASSERT_TRUE(clamped.ok());
  EXPECT_NE(clamped->body.find("\"stalled_ms\":500"), std::string::npos)
      << clamped->body;
}

TEST(DebugStallTest, UnarmedStallHookIs404) {
  DiagnosticsFixture fixture;  // debug_stall_limit_ms defaults to 0
  auto response = fixture.Get("/v1/debug/stall?ms=10");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 404);
}

TEST(StatsSurfaceTest, ExposesBuildInfoWatchdogAndMemory) {
  DiagnosticsFixture fixture;
  auto stats = fixture.Get("/v1/stats");
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->status, 200);
  EXPECT_NE(stats->body.find("\"build_info\""), std::string::npos);
  EXPECT_NE(stats->body.find("\"compiler\""), std::string::npos);
  EXPECT_NE(stats->body.find("\"uptime_seconds\""), std::string::npos);
  EXPECT_NE(stats->body.find("\"watchdog\""), std::string::npos);
  EXPECT_NE(stats->body.find("\"dispatch_latency_us\""), std::string::npos);
#if defined(__linux__)
  EXPECT_NE(stats->body.find("\"process_memory\""), std::string::npos);
  EXPECT_NE(stats->body.find("\"resident_bytes\""), std::string::npos);
#endif

  auto metrics = fixture.Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->body.find("simrank_build_info{"), std::string::npos);
  EXPECT_NE(metrics->body.find("simrank_uptime_seconds"), std::string::npos);
  EXPECT_NE(metrics->body.find("simrank_loop_lag_seconds"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("simrank_queue_depth"), std::string::npos);
  EXPECT_NE(metrics->body.find("simrank_dispatch_latency_seconds_bucket"),
            std::string::npos);
#if defined(__linux__)
  EXPECT_NE(metrics->body.find("simrank_resident_bytes"), std::string::npos);
#endif
}

TEST(StatsSurfaceTest, InvalidDiagnosticOptionsFailValidation) {
  ServerOptions options;
  options.watchdog_interval_ms = 120'000;  // > 60 s cap
  EXPECT_FALSE(options.Validate().ok());

  ServerOptions stall;
  stall.debug_stall_limit_ms = 60'000;  // > 10 s cap
  EXPECT_FALSE(stall.Validate().ok());

  ServerOptions history;
  history.metrics_history_window_s = 1;
  history.metrics_history_interval_ms = 0;
  EXPECT_FALSE(history.Validate().ok());

  ServerOptions log;
  log.profile_log_path = "/tmp/x.jsonl";
  log.profile_log_hz = 0;
  EXPECT_FALSE(log.Validate().ok());
}

}  // namespace
}  // namespace simrank
