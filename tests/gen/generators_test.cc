#include "simrank/gen/generators.h"

#include <gtest/gtest.h>

#include "simrank/core/dmst.h"
#include "simrank/graph/graph_stats.h"

namespace simrank::gen {
namespace {

TEST(ErdosRenyiTest, ExactEdgeCount) {
  ErdosRenyiParams params;
  params.n = 100;
  params.m = 450;
  params.seed = 3;
  auto graph = ErdosRenyi(params);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->n(), 100u);
  EXPECT_EQ(graph->m(), 450u);
  // No self-loops.
  for (VertexId v = 0; v < graph->n(); ++v) {
    EXPECT_FALSE(graph->HasEdge(v, v));
  }
}

TEST(ErdosRenyiTest, DeterministicAndSeedSensitive) {
  ErdosRenyiParams params;
  params.n = 50;
  params.m = 200;
  params.seed = 7;
  auto a = ErdosRenyi(params);
  auto b = ErdosRenyi(params);
  params.seed = 8;
  auto c = ErdosRenyi(params);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_FALSE(*a == *c);
}

TEST(ErdosRenyiTest, RejectsImpossibleDensity) {
  ErdosRenyiParams params;
  params.n = 3;
  params.m = 100;
  EXPECT_FALSE(ErdosRenyi(params).ok());
  params.n = 1;
  params.m = 0;
  EXPECT_FALSE(ErdosRenyi(params).ok());
}

TEST(RmatTest, PowerOfTwoVertices) {
  RmatParams params;
  params.scale = 8;
  params.m_target = 2000;
  auto graph = Rmat(params);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->n(), 256u);
  EXPECT_GT(graph->m(), 1000u);   // some dedupe expected
  EXPECT_LE(graph->m(), 2000u);
}

TEST(RmatTest, SkewedDegreeDistribution) {
  RmatParams params;
  params.scale = 10;
  params.m_target = 10000;
  params.seed = 5;
  auto graph = Rmat(params);
  ASSERT_TRUE(graph.ok());
  DegreeStats stats = ComputeDegreeStats(*graph);
  // R-MAT with a=0.45 concentrates edges: the max in-degree far exceeds
  // the mean.
  EXPECT_GT(stats.max_in_degree, 4 * stats.avg_in_degree);
}

TEST(RmatTest, RejectsBadProbabilities) {
  RmatParams params;
  params.a = 0.9;
  params.b = 0.9;
  params.c = 0.1;
  params.d = 0.1;
  EXPECT_FALSE(Rmat(params).ok());
  RmatParams zero_scale;
  zero_scale.scale = 0;
  EXPECT_FALSE(Rmat(zero_scale).ok());
}

TEST(Ssca2Test, CliqueStructureAndSharing) {
  Ssca2Params params;
  params.n = 600;
  params.max_clique_size = 15;
  params.seed = 8;
  auto graph = Ssca2(params);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->n(), 600u);
  // Clique members' in-sets are near-duplicates: high DMST share ratio.
  auto mst = DmstReduce(*graph);
  ASSERT_TRUE(mst.ok());
  EXPECT_GT(mst->share_ratio(), 0.4);
}

TEST(Ssca2Test, ShareRatioGrowsWithCliqueSize) {
  Ssca2Params params;
  params.n = 600;
  params.seed = 8;
  params.max_clique_size = 6;
  auto small = Ssca2(params);
  params.max_clique_size = 30;
  auto large = Ssca2(params);
  ASSERT_TRUE(small.ok() && large.ok());
  auto mst_small = DmstReduce(*small);
  auto mst_large = DmstReduce(*large);
  EXPECT_GT(mst_large->share_ratio(), mst_small->share_ratio());
  EXPECT_GT(large->AverageInDegree(), small->AverageInDegree());
}

TEST(Ssca2Test, RejectsBadParams) {
  Ssca2Params params;
  params.max_clique_size = 1;
  EXPECT_FALSE(Ssca2(params).ok());
  params.max_clique_size = 5;
  params.inter_clique_ratio = 2.0;
  EXPECT_FALSE(Ssca2(params).ok());
}

TEST(BarabasiAlbertTest, DegreesAndDeterminism) {
  BarabasiAlbertParams params;
  params.n = 300;
  params.out_degree = 3;
  params.seed = 4;
  auto a = BarabasiAlbert(params);
  auto b = BarabasiAlbert(params);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
  // Every non-seed vertex has out-degree exactly 3.
  for (VertexId v = 3; v < a->n(); ++v) {
    EXPECT_EQ(a->OutDegree(v), 3u);
  }
  // Preferential attachment produces hubs.
  DegreeStats stats = ComputeDegreeStats(*a);
  EXPECT_GT(stats.max_in_degree, 15u);
}

TEST(WebGraphTest, DegreeTracksTargetWithoutAudienceCopying) {
  WebGraphParams params;
  params.n = 800;
  params.out_degree = 10;
  params.in_copy_prob = 0.0;
  params.seed = 6;
  auto graph = WebGraph(params);
  ASSERT_TRUE(graph.ok());
  DegreeStats stats = ComputeDegreeStats(*graph);
  EXPECT_NEAR(stats.avg_in_degree, 10.0, 1.5);
}

TEST(WebGraphTest, AudienceCopyingCreatesShareableInSets) {
  // The in-copy mechanism is what produces the near-duplicate in-neighbour
  // sets OIP exploits: the DMST share ratio must rise markedly with it.
  WebGraphParams params;
  params.n = 800;
  params.out_degree = 8;
  params.copy_prob = 0.7;
  params.seed = 6;
  params.in_copy_prob = 0.0;
  auto without = WebGraph(params);
  params.in_copy_prob = 0.6;
  auto with = WebGraph(params);
  ASSERT_TRUE(without.ok() && with.ok());
  auto mst_without = DmstReduce(*without);
  auto mst_with = DmstReduce(*with);
  ASSERT_TRUE(mst_without.ok() && mst_with.ok());
  EXPECT_GT(mst_with->share_ratio(), mst_without->share_ratio() + 0.05);
  EXPECT_GT(mst_with->share_ratio(), 0.1);
}

TEST(WebGraphTest, RejectsBadCopyProb) {
  WebGraphParams params;
  params.copy_prob = 1.5;
  EXPECT_FALSE(WebGraph(params).ok());
}

TEST(CitationGraphTest, IsAcyclic) {
  CitationGraphParams params;
  params.n = 500;
  params.refs_per_node = 4;
  params.seed = 9;
  auto graph = CitationGraph(params);
  ASSERT_TRUE(graph.ok());
  // All edges point from newer (higher id) to older (lower id).
  for (VertexId v = 0; v < graph->n(); ++v) {
    for (VertexId u : graph->OutNeighbors(v)) {
      EXPECT_LT(u, v);
    }
  }
}

TEST(CitationGraphTest, AverageDegreeNearTarget) {
  CitationGraphParams params;
  params.n = 2000;
  params.refs_per_node = 5;
  params.seed = 2;
  auto graph = CitationGraph(params);
  ASSERT_TRUE(graph.ok());
  EXPECT_NEAR(graph->AverageInDegree(), 5.0, 1.0);
}

TEST(CoauthorGraphTest, SymmetricEdges) {
  CoauthorGraphParams params;
  params.num_authors = 200;
  params.num_papers = 150;
  params.seed = 12;
  auto graph = CoauthorGraph(params);
  ASSERT_TRUE(graph.ok());
  for (VertexId v = 0; v < graph->n(); ++v) {
    for (VertexId u : graph->OutNeighbors(v)) {
      EXPECT_TRUE(graph->HasEdge(u, v)) << u << "<->" << v;
    }
  }
}

TEST(CoauthorGraphTest, GrowsWithPapers) {
  CoauthorGraphParams params;
  params.num_authors = 300;
  params.seed = 1;
  params.num_papers = 100;
  auto small = CoauthorGraph(params);
  params.num_papers = 400;
  auto large = CoauthorGraph(params);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_GT(large->m(), small->m());
}

TEST(CoauthorGraphTest, RejectsDegenerateParams) {
  CoauthorGraphParams params;
  params.num_authors = 1;
  EXPECT_FALSE(CoauthorGraph(params).ok());
  params.num_authors = 100;
  params.max_authors_per_paper = 1;
  EXPECT_FALSE(CoauthorGraph(params).ok());
}

}  // namespace
}  // namespace simrank::gen
