#include "simrank/core/mtx_sr.h"

#include <gtest/gtest.h>

#include "simrank/core/matrix_simrank.h"
#include "simrank/linalg/dense_matrix.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

TEST(MtxSimRankTest, FullRankMatchesPureMatrixForm) {
  // With rank = n the SVD is exact, so mtx-SR reproduces the Eq. (3) model
  // (whose power series it truncates at the same K).
  DiGraph graph = testing::PaperExampleGraph();
  SimRankOptions options;
  options.damping = 0.6;
  options.iterations = 20;
  MtxSrOptions mtx_options;
  mtx_options.rank = graph.n();
  mtx_options.oversample = 0;
  mtx_options.power_iterations = 4;
  auto mtx = MtxSimRank(graph, options, mtx_options);
  auto oracle = MatrixSimRank(graph, options, MatrixForm::kPure);
  ASSERT_TRUE(mtx.ok() && oracle.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(*mtx, *oracle), 1e-6);
}

TEST(MtxSimRankTest, LowRankIsReasonableOnLowRankGraph) {
  // A union of disjoint 'shared parent' stars has a very low-rank Q; a
  // modest rank captures it well.
  DiGraph::Builder builder(30);
  for (uint32_t star = 0; star < 10; ++star) {
    const uint32_t hub = star * 3;
    builder.AddEdge(hub, hub + 1);
    builder.AddEdge(hub, hub + 2);
  }
  DiGraph graph = std::move(builder).Build();
  SimRankOptions options;
  options.damping = 0.6;
  options.iterations = 10;
  MtxSrOptions mtx_options;
  mtx_options.rank = 12;
  auto mtx = MtxSimRank(graph, options, mtx_options);
  auto oracle = MatrixSimRank(graph, options, MatrixForm::kPure);
  ASSERT_TRUE(mtx.ok() && oracle.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(*mtx, *oracle), 0.05);
}

TEST(MtxSimRankTest, ReportsQuadraticAuxMemory) {
  DiGraph graph = testing::RandomGraph(60, 240, 3);
  SimRankOptions options;
  options.iterations = 5;
  MtxSrOptions mtx_options;
  mtx_options.rank = 16;
  KernelStats stats;
  ASSERT_TRUE(MtxSimRank(graph, options, mtx_options, &stats).ok());
  // U and V are n x r — far more than psum-SR's O(n) scratch.
  EXPECT_GE(stats.aux_peak_bytes,
            2ull * graph.n() * 16 * sizeof(double));
}

TEST(MtxSimRankTest, RejectsZeroRank) {
  DiGraph graph = testing::PaperExampleGraph();
  SimRankOptions options;
  options.iterations = 3;
  MtxSrOptions mtx_options;
  mtx_options.rank = 0;
  EXPECT_FALSE(MtxSimRank(graph, options, mtx_options).ok());
}

}  // namespace
}  // namespace simrank
