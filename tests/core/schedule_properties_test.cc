// Property suite for the DMST replay schedule — the data structure at the
// heart of OIP-SR. For every graph family we assert the invariants the
// kernels rely on:
//  * the first step (and every step after a from-scratch reset) rebuilds
//    its set exactly; diff steps transform the previous set exactly;
//  * every step's cost respects the Eq. (7) cap (never worse than
//    recomputing from scratch), hence schedule_cost <= psum's cost;
//  * every distinct set appears exactly once;
//  * the measured addition counts of OipPropagate match the schedule's
//    static cost model;
//  * OIP never performs more partial-sum additions than psum-SR.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "simrank/core/dmst.h"
#include "simrank/core/oip.h"
#include "simrank/core/psum.h"
#include "simrank/gen/generators.h"
#include "simrank/graph/set_ops.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

enum class Family { kErdosRenyi, kWeb, kCitation, kCoauthor, kSsca2 };

std::string FamilyName(Family family) {
  switch (family) {
    case Family::kErdosRenyi:
      return "ErdosRenyi";
    case Family::kWeb:
      return "Web";
    case Family::kCitation:
      return "Citation";
    case Family::kCoauthor:
      return "Coauthor";
    case Family::kSsca2:
      return "Ssca2";
  }
  return "?";
}

DiGraph MakeGraph(Family family, uint64_t seed) {
  switch (family) {
    case Family::kErdosRenyi:
      return testing::RandomGraph(120, 600, seed);
    case Family::kWeb:
      return testing::OverlappyGraph(120, 6, seed);
    case Family::kCitation: {
      gen::CitationGraphParams params;
      params.n = 120;
      params.seed = seed;
      return std::move(gen::CitationGraph(params)).value();
    }
    case Family::kCoauthor: {
      gen::CoauthorGraphParams params;
      params.num_authors = 120;
      params.num_papers = 80;
      params.repeat_team_prob = 0.6;
      params.seed = seed;
      return std::move(gen::CoauthorGraph(params)).value();
    }
    case Family::kSsca2: {
      gen::Ssca2Params params;
      params.n = 120;
      params.max_clique_size = 10;
      params.seed = seed;
      return std::move(gen::Ssca2(params)).value();
    }
  }
  OIPSIM_CHECK(false);
  return DiGraph();
}

using ScheduleParam = std::tuple<Family, uint64_t>;

class SchedulePropertyTest : public ::testing::TestWithParam<ScheduleParam> {
 protected:
  DiGraph graph_ = MakeGraph(std::get<0>(GetParam()),
                             std::get<1>(GetParam()));
};

TEST_P(SchedulePropertyTest, StepsReplayToExactSets) {
  auto mst = DmstReduce(graph_);
  ASSERT_TRUE(mst.ok());
  std::multiset<VertexId> state;  // symbolic content of the partial vector
  bool first = true;
  for (const ScheduleStep& step : mst->schedule) {
    if (step.from_scratch) {
      state.clear();
    } else {
      ASSERT_FALSE(first) << "first step must be from scratch";
    }
    for (VertexId x : step.add) {
      EXPECT_EQ(state.count(x), 0u) << "double-add of " << x;
      state.insert(x);
    }
    for (VertexId x : step.sub) {
      ASSERT_EQ(state.count(x), 1u) << "subtracting absent " << x;
      state.erase(x);
    }
    auto contents = mst->sets.Contents(graph_, step.set);
    ASSERT_EQ(state.size(), contents.size());
    auto it = state.begin();
    for (VertexId expected : contents) {
      EXPECT_EQ(*it, expected);
      ++it;
    }
    first = false;
  }
}

TEST_P(SchedulePropertyTest, EveryStepRespectsTheScratchCap) {
  auto mst = DmstReduce(graph_);
  ASSERT_TRUE(mst.ok());
  uint64_t recomputed_cost = 0;
  for (const ScheduleStep& step : mst->schedule) {
    const uint64_t scratch_cost = mst->sets.set_size[step.set] - 1;
    if (step.from_scratch) {
      EXPECT_EQ(step.add.size(), mst->sets.set_size[step.set]);
      EXPECT_TRUE(step.sub.empty());
      recomputed_cost += scratch_cost;
    } else {
      const uint64_t diff_cost = step.add.size() + step.sub.size();
      EXPECT_LT(diff_cost, scratch_cost)
          << "diff step must beat from-scratch (set " << step.set << ")";
      recomputed_cost += diff_cost;
    }
  }
  EXPECT_EQ(recomputed_cost, mst->schedule_cost);
  // Hence the whole plan never costs more than psum-SR's per-set work.
  EXPECT_LE(mst->schedule_cost, mst->cost_without_sharing);
}

TEST_P(SchedulePropertyTest, EveryDistinctSetScheduledExactlyOnce) {
  auto mst = DmstReduce(graph_);
  ASSERT_TRUE(mst.ok());
  std::set<uint32_t> scheduled;
  for (const ScheduleStep& step : mst->schedule) {
    EXPECT_TRUE(scheduled.insert(step.set).second)
        << "set " << step.set << " scheduled twice";
  }
  EXPECT_EQ(scheduled.size(), mst->sets.num_sets);
}

TEST_P(SchedulePropertyTest, MeasuredAddsMatchStaticCostModel) {
  auto mst = DmstReduce(graph_);
  ASSERT_TRUE(mst.ok());
  const uint32_t n = graph_.n();
  internal::OipScratch scratch;
  internal::PrepareScratch(*mst, n, &scratch);
  DenseMatrix current = DenseMatrix::Identity(n);
  DenseMatrix next(n, n);
  OpCounter ops;
  internal::OipPropagate(*mst, current, &next, 0.6, true, &ops, &scratch);
  // Inner: schedule_cost additions per target column.
  EXPECT_EQ(ops.counts().partial_sum_adds,
            mst->schedule_cost * static_cast<uint64_t>(n));
  // Outer: schedule_cost scalar additions per source set.
  EXPECT_EQ(ops.counts().outer_sum_adds,
            mst->schedule_cost * static_cast<uint64_t>(mst->sets.num_sets));
}

TEST_P(SchedulePropertyTest, OipNeverAddsMoreThanPsum) {
  SimRankOptions options;
  options.damping = 0.6;
  options.iterations = 4;
  KernelStats psum_stats, oip_stats;
  ASSERT_TRUE(PsumSimRank(graph_, options, &psum_stats).ok());
  ASSERT_TRUE(OipSimRank(graph_, options, &oip_stats).ok());
  EXPECT_LE(oip_stats.ops.partial_sum_adds,
            psum_stats.ops.partial_sum_adds);
  EXPECT_LE(oip_stats.ops.outer_sum_adds, psum_stats.ops.outer_sum_adds);
}

INSTANTIATE_TEST_SUITE_P(
    Families, SchedulePropertyTest,
    ::testing::Combine(::testing::Values(Family::kErdosRenyi, Family::kWeb,
                                         Family::kCitation,
                                         Family::kCoauthor, Family::kSsca2),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<ScheduleParam>& info) {
      return FamilyName(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace simrank
