// Tests for the block-parallel propagation architecture (core/parallel.h):
// the partitioner, the executor's deterministic OpCounter merge, and the
// central contract — every engine's scores and operation counts are
// bitwise identical for any thread count.
#include "simrank/core/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "simrank/core/engine.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

TEST(PartitionBlocksTest, CoversRangeContiguously) {
  for (uint64_t items : {1ull, 5ull, 31ull, 64ull, 65ull, 1000ull}) {
    for (uint32_t num_blocks : {1u, 2u, 3u, 7u, 64u}) {
      auto blocks = PartitionBlocks(items, num_blocks);
      ASSERT_FALSE(blocks.empty());
      EXPECT_LE(blocks.size(), std::max<uint64_t>(1, num_blocks));
      uint64_t expect_begin = 0;
      for (const BlockRange& block : blocks) {
        EXPECT_EQ(block.begin, expect_begin);
        EXPECT_GT(block.end, block.begin) << "empty block";
        expect_begin = block.end;
      }
      EXPECT_EQ(expect_begin, items);
      // Near-equal: sizes differ by at most one.
      uint32_t min_size = UINT32_MAX, max_size = 0;
      for (const BlockRange& block : blocks) {
        min_size = std::min(min_size, block.size());
        max_size = std::max(max_size, block.size());
      }
      EXPECT_LE(max_size - min_size, 1u);
    }
  }
}

TEST(PartitionBlocksTest, ZeroItemsYieldsOneEmptyBlock) {
  auto blocks = PartitionBlocks(0, 8);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].begin, 0u);
  EXPECT_EQ(blocks[0].end, 0u);
}

TEST(DefaultBlockCountTest, PolicyIsThreadIndependentAndBounded) {
  EXPECT_EQ(DefaultBlockCount(0), 1u);
  EXPECT_EQ(DefaultBlockCount(63), 1u);  // small inputs stay sequential
  EXPECT_GE(DefaultBlockCount(64), 2u);
  EXPECT_GE(DefaultBlockCount(512), 8u);  // enough blocks to feed 8 workers
  EXPECT_LE(DefaultBlockCount(1u << 30), 64u);  // bookkeeping cap
}

TEST(PropagationExecutorTest, RunsEveryBlockExactlyOnce) {
  for (uint32_t threads : {1u, 2u, 5u}) {
    PropagationExecutor executor(threads);
    constexpr uint32_t kBlocks = 23;
    std::vector<std::atomic<uint32_t>> visits(kBlocks);
    executor.Run(
        kBlocks,
        [&](uint32_t block, uint32_t slot, OpCounter*) {
          ASSERT_LT(slot, executor.SlotsFor(kBlocks));
          visits[block].fetch_add(1);
        },
        nullptr);
    for (uint32_t b = 0; b < kBlocks; ++b) {
      EXPECT_EQ(visits[b].load(), 1u) << "block " << b;
    }
  }
}

TEST(PropagationExecutorTest, MergesOpCountersInBlockOrder) {
  // Totals must be independent of scheduling; compare 1 vs 4 workers.
  OpCounts reference;
  for (uint32_t threads : {1u, 4u}) {
    PropagationExecutor executor(threads);
    OpCounter ops;
    executor.Run(
        17,
        [](uint32_t block, uint32_t, OpCounter* block_ops) {
          CountPartialAdds(block_ops, block + 1);
          CountOuterAdds(block_ops, 2 * block);
          CountMultiplies(block_ops, 3);
        },
        &ops);
    if (threads == 1) {
      reference = ops.counts();
      EXPECT_EQ(reference.partial_sum_adds, 17u * 18u / 2u);
    } else {
      EXPECT_EQ(ops.counts().partial_sum_adds, reference.partial_sum_adds);
      EXPECT_EQ(ops.counts().outer_sum_adds, reference.outer_sum_adds);
      EXPECT_EQ(ops.counts().multiplies, reference.multiplies);
    }
  }
}

TEST(PropagationExecutorTest, ResolvesThreadCounts) {
  EXPECT_EQ(PropagationExecutor(1).num_threads(), 1u);
  EXPECT_EQ(PropagationExecutor(3).num_threads(), 3u);
  EXPECT_GE(PropagationExecutor(0).num_threads(), 1u);  // hardware
  EXPECT_EQ(PropagationExecutor(5).SlotsFor(2), 2u);
  EXPECT_EQ(PropagationExecutor(2).SlotsFor(9), 2u);
  EXPECT_EQ(PropagationExecutor(2).SlotsFor(0), 1u);
}

// The headline contract: for every parallel engine, any thread count
// produces bit-for-bit the scores and operation counts of the
// single-threaded run. The graph is large enough (n = 300, heavy
// in-neighbour overlap) that the schedule splits into many blocks.
class BitwiseDeterminismTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(BitwiseDeterminismTest, AnyThreadCountMatchesSingleThreaded) {
  DiGraph graph = testing::OverlappyGraph(300, 6, 1234);
  EngineOptions options;
  options.algorithm = GetParam();
  options.simrank.damping = 0.6;
  options.simrank.iterations = 5;

  options.simrank.threads = 1;
  auto reference = ComputeSimRank(graph, options);
  ASSERT_TRUE(reference.ok());

  for (uint32_t threads : {2u, 3u, 8u}) {
    options.simrank.threads = threads;
    auto run = ComputeSimRank(graph, options);
    ASSERT_TRUE(run.ok()) << threads << " threads";
    EXPECT_TRUE(run->scores == reference->scores)
        << AlgorithmName(GetParam()) << " diverged at " << threads
        << " threads";
    EXPECT_EQ(run->stats.ops.partial_sum_adds,
              reference->stats.ops.partial_sum_adds);
    EXPECT_EQ(run->stats.ops.outer_sum_adds,
              reference->stats.ops.outer_sum_adds);
    EXPECT_EQ(run->stats.ops.multiplies, reference->stats.ops.multiplies);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParallelEngines, BitwiseDeterminismTest,
    ::testing::Values(Algorithm::kNaive, Algorithm::kPsum, Algorithm::kOip,
                      Algorithm::kOipDsr, Algorithm::kPsumDsr,
                      Algorithm::kMatrix),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      std::string name = AlgorithmName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(AlgorithmRegistryTest, CoversEveryAlgorithmInEnumOrder) {
  auto registry = AlgorithmRegistry();
  ASSERT_EQ(registry.size(), 7u);
  for (size_t i = 0; i < registry.size(); ++i) {
    EXPECT_EQ(static_cast<size_t>(registry[i].algorithm), i)
        << "registry out of enum order at " << i;
    EXPECT_NE(registry[i].compute, nullptr);
    EXPECT_EQ(FindAlgorithm(registry[i].algorithm), &registry[i]);
    EXPECT_EQ(FindAlgorithmByFlag(registry[i].flag), &registry[i]);
  }
}

TEST(AlgorithmRegistryTest, FlagsAreUniqueAndListed) {
  const std::string flags = AlgorithmFlagList();
  EXPECT_EQ(flags, "naive|psum|oip|oip-dsr|psum-dsr|matrix|mtx");
  EXPECT_EQ(FindAlgorithmByFlag("no-such-algorithm"), nullptr);
}

}  // namespace
}  // namespace simrank
