#include "simrank/core/matrix_simrank.h"

#include <gtest/gtest.h>

#include "simrank/core/naive.h"
#include "simrank/linalg/dense_matrix.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

TEST(MatrixSimRankTest, PinnedFormMatchesNaiveExactly) {
  for (uint64_t seed : {1u, 9u}) {
    DiGraph graph = testing::RandomGraph(40, 160, seed);
    SimRankOptions options;
    options.damping = 0.6;
    options.iterations = 7;
    auto naive = NaiveSimRank(graph, options);
    auto matrix = MatrixSimRank(graph, options, MatrixForm::kPinnedDiagonal);
    ASSERT_TRUE(naive.ok() && matrix.ok());
    EXPECT_LT(DenseMatrix::MaxAbsDiff(*naive, *matrix), 1e-12);
  }
}

TEST(MatrixSimRankTest, PureFormDiagonalBelowOne) {
  DiGraph graph = testing::PaperExampleGraph();
  SimRankOptions options;
  options.damping = 0.6;
  options.iterations = 12;
  auto pure = MatrixSimRank(graph, options, MatrixForm::kPure);
  ASSERT_TRUE(pure.ok());
  for (uint32_t i = 0; i < graph.n(); ++i) {
    EXPECT_LE((*pure)(i, i), 1.0 + 1e-12);
    EXPECT_GE((*pure)(i, i), 1.0 - options.damping - 1e-12);
  }
}

TEST(MatrixSimRankTest, PureAndPinnedFormsCloseOffDiagonal) {
  // The (1-C)·I variant and the pinned variant agree on relative structure;
  // their absolute difference is bounded by C (diagonal deficiency
  // propagates one step with factor C).
  DiGraph graph = testing::PaperExampleGraph();
  SimRankOptions options;
  options.damping = 0.6;
  options.iterations = 12;
  auto pure = MatrixSimRank(graph, options, MatrixForm::kPure);
  auto pinned = MatrixSimRank(graph, options, MatrixForm::kPinnedDiagonal);
  ASSERT_TRUE(pure.ok() && pinned.ok());
  for (uint32_t i = 0; i < graph.n(); ++i) {
    for (uint32_t j = 0; j < graph.n(); ++j) {
      if (i == j) continue;
      EXPECT_LE((*pure)(i, j), (*pinned)(i, j) + 1e-12);
      EXPECT_GE((*pure)(i, j), (*pinned)(i, j) - options.damping);
    }
  }
}

}  // namespace
}  // namespace simrank
