// Cross-engine consistency: every registered Algorithm must agree with its
// score-model family's oracle on random generated graphs. Driven directly
// off the algorithm registry so a dispatch or registration regression (a
// flag wired to the wrong engine, a family mislabelled, a compute function
// swapped) fails here even if each engine's own unit suite still passes.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "simrank/core/engine.h"
#include "simrank/core/matrix_simrank.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

using ConsistencyParam = std::tuple<Algorithm, uint64_t>;

class CrossEngineConsistencyTest
    : public ::testing::TestWithParam<ConsistencyParam> {};

TEST_P(CrossEngineConsistencyTest, AgreesWithItsFamilyOracle) {
  const Algorithm algorithm = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  const AlgorithmInfo* info = FindAlgorithm(algorithm);
  ASSERT_NE(info, nullptr);

  DiGraph graph = testing::RandomGraph(48, 260, seed);
  EngineOptions options;
  options.algorithm = algorithm;
  options.simrank.damping = 0.6;
  options.simrank.iterations = 10;
  // Full-rank SVD so the low-rank family is exact up to iteration noise.
  options.mtx.rank = graph.n();
  options.mtx.power_iterations = 4;

  auto run = ComputeSimRank(graph, options);
  ASSERT_TRUE(run.ok()) << info->name;

  Result<DenseMatrix> oracle = [&]() -> Result<DenseMatrix> {
    switch (info->model) {
      case ScoreModel::kConventional:
        // The component recursion of Eq. (2), via the sparse oracle.
        return MatrixSimRank(graph, options.simrank,
                             MatrixForm::kPinnedDiagonal);
      case ScoreModel::kDifferential:
        return MatrixDifferentialSimRank(graph, options.simrank);
      case ScoreModel::kLowRank:
        // mtx-SR truncates the same power series as the Eq. (3) model.
        return MatrixSimRank(graph, options.simrank, MatrixForm::kPure);
    }
    return Status::InvalidArgument("unknown model");
  }();
  ASSERT_TRUE(oracle.ok());

  // Iterative engines match their oracle to machine precision; the SVD
  // pipeline is exact only up to randomized-range-finder noise (~1e-4 at
  // this size — still orders of magnitude below the ~1e-2 gap a
  // wrong-family dispatch would show).
  const double tolerance =
      info->model == ScoreModel::kLowRank ? 1e-3 : 1e-10;
  EXPECT_LT(DenseMatrix::MaxAbsDiff(run->scores, oracle.value()), tolerance)
      << info->name << " disagrees with its family oracle (seed " << seed
      << ")";
}

std::vector<Algorithm> AllAlgorithms() {
  std::vector<Algorithm> algorithms;
  for (const AlgorithmInfo& info : AlgorithmRegistry()) {
    algorithms.push_back(info.algorithm);
  }
  return algorithms;
}

INSTANTIATE_TEST_SUITE_P(
    Registry, CrossEngineConsistencyTest,
    ::testing::Combine(::testing::ValuesIn(AllAlgorithms()),
                       ::testing::Values(11u, 29u)),
    [](const ::testing::TestParamInfo<ConsistencyParam>& info) {
      std::string name = AlgorithmName(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace simrank
