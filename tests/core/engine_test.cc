#include "simrank/core/engine.h"

#include <gtest/gtest.h>
#include <string>

#include "testing/fixtures.h"

namespace simrank {
namespace {

TEST(EngineTest, AllExactAlgorithmsAgree) {
  DiGraph graph = testing::RandomGraph(40, 200, 42);
  EngineOptions options;
  options.simrank.damping = 0.6;
  options.simrank.iterations = 8;

  options.algorithm = Algorithm::kNaive;
  auto naive = ComputeSimRank(graph, options);
  ASSERT_TRUE(naive.ok());
  for (Algorithm algorithm :
       {Algorithm::kPsum, Algorithm::kOip, Algorithm::kMatrix}) {
    options.algorithm = algorithm;
    auto run = ComputeSimRank(graph, options);
    ASSERT_TRUE(run.ok()) << AlgorithmName(algorithm);
    EXPECT_LT(DenseMatrix::MaxAbsDiff(naive->scores, run->scores), 1e-11)
        << AlgorithmName(algorithm);
  }
}

TEST(EngineTest, DifferentialVariantsAgree) {
  DiGraph graph = testing::RandomGraph(35, 150, 9);
  EngineOptions options;
  options.simrank.iterations = 6;
  options.algorithm = Algorithm::kOipDsr;
  auto oip = ComputeSimRank(graph, options);
  options.algorithm = Algorithm::kPsumDsr;
  auto psum = ComputeSimRank(graph, options);
  ASSERT_TRUE(oip.ok() && psum.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(oip->scores, psum->scores), 1e-12);
}

TEST(EngineTest, NamesAreStable) {
  EXPECT_EQ(std::string(AlgorithmName(Algorithm::kOip)), "OIP-SR");
  EXPECT_EQ(std::string(AlgorithmName(Algorithm::kOipDsr)), "OIP-DSR");
  EXPECT_EQ(std::string(AlgorithmName(Algorithm::kPsum)), "psum-SR");
  EXPECT_EQ(std::string(AlgorithmName(Algorithm::kMtx)), "mtx-SR");
}

TEST(EngineTest, PropagatesInvalidOptions) {
  DiGraph graph = testing::PaperExampleGraph();
  EngineOptions options;
  options.simrank.damping = -0.1;
  EXPECT_FALSE(ComputeSimRank(graph, options).ok());
}

TEST(EngineTest, StatsPopulated) {
  DiGraph graph = testing::OverlappyGraph(100, 6, 77);
  EngineOptions options;
  options.algorithm = Algorithm::kOip;
  options.simrank.iterations = 5;
  auto run = ComputeSimRank(graph, options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->stats.iterations, 5u);
  EXPECT_GT(run->stats.seconds_total(), 0.0);
  EXPECT_GT(run->stats.ops.total_adds(), 0u);
}

}  // namespace
}  // namespace simrank
