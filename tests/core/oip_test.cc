#include "simrank/core/oip.h"

#include <gtest/gtest.h>

#include "simrank/core/naive.h"
#include "simrank/core/psum.h"
#include "simrank/linalg/dense_matrix.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

using ::simrank::testing::PaperExampleGraph;

TEST(OipSimRankTest, MatchesNaiveOnPaperExample) {
  DiGraph graph = PaperExampleGraph();
  SimRankOptions options;
  options.damping = 0.6;
  options.iterations = 10;
  auto naive = NaiveSimRank(graph, options);
  auto oip = OipSimRank(graph, options);
  ASSERT_TRUE(naive.ok() && oip.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(*naive, *oip), 1e-12);
}

TEST(OipSimRankTest, ReproducesPaperFig4OuterSumTable) {
  // Fig. 4 lists s_{k+1}(x, a) and s_{k+1}(x, c) for k = 2, C = 0.6,
  // rounded to two decimals. Run three iterations and compare.
  DiGraph graph = PaperExampleGraph();
  SimRankOptions options;
  options.damping = 0.6;
  options.iterations = 3;
  auto scores = OipSimRank(graph, options);
  ASSERT_TRUE(scores.ok());
  using testing::kA, testing::kB, testing::kC, testing::kD, testing::kE,
      testing::kH;
  // Column s_{k+1}(x, a) of Fig. 4.
  EXPECT_NEAR((*scores)(kA, kA), 1.0, 1e-12);
  EXPECT_NEAR((*scores)(kE, kA), 0.15, 0.005);
  EXPECT_NEAR((*scores)(kH, kA), 0.17, 0.005);
  EXPECT_NEAR((*scores)(kC, kA), 0.21, 0.005);
  EXPECT_NEAR((*scores)(kB, kA), 0.09, 0.005);
  EXPECT_NEAR((*scores)(kD, kA), 0.02, 0.005);
  // Column s_{k+1}(x, c) of Fig. 4.
  EXPECT_NEAR((*scores)(kA, kC), 0.21, 0.005);
  EXPECT_NEAR((*scores)(kE, kC), 0.1, 0.005);
  EXPECT_NEAR((*scores)(kH, kC), 0.22, 0.005);
  EXPECT_NEAR((*scores)(kC, kC), 1.0, 1e-12);
  EXPECT_NEAR((*scores)(kB, kC), 0.06, 0.005);
  EXPECT_NEAR((*scores)(kD, kC), 0.02, 0.005);
}

TEST(OipSimRankTest, MatchesPsumOnRandomGraphs) {
  for (uint64_t seed : {2u, 5u, 8u, 13u}) {
    DiGraph graph = testing::RandomGraph(60, 300, seed);
    SimRankOptions options;
    options.damping = 0.8;
    options.iterations = 7;
    auto psum = PsumSimRank(graph, options);
    auto oip = OipSimRank(graph, options);
    ASSERT_TRUE(psum.ok() && oip.ok());
    EXPECT_LT(DenseMatrix::MaxAbsDiff(*psum, *oip), 1e-11) << "seed " << seed;
  }
}

TEST(OipSimRankTest, MatchesPsumOnOverlappyGraphs) {
  DiGraph graph = testing::OverlappyGraph(150, 8, 21);
  SimRankOptions options;
  options.iterations = 5;
  auto psum = PsumSimRank(graph, options);
  auto oip = OipSimRank(graph, options);
  ASSERT_TRUE(psum.ok() && oip.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(*psum, *oip), 1e-11);
}

TEST(OipSimRankTest, AllDmstPoliciesGiveIdenticalScores) {
  // Sharing is an optimisation; any spanning tree must produce the same
  // similarities.
  DiGraph graph = testing::OverlappyGraph(80, 6, 31);
  SimRankOptions options;
  options.iterations = 5;
  DenseMatrix reference;
  bool first = true;
  for (DmstPolicy policy : {DmstPolicy::kMinCost, DmstPolicy::kPreviousInOrder,
                            DmstPolicy::kAlwaysRoot}) {
    auto mst = DmstReduce(graph, {policy});
    ASSERT_TRUE(mst.ok());
    auto scores = OipSimRankWithMst(graph, *mst, options);
    ASSERT_TRUE(scores.ok());
    if (first) {
      reference = *scores;
      first = false;
    } else {
      EXPECT_LT(DenseMatrix::MaxAbsDiff(reference, *scores), 1e-11);
    }
  }
}

TEST(OipSimRankTest, SharingReducesAdditionsOnOverlappyGraphs) {
  DiGraph graph = testing::OverlappyGraph(250, 10, 5);
  SimRankOptions options;
  options.iterations = 6;
  KernelStats psum_stats, oip_stats;
  ASSERT_TRUE(PsumSimRank(graph, options, &psum_stats).ok());
  ASSERT_TRUE(OipSimRank(graph, options, &oip_stats).ok());
  // The headline claim: fewer partial-sum additions than psum-SR.
  EXPECT_LT(oip_stats.ops.partial_sum_adds, psum_stats.ops.partial_sum_adds);
  EXPECT_LT(oip_stats.ops.outer_sum_adds, psum_stats.ops.outer_sum_adds);
}

TEST(OipSimRankTest, AuxMemoryScalesLinearly) {
  // O(n) intermediate memory (Proposition 5): doubling n must not blow the
  // aux bytes up quadratically.
  SimRankOptions options;
  options.iterations = 2;
  KernelStats small_stats, large_stats;
  DiGraph small = testing::OverlappyGraph(100, 6, 9);
  DiGraph large = testing::OverlappyGraph(400, 6, 9);
  ASSERT_TRUE(OipSimRank(small, options, &small_stats).ok());
  ASSERT_TRUE(OipSimRank(large, options, &large_stats).ok());
  EXPECT_LT(large_stats.aux_peak_bytes,
            16.0 * static_cast<double>(small_stats.aux_peak_bytes));
}

TEST(OipSimRankTest, EmptyAndTinyGraphs) {
  SimRankOptions options;
  options.iterations = 3;
  {
    DiGraph graph;
    auto scores = OipSimRank(graph, options);
    ASSERT_TRUE(scores.ok());
    EXPECT_EQ(scores->rows(), 0u);
  }
  {
    DiGraph::Builder builder(2);
    builder.AddEdge(0, 1);
    DiGraph graph = std::move(builder).Build();
    auto scores = OipSimRank(graph, options);
    ASSERT_TRUE(scores.ok());
    EXPECT_DOUBLE_EQ((*scores)(0, 0), 1.0);
    EXPECT_DOUBLE_EQ((*scores)(1, 1), 1.0);
    EXPECT_DOUBLE_EQ((*scores)(0, 1), 0.0);
  }
}

TEST(OipSimRankTest, DisconnectedComponentsStayIndependent) {
  // Two disjoint 'shared parent' gadgets: cross-component similarity 0.
  DiGraph::Builder builder(6);
  builder.AddEdge(2, 0);
  builder.AddEdge(2, 1);
  builder.AddEdge(5, 3);
  builder.AddEdge(5, 4);
  DiGraph graph = std::move(builder).Build();
  SimRankOptions options;
  options.damping = 0.6;
  options.iterations = 5;
  auto scores = OipSimRank(graph, options);
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ((*scores)(0, 1), 0.6);
  EXPECT_DOUBLE_EQ((*scores)(3, 4), 0.6);
  EXPECT_DOUBLE_EQ((*scores)(0, 3), 0.0);
  EXPECT_DOUBLE_EQ((*scores)(1, 4), 0.0);
}

TEST(OipSimRankTest, StatsSplitSetupAndIteratePhases) {
  DiGraph graph = testing::OverlappyGraph(120, 8, 3);
  SimRankOptions options;
  options.iterations = 4;
  KernelStats stats;
  ASSERT_TRUE(OipSimRank(graph, options, &stats).ok());
  EXPECT_EQ(stats.iterations, 4u);
  EXPECT_GE(stats.seconds_setup, 0.0);
  EXPECT_GT(stats.seconds_iterate, 0.0);
  EXPECT_GT(stats.ops.set_ops, 0u);  // MST construction work
  EXPECT_GT(stats.aux_peak_bytes, 0u);
}

}  // namespace
}  // namespace simrank
