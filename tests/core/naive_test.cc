#include "simrank/core/naive.h"

#include <gtest/gtest.h>

#include "simrank/graph/digraph.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

using ::simrank::testing::PaperExampleGraph;

TEST(NaiveSimRankTest, IdentityOnIterationZero) {
  DiGraph graph = PaperExampleGraph();
  SimRankOptions options;
  options.iterations = 1;
  auto result = NaiveSimRank(graph, options);
  ASSERT_TRUE(result.ok());
  for (uint32_t i = 0; i < graph.n(); ++i) {
    EXPECT_DOUBLE_EQ((*result)(i, i), 1.0);
  }
}

TEST(NaiveSimRankTest, RejectsInvalidOptions) {
  DiGraph graph = PaperExampleGraph();
  SimRankOptions options;
  options.damping = 1.5;
  EXPECT_FALSE(NaiveSimRank(graph, options).ok());
}

TEST(NaiveSimRankTest, TwoNodeSharedParent) {
  // x -> a, x -> b: after one iteration s(a,b) = C (single shared
  // in-neighbour, |I(a)| = |I(b)| = 1, s_0(x,x) = 1).
  DiGraph::Builder builder(3);
  builder.AddEdge(2, 0);
  builder.AddEdge(2, 1);
  DiGraph graph = std::move(builder).Build();
  SimRankOptions options;
  options.damping = 0.8;
  options.iterations = 1;
  auto result = NaiveSimRank(graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ((*result)(0, 1), 0.8);
  EXPECT_DOUBLE_EQ((*result)(1, 0), 0.8);
  EXPECT_DOUBLE_EQ((*result)(2, 2), 1.0);
  EXPECT_DOUBLE_EQ((*result)(0, 2), 0.0);  // I(x) is empty
}

TEST(NaiveSimRankTest, ConvergedValuesStayInUnitInterval) {
  DiGraph graph = testing::RandomGraph(30, 120, 17);
  SimRankOptions options;
  options.damping = 0.9;
  options.iterations = 25;
  auto result = NaiveSimRank(graph, options);
  ASSERT_TRUE(result.ok());
  for (uint32_t i = 0; i < graph.n(); ++i) {
    for (uint32_t j = 0; j < graph.n(); ++j) {
      EXPECT_GE((*result)(i, j), 0.0);
      EXPECT_LE((*result)(i, j), 1.0 + 1e-12);
    }
  }
}

TEST(NaiveSimRankTest, SymmetricScores) {
  DiGraph graph = testing::RandomGraph(25, 100, 3);
  SimRankOptions options;
  options.iterations = 6;
  auto result = NaiveSimRank(graph, options);
  ASSERT_TRUE(result.ok());
  for (uint32_t i = 0; i < graph.n(); ++i) {
    for (uint32_t j = 0; j < graph.n(); ++j) {
      EXPECT_NEAR((*result)(i, j), (*result)(j, i), 1e-12);
    }
  }
}

TEST(NaiveSimRankTest, EmptyInNeighboursGiveZeroRows) {
  DiGraph graph = PaperExampleGraph();
  SimRankOptions options;
  options.iterations = 5;
  auto result = NaiveSimRank(graph, options);
  ASSERT_TRUE(result.ok());
  // f, g, i have no in-neighbours: their similarity to anything else is 0.
  for (VertexId v : {testing::kF, testing::kG, testing::kI}) {
    for (uint32_t j = 0; j < graph.n(); ++j) {
      if (j == v) continue;
      EXPECT_DOUBLE_EQ((*result)(v, j), 0.0);
    }
  }
}

TEST(NaiveSimRankTest, ReportsStats) {
  DiGraph graph = PaperExampleGraph();
  SimRankOptions options;
  options.iterations = 3;
  KernelStats stats;
  auto result = NaiveSimRank(graph, options, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.iterations, 3u);
  EXPECT_GT(stats.ops.partial_sum_adds, 0u);
}

TEST(NaiveSimRankTest, DerivesIterationsFromEpsilon) {
  DiGraph graph = PaperExampleGraph();
  SimRankOptions options;
  options.damping = 0.6;
  options.epsilon = 1e-3;
  KernelStats stats;
  auto result = NaiveSimRank(graph, options, &stats);
  ASSERT_TRUE(result.ok());
  // Smallest K with 0.6^{K+1} <= 1e-3: ceil(13.52 - 1) = 13.
  EXPECT_EQ(stats.iterations, 13u);
}

}  // namespace
}  // namespace simrank
