#include "simrank/core/psum.h"

#include <gtest/gtest.h>

#include "simrank/core/naive.h"
#include "simrank/linalg/dense_matrix.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

TEST(PsumSimRankTest, MatchesNaiveExactly) {
  DiGraph graph = testing::PaperExampleGraph();
  SimRankOptions options;
  options.damping = 0.6;
  options.iterations = 8;
  auto naive = NaiveSimRank(graph, options);
  auto psum = PsumSimRank(graph, options);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(psum.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(*naive, *psum), 1e-12);
}

TEST(PsumSimRankTest, MatchesNaiveOnRandomGraphs) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    DiGraph graph = testing::RandomGraph(40, 200, seed);
    SimRankOptions options;
    options.damping = 0.7;
    options.iterations = 6;
    auto naive = NaiveSimRank(graph, options);
    auto psum = PsumSimRank(graph, options);
    ASSERT_TRUE(naive.ok() && psum.ok());
    EXPECT_LT(DenseMatrix::MaxAbsDiff(*naive, *psum), 1e-12)
        << "seed " << seed;
  }
}

TEST(PsumSimRankTest, FewerAdditionsThanNaive) {
  DiGraph graph = testing::OverlappyGraph(120, 8, 5);
  SimRankOptions options;
  options.iterations = 5;
  KernelStats naive_stats, psum_stats;
  ASSERT_TRUE(NaiveSimRank(graph, options, &naive_stats).ok());
  ASSERT_TRUE(PsumSimRank(graph, options, &psum_stats).ok());
  // Partial sums memoisation: O(K d n²) vs O(K d² n²).
  EXPECT_LT(psum_stats.ops.total_adds(), naive_stats.ops.total_adds());
}

TEST(PsumSimRankTest, SievingClipsSmallScores) {
  DiGraph graph = testing::RandomGraph(30, 90, 11);
  SimRankOptions exact_options;
  exact_options.iterations = 8;
  SimRankOptions sieved_options = exact_options;
  sieved_options.sieve_threshold = 0.05;
  auto exact = PsumSimRank(graph, exact_options);
  auto sieved = PsumSimRank(graph, sieved_options);
  ASSERT_TRUE(exact.ok() && sieved.ok());
  uint32_t zeros_exact = 0, zeros_sieved = 0;
  for (uint32_t i = 0; i < graph.n(); ++i) {
    for (uint32_t j = 0; j < graph.n(); ++j) {
      if ((*exact)(i, j) == 0.0) ++zeros_exact;
      if ((*sieved)(i, j) == 0.0) ++zeros_sieved;
      // Sieving only ever under-approximates.
      EXPECT_LE((*sieved)(i, j), (*exact)(i, j) + 1e-12);
    }
  }
  EXPECT_GE(zeros_sieved, zeros_exact);
}

TEST(PsumSimRankTest, SievedScoresCloseToExactWithinThresholdBound) {
  DiGraph graph = testing::RandomGraph(30, 120, 13);
  SimRankOptions exact_options;
  exact_options.damping = 0.6;
  exact_options.iterations = 10;
  SimRankOptions sieved_options = exact_options;
  sieved_options.sieve_threshold = 0.01;
  auto exact = PsumSimRank(graph, exact_options);
  auto sieved = PsumSimRank(graph, sieved_options);
  ASSERT_TRUE(exact.ok() && sieved.ok());
  // Lizorkin et al. Thm 4: the sieved scores differ from the exact ones by
  // at most delta/(1-C) ... we assert a conservative multiple.
  const double bound =
      sieved_options.sieve_threshold / (1.0 - exact_options.damping);
  EXPECT_LT(DenseMatrix::MaxAbsDiff(*exact, *sieved), bound + 1e-12);
}

TEST(PsumSimRankTest, AuxMemoryIsLinear) {
  DiGraph graph = testing::RandomGraph(100, 500, 7);
  SimRankOptions options;
  options.iterations = 2;
  KernelStats stats;
  ASSERT_TRUE(PsumSimRank(graph, options, &stats).ok());
  // One n-length partial-sum vector.
  EXPECT_EQ(stats.aux_peak_bytes, graph.n() * sizeof(double));
}

TEST(PsumSimRankTest, HandlesEmptyGraph) {
  DiGraph graph;
  SimRankOptions options;
  options.iterations = 2;
  auto result = PsumSimRank(graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows(), 0u);
}

TEST(PsumSimRankTest, HandlesSingleVertex) {
  DiGraph::Builder builder(1);
  DiGraph graph = std::move(builder).Build();
  SimRankOptions options;
  options.iterations = 3;
  auto result = PsumSimRank(graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ((*result)(0, 0), 1.0);
}

TEST(PsumSimRankTest, SelfLoopGraph) {
  // A vertex with a self-loop is its own in-neighbour; s(a,a) stays pinned
  // to 1 and the off-diagonal propagation uses the loop edge.
  DiGraph::Builder builder(2);
  builder.AddEdge(0, 0);
  builder.AddEdge(0, 1);
  DiGraph graph = std::move(builder).Build();
  SimRankOptions options;
  options.damping = 0.5;
  options.iterations = 4;
  auto naive = NaiveSimRank(graph, options);
  auto psum = PsumSimRank(graph, options);
  ASSERT_TRUE(naive.ok() && psum.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(*naive, *psum), 1e-12);
  EXPECT_GT((*psum)(0, 1), 0.0);
}

}  // namespace
}  // namespace simrank
