#include "simrank/core/set_index.h"

#include <gtest/gtest.h>

#include "simrank/graph/graph_stats.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

TEST(InSetIndexTest, PaperExampleHasSixSets) {
  DiGraph graph = testing::PaperExampleGraph();
  InSetIndex index = BuildInSetIndex(graph);
  EXPECT_EQ(index.num_sets, 6u);
  // f, g, i have empty in-neighbour sets.
  EXPECT_EQ(index.set_of_vertex[testing::kF], -1);
  EXPECT_EQ(index.set_of_vertex[testing::kG], -1);
  EXPECT_EQ(index.set_of_vertex[testing::kI], -1);
  // The others each have their own set.
  for (VertexId v : {testing::kA, testing::kB, testing::kC, testing::kD,
                     testing::kE, testing::kH}) {
    EXPECT_GE(index.set_of_vertex[v], 0);
  }
}

TEST(InSetIndexTest, MembersAndRepresentativesConsistent) {
  DiGraph graph = testing::OverlappyGraph(120, 7, 2);
  InSetIndex index = BuildInSetIndex(graph);
  uint32_t member_total = 0;
  for (uint32_t s = 0; s < index.num_sets; ++s) {
    ASSERT_FALSE(index.members[s].empty());
    member_total += static_cast<uint32_t>(index.members[s].size());
    for (VertexId v : index.members[s]) {
      EXPECT_EQ(index.set_of_vertex[v], static_cast<int32_t>(s));
      // Every member's in-list equals the representative's.
      auto rep = graph.InNeighbors(index.representative[s]);
      auto own = graph.InNeighbors(v);
      ASSERT_EQ(rep.size(), own.size());
      EXPECT_TRUE(std::equal(rep.begin(), rep.end(), own.begin()));
    }
    EXPECT_EQ(index.set_size[s],
              graph.InDegree(index.representative[s]));
  }
  uint32_t nonempty = 0;
  for (VertexId v = 0; v < graph.n(); ++v) {
    if (graph.InDegree(v) > 0) ++nonempty;
  }
  EXPECT_EQ(member_total, nonempty);
}

TEST(InSetIndexTest, AgreesWithGraphStatsDistinctCount) {
  for (uint64_t seed : {5u, 6u, 7u}) {
    DiGraph graph = testing::RandomGraph(80, 240, seed);
    InSetIndex index = BuildInSetIndex(graph);
    EXPECT_EQ(index.num_sets, CountDistinctInNeighborSets(graph));
  }
}

TEST(InSetIndexTest, EmptyGraph) {
  DiGraph graph;
  InSetIndex index = BuildInSetIndex(graph);
  EXPECT_EQ(index.num_sets, 0u);
  EXPECT_TRUE(index.set_of_vertex.empty());
}

}  // namespace
}  // namespace simrank
