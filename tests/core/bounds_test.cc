#include "simrank/core/bounds.h"

#include <cmath>
#include <gtest/gtest.h>

namespace simrank {
namespace {

TEST(LambertWTest, KnownValues) {
  EXPECT_NEAR(LambertW0(0.0), 0.0, 1e-12);
  // W(e) = 1.
  EXPECT_NEAR(LambertW0(std::exp(1.0)), 1.0, 1e-10);
  // W(1) = Omega constant.
  EXPECT_NEAR(LambertW0(1.0), 0.5671432904097838, 1e-10);
  // W(x·e^x) = x round-trips.
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(LambertW0(x * std::exp(x)), x, 1e-9) << "x=" << x;
  }
}

TEST(LambertWTest, DefiningEquationHolds) {
  for (double x : {0.01, 0.3, 1.7, 4.0, 20.0, 1000.0}) {
    const double w = LambertW0(x);
    EXPECT_NEAR(w * std::exp(w), x, 1e-8 * (1.0 + x)) << "x=" << x;
  }
}

TEST(BoundsTest, ConventionalIterationCountMatchesPaperExamples) {
  // Section IV worked example: C = 0.8, eps = 1e-4 -> 41 iterations.
  EXPECT_EQ(ConventionalIterationsForAccuracy(0.8, 1e-4), 41u);
  // Section V default: C = 0.6, eps = 1e-3 -> ceil(13.52 - 1) = 13.
  EXPECT_EQ(ConventionalIterationsForAccuracy(0.6, 1e-3), 13u);
  // And the bound is actually met at that K.
  EXPECT_LE(ConventionalErrorBound(0.6, 13), 1e-3);
  EXPECT_GT(ConventionalErrorBound(0.6, 12), 1e-3);
}

TEST(BoundsTest, DifferentialExactMatchesFig6fColumn) {
  // Fig. 6f, OIP-DSR column at C = 0.8.
  EXPECT_EQ(DifferentialIterationsExact(0.8, 1e-2), 4u);
  EXPECT_EQ(DifferentialIterationsExact(0.8, 1e-3), 5u);
  EXPECT_EQ(DifferentialIterationsExact(0.8, 1e-4), 6u);
  EXPECT_EQ(DifferentialIterationsExact(0.8, 1e-5), 7u);
  EXPECT_EQ(DifferentialIterationsExact(0.8, 1e-6), 8u);
}

TEST(BoundsTest, LambertWEstimateMatchesFig6fColumn) {
  // Fig. 6f, "LamW Est." column at C = 0.8.
  EXPECT_EQ(DifferentialIterationsLambertW(0.8, 1e-2), 4u);
  EXPECT_EQ(DifferentialIterationsLambertW(0.8, 1e-3), 5u);
  EXPECT_EQ(DifferentialIterationsLambertW(0.8, 1e-4), 7u);
  EXPECT_EQ(DifferentialIterationsLambertW(0.8, 1e-5), 8u);
  EXPECT_EQ(DifferentialIterationsLambertW(0.8, 1e-6), 9u);
}

TEST(BoundsTest, LogEstimateMatchesFig6fColumn) {
  // Fig. 6f, "Log Est." column at C = 0.8 (1e-2 is outside Corollary 2's
  // validity range; the paper leaves it blank, we fall back to Lambert-W).
  EXPECT_EQ(DifferentialIterationsLogEstimate(0.8, 1e-3), 5u);
  EXPECT_EQ(DifferentialIterationsLogEstimate(0.8, 1e-4), 7u);
  EXPECT_EQ(DifferentialIterationsLogEstimate(0.8, 1e-5), 9u);
  EXPECT_EQ(DifferentialIterationsLogEstimate(0.8, 1e-6), 10u);
}

TEST(BoundsTest, EstimatesAreUpperBoundsOnExact) {
  for (double damping : {0.4, 0.6, 0.8, 0.95}) {
    for (double eps : {1e-2, 1e-3, 1e-4, 1e-6, 1e-8}) {
      const uint32_t exact = DifferentialIterationsExact(damping, eps);
      EXPECT_GE(DifferentialIterationsLambertW(damping, eps), exact)
          << "C=" << damping << " eps=" << eps;
      EXPECT_GE(DifferentialIterationsLogEstimate(damping, eps) + 1, exact)
          << "C=" << damping << " eps=" << eps;
      // And they are tight: within a couple of iterations.
      EXPECT_LE(DifferentialIterationsLambertW(damping, eps), exact + 2)
          << "C=" << damping << " eps=" << eps;
    }
  }
}

TEST(BoundsTest, ErrorBoundsDecreaseMonotonically) {
  double previous_conventional = 1.0;
  double previous_differential = 1.0;
  for (uint32_t k = 0; k < 30; ++k) {
    const double conventional = ConventionalErrorBound(0.8, k);
    const double differential = DifferentialErrorBound(0.8, k);
    EXPECT_LT(conventional, previous_conventional);
    EXPECT_LT(differential, previous_differential);
    // The exponential-sum bound is never worse.
    EXPECT_LE(differential, conventional);
    previous_conventional = conventional;
    previous_differential = differential;
  }
}

TEST(BoundsTest, DifferentialBoundHasFactorialDecay) {
  // C^{k+1}/(k+1)! — check against a direct small-k computation.
  EXPECT_NEAR(DifferentialErrorBound(0.8, 0), 0.8, 1e-15);
  EXPECT_NEAR(DifferentialErrorBound(0.8, 1), 0.8 * 0.8 / 2.0, 1e-15);
  EXPECT_NEAR(DifferentialErrorBound(0.8, 2), 0.8 * 0.8 * 0.8 / 6.0, 1e-15);
  // Large k decays below any useful accuracy without overflowing
  // (k = 100 is ~1e-170; far larger k may underflow to exactly 0, which
  // is still a correct "bound met" signal).
  EXPECT_GT(DifferentialErrorBound(0.8, 100), 0.0);
  EXPECT_LT(DifferentialErrorBound(0.8, 100), 1e-150);
  EXPECT_LT(DifferentialErrorBound(0.8, 400), 1e-300);
}

}  // namespace
}  // namespace simrank
