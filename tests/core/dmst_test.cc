#include "simrank/core/dmst.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "simrank/graph/set_ops.h"
#include "simrank/mst/arborescence.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

using ::simrank::testing::PaperExampleGraph;

// Finds the set id whose contents equal `expected`.
int32_t FindSet(const DiGraph& graph, const InSetIndex& sets,
                std::vector<VertexId> expected) {
  std::sort(expected.begin(), expected.end());
  for (uint32_t s = 0; s < sets.num_sets; ++s) {
    auto contents = sets.Contents(graph, s);
    if (contents.size() == expected.size() &&
        std::equal(contents.begin(), contents.end(), expected.begin())) {
      return static_cast<int32_t>(s);
    }
  }
  return -1;
}

TEST(DmstReduceTest, PaperExampleSetsAndCosts) {
  DiGraph graph = PaperExampleGraph();
  auto mst = DmstReduce(graph);
  ASSERT_TRUE(mst.ok());
  // Fig. 2a: six distinct non-empty in-neighbour sets.
  EXPECT_EQ(mst->sets.num_sets, 6u);
  // Fig. 2c/2d: total MST cost is 1+1+1+1+2+2 = 8 and psum-SR's
  // no-sharing cost is 1+1+1+2+3+3 = 11.
  EXPECT_EQ(mst->total_cost, 8u);
  EXPECT_EQ(mst->cost_without_sharing, 11u);
  EXPECT_EQ(mst->shared_edges, 3u);  // the # edges of Fig. 2d
  EXPECT_NEAR(mst->share_ratio(), 1.0 - 8.0 / 11.0, 1e-12);
}

TEST(DmstReduceTest, PaperExamplePartitions) {
  using testing::kA, testing::kD, testing::kE, testing::kG, testing::kI,
      testing::kB;
  DiGraph graph = PaperExampleGraph();
  auto mst = DmstReduce(graph);
  ASSERT_TRUE(mst.ok());
  const auto& sets = mst->sets;

  int32_t set_ia = FindSet(graph, sets, {testing::kB, kG});        // I(a)
  int32_t set_ic = FindSet(graph, sets, {testing::kB, kD, kG});    // I(c)
  int32_t set_ie = FindSet(graph, sets, {testing::kF, kG});        // I(e)
  int32_t set_ib = FindSet(graph, sets, {kE, testing::kF, kG, kI});  // I(b)
  int32_t set_id = FindSet(graph, sets, {kA, kE, testing::kF, kI});  // I(d)
  ASSERT_GE(set_ia, 0);
  ASSERT_GE(set_ic, 0);
  ASSERT_GE(set_ie, 0);
  ASSERT_GE(set_ib, 0);
  ASSERT_GE(set_id, 0);

  // Fig. 3a: P(I(c)) = {I(a), {d}} — tree parent of I(c) is I(a) with
  // add = {d}, sub = {}.
  const uint32_t node_ic = static_cast<uint32_t>(set_ic) + 1;
  EXPECT_EQ(mst->tree.parent(node_ic), static_cast<uint32_t>(set_ia) + 1);
  EXPECT_EQ(mst->add[node_ic], std::vector<VertexId>{kD});
  EXPECT_TRUE(mst->sub[node_ic].empty());

  // Fig. 3a: P(I(b)) = {I(e), {e, i}}.
  const uint32_t node_ib = static_cast<uint32_t>(set_ib) + 1;
  EXPECT_EQ(mst->tree.parent(node_ib), static_cast<uint32_t>(set_ie) + 1);
  EXPECT_EQ(mst->add[node_ib], (std::vector<VertexId>{kE, kI}));
  EXPECT_TRUE(mst->sub[node_ib].empty());

  // Fig. 3a: P(I(d)) = {I(b) \ {g}, {a}}.
  const uint32_t node_id = static_cast<uint32_t>(set_id) + 1;
  EXPECT_EQ(mst->tree.parent(node_id), static_cast<uint32_t>(set_ib) + 1);
  EXPECT_EQ(mst->add[node_id], std::vector<VertexId>{kA});
  EXPECT_EQ(mst->sub[node_id], std::vector<VertexId>{kG});
}

TEST(DmstReduceTest, MinCostMatchesChuLiuEdmondsOracle) {
  // The greedy min-in-edge choice on the (size, id)-ordered DAG G* must be
  // optimal; verify against Chu-Liu/Edmonds on the materialised G*.
  for (uint64_t seed : {1u, 7u, 23u}) {
    DiGraph graph = testing::OverlappyGraph(60, 5, seed);
    auto mst = DmstReduce(graph);
    ASSERT_TRUE(mst.ok());
    const auto& sets = mst->sets;
    const uint32_t p = sets.num_sets;
    // Materialise G*: node 0 = root, node s+1 = set s.
    std::vector<WeightedEdge> edges;
    std::vector<uint32_t> order(p);
    for (uint32_t s = 0; s < p; ++s) order[s] = s;
    std::sort(order.begin(), order.end(), [&](uint32_t x, uint32_t y) {
      return sets.set_size[x] != sets.set_size[y]
                 ? sets.set_size[x] < sets.set_size[y]
                 : x < y;
    });
    for (uint32_t i = 0; i < p; ++i) {
      const uint32_t v = order[i];
      edges.push_back(WeightedEdge{
          0, v + 1, static_cast<double>(sets.set_size[v] - 1)});
      for (uint32_t j = 0; j < i; ++j) {
        const uint32_t u = order[j];
        const uint64_t symdiff = SymmetricDifferenceSize(
            sets.Contents(graph, u), sets.Contents(graph, v));
        const double cost = std::min<double>(
            static_cast<double>(symdiff),
            static_cast<double>(sets.set_size[v] - 1));
        edges.push_back(WeightedEdge{u + 1, v + 1, cost});
      }
    }
    auto oracle = ChuLiuEdmondsCost(p + 1, 0, edges);
    ASSERT_TRUE(oracle.ok());
    EXPECT_DOUBLE_EQ(static_cast<double>(mst->total_cost), *oracle)
        << "seed " << seed;
  }
}

TEST(DmstReduceTest, AlwaysRootPolicyDisablesSharing) {
  DiGraph graph = PaperExampleGraph();
  DmstOptions options;
  options.policy = DmstPolicy::kAlwaysRoot;
  auto mst = DmstReduce(graph, options);
  ASSERT_TRUE(mst.ok());
  EXPECT_EQ(mst->shared_edges, 0u);
  EXPECT_EQ(mst->total_cost, mst->cost_without_sharing);
  EXPECT_DOUBLE_EQ(mst->share_ratio(), 0.0);
}

TEST(DmstReduceTest, MinCostNeverWorseThanChainOrRoot) {
  for (uint64_t seed : {3u, 9u}) {
    DiGraph graph = testing::OverlappyGraph(80, 6, seed);
    auto best = DmstReduce(graph, {DmstPolicy::kMinCost});
    auto chain = DmstReduce(graph, {DmstPolicy::kPreviousInOrder});
    auto root = DmstReduce(graph, {DmstPolicy::kAlwaysRoot});
    ASSERT_TRUE(best.ok() && chain.ok() && root.ok());
    EXPECT_LE(best->total_cost, chain->total_cost);
    EXPECT_LE(best->total_cost, root->total_cost);
  }
}

TEST(DmstReduceTest, DiffListsReconstructSets) {
  // Replaying parent contents + add - sub must yield each set exactly.
  DiGraph graph = testing::OverlappyGraph(70, 6, 4);
  auto mst = DmstReduce(graph);
  ASSERT_TRUE(mst.ok());
  const auto& sets = mst->sets;
  for (uint32_t s = 0; s < sets.num_sets; ++s) {
    const uint32_t node = s + 1;
    std::vector<VertexId> reconstructed;
    if (mst->tree.parent(node) != 0) {
      auto parent_contents =
          sets.Contents(graph, mst->tree.parent(node) - 1);
      reconstructed.assign(parent_contents.begin(), parent_contents.end());
    }
    for (VertexId x : mst->add[node]) reconstructed.push_back(x);
    std::sort(reconstructed.begin(), reconstructed.end());
    for (VertexId x : mst->sub[node]) {
      auto it = std::find(reconstructed.begin(), reconstructed.end(), x);
      ASSERT_NE(it, reconstructed.end());
      reconstructed.erase(it);
    }
    auto contents = sets.Contents(graph, s);
    EXPECT_TRUE(std::equal(contents.begin(), contents.end(),
                           reconstructed.begin(), reconstructed.end()))
        << "set " << s;
  }
}

TEST(DmstReduceTest, EmptyGraph) {
  DiGraph graph;
  auto mst = DmstReduce(graph);
  ASSERT_TRUE(mst.ok());
  EXPECT_EQ(mst->sets.num_sets, 0u);
  EXPECT_EQ(mst->tree.size(), 1u);
  EXPECT_EQ(mst->total_cost, 0u);
}

TEST(DmstReduceTest, OutputIsIdenticalForEveryThreadCount) {
  // The parallel phases (diff-list materialisation and schedule
  // construction) must be invisible in the output: same tree, same lists,
  // same schedule, same costs, same op counts for any worker count —
  // including 0 (hardware concurrency).
  DiGraph graph = testing::RandomGraph(120, 600, 77);
  DmstOptions serial_options;
  serial_options.num_threads = 1;
  OpCounter serial_ops;
  auto serial = DmstReduce(graph, serial_options, &serial_ops);
  ASSERT_TRUE(serial.ok());

  for (const uint32_t threads : {0u, 2u, 4u, 7u}) {
    DmstOptions options;
    options.num_threads = threads;
    OpCounter ops;
    auto parallel = DmstReduce(graph, options, &ops);
    ASSERT_TRUE(parallel.ok()) << "threads=" << threads;
    SCOPED_TRACE("threads=" + std::to_string(threads));

    EXPECT_EQ(parallel->add, serial->add);
    EXPECT_EQ(parallel->sub, serial->sub);
    ASSERT_EQ(parallel->schedule.size(), serial->schedule.size());
    for (size_t i = 0; i < serial->schedule.size(); ++i) {
      EXPECT_EQ(parallel->schedule[i].set, serial->schedule[i].set) << i;
      EXPECT_EQ(parallel->schedule[i].from_scratch,
                serial->schedule[i].from_scratch)
          << i;
      EXPECT_EQ(parallel->schedule[i].add, serial->schedule[i].add) << i;
      EXPECT_EQ(parallel->schedule[i].sub, serial->schedule[i].sub) << i;
    }
    EXPECT_EQ(parallel->schedule_cost, serial->schedule_cost);
    EXPECT_EQ(parallel->total_cost, serial->total_cost);
    EXPECT_EQ(parallel->cost_without_sharing, serial->cost_without_sharing);
    EXPECT_EQ(parallel->shared_edges, serial->shared_edges);
    EXPECT_EQ(parallel->avg_symmetric_difference,
              serial->avg_symmetric_difference);
    // Parent selection (the only op-counted phase) stays serial, so the
    // counters are exact, not approximate.
    EXPECT_EQ(ops.counts().set_ops, serial_ops.counts().set_ops);
    EXPECT_EQ(ops.counts().total(), serial_ops.counts().total());
  }
}

TEST(DmstReduceTest, DuplicateInNeighbourSetsCollapse) {
  // Two vertices with identical in-neighbour sets map to one G* node.
  DiGraph::Builder builder(4);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  builder.AddEdge(0, 3);
  builder.AddEdge(1, 3);
  DiGraph graph = std::move(builder).Build();
  auto mst = DmstReduce(graph);
  ASSERT_TRUE(mst.ok());
  EXPECT_EQ(mst->sets.num_sets, 1u);
  EXPECT_EQ(mst->sets.members[0], (std::vector<VertexId>{2, 3}));
}

}  // namespace
}  // namespace simrank
