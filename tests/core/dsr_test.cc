#include "simrank/core/dsr.h"

#include <cmath>
#include <gtest/gtest.h>

#include "simrank/core/bounds.h"
#include "simrank/core/matrix_simrank.h"
#include "simrank/core/psum.h"
#include "simrank/linalg/dense_matrix.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

TEST(DifferentialSimRankTest, MatchesMatrixOracle) {
  DiGraph graph = testing::PaperExampleGraph();
  SimRankOptions options;
  options.damping = 0.6;
  options.iterations = 8;
  auto oracle = MatrixDifferentialSimRank(graph, options);
  for (DsrBackend backend : {DsrBackend::kOip, DsrBackend::kPsum}) {
    auto dsr = DifferentialSimRank(graph, options, backend);
    ASSERT_TRUE(oracle.ok() && dsr.ok());
    EXPECT_LT(DenseMatrix::MaxAbsDiff(*oracle, *dsr), 1e-12);
  }
}

TEST(DifferentialSimRankTest, BackendsAgreeOnRandomGraphs) {
  for (uint64_t seed : {4u, 6u}) {
    DiGraph graph = testing::RandomGraph(50, 250, seed);
    SimRankOptions options;
    options.damping = 0.8;
    options.iterations = 6;
    auto oip = DifferentialSimRank(graph, options, DsrBackend::kOip);
    auto psum = DifferentialSimRank(graph, options, DsrBackend::kPsum);
    ASSERT_TRUE(oip.ok() && psum.ok());
    EXPECT_LT(DenseMatrix::MaxAbsDiff(*oip, *psum), 1e-12) << "seed " << seed;
  }
}

TEST(DifferentialSimRankTest, ClosedFormOnSharedParentGadget) {
  // x -> a, x -> b. T_1(a,b) = T_0(x,x) = 1, but T_2(a,b) = T_1(x,x) = 0
  // because x has no in-neighbours (its T row is zero from iteration 1
  // on). Hence ŝ(a,b) = e^{-C}·C^1/1!·1 = C·e^{-C} exactly.
  DiGraph::Builder builder(3);
  builder.AddEdge(2, 0);
  builder.AddEdge(2, 1);
  DiGraph graph = std::move(builder).Build();
  SimRankOptions options;
  options.damping = 0.6;
  options.iterations = 30;  // effectively converged
  auto dsr = DifferentialSimRank(graph, options, DsrBackend::kOip);
  ASSERT_TRUE(dsr.ok());
  EXPECT_NEAR((*dsr)(0, 1), 0.6 * std::exp(-0.6), 1e-12);
}

TEST(DifferentialSimRankTest, ErrorBoundOfProposition7Holds) {
  DiGraph graph = testing::OverlappyGraph(60, 5, 12);
  SimRankOptions converged_options;
  converged_options.damping = 0.8;
  converged_options.iterations = 40;  // reference ≈ exact
  auto reference =
      DifferentialSimRank(graph, converged_options, DsrBackend::kPsum);
  ASSERT_TRUE(reference.ok());
  for (uint32_t k : {2u, 4u, 6u, 8u}) {
    SimRankOptions options = converged_options;
    options.iterations = k;
    auto truncated = DifferentialSimRank(graph, options, DsrBackend::kPsum);
    ASSERT_TRUE(truncated.ok());
    const double diff = DenseMatrix::MaxAbsDiff(*reference, *truncated);
    EXPECT_LE(diff, DifferentialErrorBound(0.8, k) + 1e-12) << "k=" << k;
  }
}

TEST(DifferentialSimRankTest, DiagonalIsNotPinned) {
  // Unlike conventional SimRank, ŝ(a,a) < 1 in general (it equals
  // e^{-C}·Σ C^i/i!·[Qⁱ(Qᵀ)ⁱ]_{aa} and the paper's ranking experiments
  // only rely on relative order).
  DiGraph graph = testing::PaperExampleGraph();
  SimRankOptions options;
  options.damping = 0.6;
  options.iterations = 10;
  auto dsr = DifferentialSimRank(graph, options);
  ASSERT_TRUE(dsr.ok());
  // A vertex with no in-neighbours keeps only the e^{-C} self term.
  EXPECT_NEAR((*dsr)(testing::kF, testing::kF), std::exp(-0.6), 1e-12);
}

TEST(DifferentialSimRankTest, DerivesIterationsFromEpsilon) {
  DiGraph graph = testing::PaperExampleGraph();
  SimRankOptions options;
  options.damping = 0.8;
  options.epsilon = 1e-4;
  KernelStats stats;
  auto dsr = DifferentialSimRank(graph, options, DsrBackend::kOip, &stats);
  ASSERT_TRUE(dsr.ok());
  // Exact minimal K' for C=0.8, eps=1e-4 is 6 (Fig. 6f's OIP-DSR column).
  EXPECT_EQ(stats.iterations, 6u);
}

TEST(DifferentialSimRankTest, NeedsFarFewerIterationsThanConventional) {
  SimRankOptions options;
  options.damping = 0.8;
  options.epsilon = 1e-4;
  const uint32_t conventional =
      ConventionalIterationsForAccuracy(options.damping, options.epsilon);
  const uint32_t differential =
      DifferentialIterationsExact(options.damping, options.epsilon);
  EXPECT_EQ(conventional, 41u);  // the paper's worked example (Section IV)
  EXPECT_EQ(differential, 6u);
  EXPECT_LT(differential * 5, conventional);
}

TEST(DifferentialSimRankTest, UsesThreeScoreBuffers) {
  DiGraph graph = testing::PaperExampleGraph();
  SimRankOptions options;
  options.iterations = 3;
  KernelStats stats;
  ASSERT_TRUE(DifferentialSimRank(graph, options, DsrBackend::kOip, &stats)
                  .ok());
  EXPECT_EQ(stats.score_buffers, 3u);
}

}  // namespace
}  // namespace simrank
