#include <gtest/gtest.h>

#include "simrank/benchlib/convergence.h"
#include "simrank/benchlib/datasets.h"
#include "simrank/core/bounds.h"
#include "simrank/graph/graph_stats.h"

namespace simrank::bench {
namespace {

TEST(DatasetsTest, WebGraphMatchesBerkstanShape) {
  Dataset webg = MakeWebGraph();
  EXPECT_EQ(webg.name, "WEBG");
  EXPECT_EQ(webg.graph.n(), 3000u);
  // BERKSTAN's d = 11.1; the analogue must land close.
  EXPECT_NEAR(webg.graph.AverageInDegree(), 11.0, 1.5);
}

TEST(DatasetsTest, CitationMatchesPatentShape) {
  Dataset citn = MakeCitationGraph();
  EXPECT_EQ(citn.graph.n(), 4000u);
  EXPECT_NEAR(citn.graph.AverageInDegree(), 4.4, 1.0);
  // DAG property.
  for (VertexId v = 0; v < citn.graph.n(); ++v) {
    for (VertexId u : citn.graph.OutNeighbors(v)) EXPECT_LT(u, v);
  }
}

TEST(DatasetsTest, CoauthorSnapshotsGrow) {
  auto snapshots = AllCoauthorSnapshots();
  ASSERT_EQ(snapshots.size(), 4u);
  for (size_t i = 1; i < snapshots.size(); ++i) {
    EXPECT_GT(snapshots[i].graph.n(), snapshots[i - 1].graph.n());
    EXPECT_GT(snapshots[i].graph.m(), snapshots[i - 1].graph.m());
  }
  // DBLP's average degree band (2.4 - 2.7 in Fig. 5) — allow slack.
  for (const auto& snapshot : snapshots) {
    EXPECT_GT(snapshot.graph.AverageInDegree(), 1.5);
    EXPECT_LT(snapshot.graph.AverageInDegree(), 5.0);
  }
}

TEST(DatasetsTest, SynDensitySweepTracksRequestedDegree) {
  for (uint32_t d : {5u, 20u, 50u}) {
    Dataset syn = MakeSynGraph(d);
    EXPECT_NEAR(syn.graph.AverageInDegree(), static_cast<double>(d),
                0.3 * d + 1.0)
        << "d=" << d;
  }
}

TEST(DatasetsTest, GenerationIsDeterministic) {
  Dataset a = MakeCoauthorSnapshot(0);
  Dataset b = MakeCoauthorSnapshot(0);
  EXPECT_EQ(a.graph, b.graph);
}

TEST(ConvergenceTest, ConventionalWithinTheoreticalBound) {
  Dataset coauth = MakeCoauthorSnapshot(0);
  const double damping = 0.8;
  const double eps = 1e-3;
  ConvergenceResult measured =
      MeasureConventionalConvergence(coauth.graph, damping, eps, 100);
  ASSERT_FALSE(measured.truncated);
  EXPECT_LE(measured.final_delta, eps);
  // Measured iterations never exceed the a-priori bound (plus the bound is
  // not absurdly loose).
  const uint32_t bound = ConventionalIterationsForAccuracy(damping, eps);
  EXPECT_LE(measured.iterations, bound + 1);
  EXPECT_GE(measured.iterations, bound / 3);
}

TEST(ConvergenceTest, DifferentialConvergesMuchFaster) {
  Dataset coauth = MakeCoauthorSnapshot(0);
  const double damping = 0.8;
  for (double eps : {1e-3, 1e-5}) {
    ConvergenceResult conventional =
        MeasureConventionalConvergence(coauth.graph, damping, eps, 200);
    ConvergenceResult differential =
        MeasureDifferentialConvergence(coauth.graph, damping, eps, 200);
    ASSERT_FALSE(conventional.truncated);
    ASSERT_FALSE(differential.truncated);
    // On this small sparse graph the measured conventional convergence is
    // faster than its worst-case bound, so assert a 2x gap (the paper's
    // 5x shows up on the larger D11-scale runs of bench/fig6e).
    EXPECT_LE(differential.iterations * 2, conventional.iterations)
        << "eps=" << eps;
    // And within the Prop. 7 bound.
    EXPECT_LE(differential.iterations,
              DifferentialIterationsExact(damping, eps) + 1)
        << "eps=" << eps;
  }
}

TEST(ConvergenceTest, TruncationFlagged) {
  Dataset coauth = MakeCoauthorSnapshot(0);
  ConvergenceResult result =
      MeasureConventionalConvergence(coauth.graph, 0.9, 1e-9, 3);
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.iterations, 3u);
}

}  // namespace
}  // namespace simrank::bench
