#include "simrank/common/json_writer.h"

#include <cstdlib>
#include <limits>

#include <gtest/gtest.h>

namespace simrank {
namespace {

TEST(JsonWriterTest, EmptyContainers) {
  JsonWriter object;
  object.BeginObject().EndObject();
  EXPECT_EQ(object.str(), "{}");

  JsonWriter array;
  array.BeginArray().EndArray();
  EXPECT_EQ(array.str(), "[]");
}

TEST(JsonWriterTest, ObjectMembersAndNesting) {
  JsonWriter json;
  json.BeginObject()
      .Key("name")
      .String("walk-index")
      .Key("vertices")
      .Uint(10000)
      .Key("offset")
      .Int(-3)
      .Key("ok")
      .Bool(true)
      .Key("missing")
      .Null()
      .Key("nested")
      .BeginObject()
      .Key("list")
      .BeginArray()
      .Uint(1)
      .Uint(2)
      .EndArray()
      .EndObject()
      .EndObject();
  EXPECT_EQ(json.str(),
            "{\"name\":\"walk-index\",\"vertices\":10000,\"offset\":-3,"
            "\"ok\":true,\"missing\":null,\"nested\":{\"list\":[1,2]}}");
}

TEST(JsonWriterTest, ArrayCommaPlacement) {
  JsonWriter json;
  json.BeginArray().Double(0.5).Double(0.25).Double(0.125).EndArray();
  EXPECT_EQ(json.str(), "[0.5,0.25,0.125]");
}

TEST(JsonWriterTest, StringEscaping) {
  JsonWriter json;
  json.String("quote\" backslash\\ newline\n tab\t bell\x01");
  EXPECT_EQ(json.str(),
            "\"quote\\\" backslash\\\\ newline\\n tab\\t bell\\u0001\"");
}

TEST(JsonWriterTest, RootScalar) {
  JsonWriter json;
  json.Uint(42);
  EXPECT_EQ(json.str(), "42");
}

TEST(JsonDoubleTest, ShortestFormRoundTripsBitwise) {
  const double values[] = {0.0,
                           0.6,
                           1.0 / 3.0,
                           0.008774999999999998,
                           -1.5e-17,
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max()};
  for (const double value : values) {
    const std::string text = JsonDouble(value);
    const double parsed = std::strtod(text.c_str(), nullptr);
    EXPECT_EQ(parsed, value) << "through " << text;
  }
  // Human-scale values stay human-readable.
  EXPECT_EQ(JsonDouble(0.6), "0.6");
  EXPECT_EQ(JsonDouble(0.0), "0");
}

TEST(JsonDoubleTest, NonFiniteRendersNull) {
  EXPECT_EQ(JsonDouble(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonDouble(std::numeric_limits<double>::quiet_NaN()), "null");
  JsonWriter json;
  json.BeginArray()
      .Double(std::numeric_limits<double>::infinity())
      .EndArray();
  EXPECT_EQ(json.str(), "[null]");
}

}  // namespace
}  // namespace simrank
