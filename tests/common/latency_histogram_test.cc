#include "simrank/common/latency_histogram.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace simrank {
namespace {

TEST(LatencyHistogramTest, EmptyHistogramQuantilesAreZero) {
  LatencyHistogram histogram;
  const auto snapshot = histogram.snapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_EQ(snapshot.sum_micros, 0u);
  EXPECT_EQ(snapshot.QuantileUpperMicros(0.5), 0u);
  EXPECT_EQ(snapshot.QuantileUpperMicros(0.99), 0u);
  for (uint32_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_EQ(snapshot.buckets[i], 0u) << "bucket " << i;
  }
}

TEST(LatencyHistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  // Bucket i counts samples <= 2^i µs: 1 lands in bucket 0, 2 in bucket 1
  // (the first bound it does not exceed), 3 in bucket 2, and 0 in bucket 0.
  struct Case {
    uint64_t micros;
    uint32_t bucket;
  };
  const Case cases[] = {
      {0, 0},  {1, 0},  {2, 1},   {3, 2},   {4, 2},
      {5, 3},  {8, 3},  {9, 4},   {1024, 10},
      {1025, 11},
      {1ull << 20, 20},
      {(1ull << 20) + 1, 21},  // past the largest finite bound -> +Inf
      {UINT64_MAX, 21},
  };
  for (const Case& c : cases) {
    LatencyHistogram histogram;
    histogram.Record(c.micros);
    const auto snapshot = histogram.snapshot();
    EXPECT_EQ(snapshot.count, 1u);
    EXPECT_EQ(snapshot.sum_micros, c.micros);
    EXPECT_EQ(snapshot.buckets[c.bucket], 1u)
        << c.micros << " us should land in bucket " << c.bucket;
  }
}

TEST(LatencyHistogramTest, BucketUpperMicrosShape) {
  EXPECT_EQ(LatencyHistogram::BucketUpperMicros(0), 1u);
  EXPECT_EQ(LatencyHistogram::BucketUpperMicros(10), 1024u);
  EXPECT_EQ(LatencyHistogram::BucketUpperMicros(20), 1ull << 20);
  EXPECT_EQ(
      LatencyHistogram::BucketUpperMicros(LatencyHistogram::kNumBuckets - 1),
      UINT64_MAX);
}

TEST(LatencyHistogramTest, QuantileCrossesCumulativeCount) {
  LatencyHistogram histogram;
  for (int i = 0; i < 90; ++i) histogram.Record(10);   // bucket 4 (<=16)
  for (int i = 0; i < 10; ++i) histogram.Record(900);  // bucket 10 (<=1024)
  const auto snapshot = histogram.snapshot();
  EXPECT_EQ(snapshot.QuantileUpperMicros(0.5), 16u);
  EXPECT_EQ(snapshot.QuantileUpperMicros(0.9), 16u);
  EXPECT_EQ(snapshot.QuantileUpperMicros(0.99), 1024u);
  EXPECT_EQ(snapshot.QuantileUpperMicros(1.0), 1024u);
}

TEST(LatencyHistogramTest, MergeIsAssociativeAndCommutative) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram c;
  for (int i = 0; i < 7; ++i) a.Record(3);
  for (int i = 0; i < 11; ++i) b.Record(500);
  for (int i = 0; i < 5; ++i) c.Record(2'000'000);  // +Inf bucket

  // (a + b) + c
  auto left = a.snapshot();
  left.Merge(b.snapshot());
  left.Merge(c.snapshot());
  // a + (b + c), folded in a different order
  auto bc = c.snapshot();
  bc.Merge(b.snapshot());
  auto right = bc;
  right.Merge(a.snapshot());

  EXPECT_EQ(left.count, 23u);
  EXPECT_EQ(left.count, right.count);
  EXPECT_EQ(left.sum_micros, right.sum_micros);
  for (uint32_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_EQ(left.buckets[i], right.buckets[i]) << "bucket " << i;
  }
  EXPECT_EQ(left.buckets[2], 7u);
  EXPECT_EQ(left.buckets[9], 11u);
  EXPECT_EQ(left.buckets[LatencyHistogram::kNumBuckets - 1], 5u);
}

TEST(LatencyHistogramTest, ConcurrentRecordAndSnapshotStayConsistent) {
  // Hammered from writer threads while a reader snapshots continuously;
  // run under TSan this doubles as a data-race check. Every intermediate
  // snapshot must be internally coherent modulo in-flight increments:
  // bucket totals never exceed the final count and never decrease.
  LatencyHistogram histogram;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 50'000;
  std::atomic<bool> done{false};
  std::thread reader([&histogram, &done] {
    uint64_t last_count = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto snapshot = histogram.snapshot();
      EXPECT_GE(snapshot.count, last_count);
      last_count = snapshot.count;
      uint64_t bucket_total = 0;
      for (uint32_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
        bucket_total += snapshot.buckets[i];
      }
      // Relaxed counters may be observed slightly out of step, but both
      // totals are bounded by everything ever recorded.
      EXPECT_LE(bucket_total,
                static_cast<uint64_t>(kWriters) * kPerWriter);
      EXPECT_LE(snapshot.count,
                static_cast<uint64_t>(kWriters) * kPerWriter);
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&histogram, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        histogram.Record(static_cast<uint64_t>((w * 37 + i) % 3000));
      }
    });
  }
  for (auto& writer : writers) writer.join();
  done.store(true, std::memory_order_release);
  reader.join();

  const auto snapshot = histogram.snapshot();
  EXPECT_EQ(snapshot.count, static_cast<uint64_t>(kWriters) * kPerWriter);
  uint64_t bucket_total = 0;
  for (uint32_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    bucket_total += snapshot.buckets[i];
  }
  EXPECT_EQ(bucket_total, snapshot.count);
}

}  // namespace
}  // namespace simrank
