#include "simrank/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace simrank {
namespace {

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(5), 5u);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
}

TEST(ThreadPoolTest, PoolIsReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, ParallelForCoversExactRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(3, 250, [&hits](uint64_t i) {
    hits[i].fetch_add(1);
  });
  for (uint64_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 3 && i < 250) ? 1 : 0) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, [&calls](uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> single{0};
  pool.ParallelFor(7, 8, [&single](uint64_t i) {
    EXPECT_EQ(i, 7u);
    single.fetch_add(1);
  });
  EXPECT_EQ(single.load(), 1);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallsShareOnePool) {
  // Two callers fan out over the same pool at once (the QueryEngine batch
  // APIs do this); each must complete without deadlock and cover its own
  // range exactly once.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(200);
  for (auto& h : hits) h.store(0);
  std::thread other([&pool, &hits] {
    pool.ParallelFor(0, 100, [&hits](uint64_t i) { hits[i].fetch_add(1); });
  });
  pool.ParallelFor(100, 200,
                   [&hits](uint64_t i) { hits[i].fetch_add(1); });
  other.join();
  for (uint64_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<uint64_t> order;
  pool.ParallelFor(0, 8, [&order](uint64_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<uint64_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

}  // namespace
}  // namespace simrank
