#include "simrank/common/rng.h"

#include <algorithm>
#include <gtest/gtest.h>
#include <set>

namespace simrank {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 20; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 15);
}

TEST(RngTest, NextUint64RespectsBound) {
  Rng rng(9);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextUint64(bound), bound);
    }
  }
}

TEST(RngTest, NextUint64CoversRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.NextUint64(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double min_seen = 1.0, max_seen = 0.0;
  for (int i = 0; i < 2000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    min_seen = std::min(min_seen, v);
    max_seen = std::max(max_seen, v);
  }
  EXPECT_LT(min_seen, 0.1);
  EXPECT_GT(max_seen, 0.9);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kSamples;
  const double variance = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(variance, 1.0, 0.1);
}

TEST(RngTest, PowerLawWithinBounds) {
  Rng rng(19);
  for (int i = 0; i < 500; ++i) {
    uint64_t v = rng.NextPowerLaw(2.5, 100);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
  }
}

TEST(RngTest, PowerLawSkewsSmall) {
  Rng rng(23);
  int small = 0;
  const int kSamples = 2000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.NextPowerLaw(2.5, 1000) <= 3) ++small;
  }
  // With alpha = 2.5, the mass below 4 dominates.
  EXPECT_GT(small, kSamples / 2);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, values);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(31);
  for (uint32_t k : {0u, 1u, 5u, 50u, 100u}) {
    auto sample = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<uint32_t> distinct(sample.begin(), sample.end());
    EXPECT_EQ(distinct.size(), k);
    for (uint32_t v : sample) EXPECT_LT(v, 100u);
  }
}

}  // namespace
}  // namespace simrank
