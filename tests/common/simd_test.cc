#include "simrank/common/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <random>
#include <vector>

#include "simrank/common/varint.h"

namespace simrank {
namespace {

// Every tier this machine can run; the vector kernels must commit only
// prefixes of what the scalar reference would produce, so each testable
// level is checked against the same expectations.
std::vector<SimdLevel> TestableLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  const auto max = static_cast<uint8_t>(MaxSupportedSimdLevel());
  if (max >= static_cast<uint8_t>(SimdLevel::kSse4)) {
    levels.push_back(SimdLevel::kSse4);
  }
  if (max >= static_cast<uint8_t>(SimdLevel::kAvx2)) {
    levels.push_back(SimdLevel::kAvx2);
  }
  return levels;
}

TEST(SimdLevelTest, NamesAreStable) {
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kSse4), "sse4");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
}

TEST(SimdLevelTest, EnvOverrideClampsAndReloads) {
  const SimdLevel max = MaxSupportedSimdLevel();

  ASSERT_EQ(setenv("SIMRANK_SIMD_LEVEL", "scalar", 1), 0);
  ReloadSimdLevelFromEnv();
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);

  ASSERT_EQ(setenv("SIMRANK_SIMD_LEVEL", "sse4", 1), 0);
  ReloadSimdLevelFromEnv();
  EXPECT_EQ(static_cast<uint8_t>(ActiveSimdLevel()),
            std::min(static_cast<uint8_t>(SimdLevel::kSse4),
                     static_cast<uint8_t>(max)));

  // A request wider than the CPU clamps down, and garbage means no clamp.
  ASSERT_EQ(setenv("SIMRANK_SIMD_LEVEL", "avx2", 1), 0);
  ReloadSimdLevelFromEnv();
  EXPECT_EQ(ActiveSimdLevel(), max);
  ASSERT_EQ(setenv("SIMRANK_SIMD_LEVEL", "avx512-please", 1), 0);
  ReloadSimdLevelFromEnv();
  EXPECT_EQ(ActiveSimdLevel(), max);

  ASSERT_EQ(unsetenv("SIMRANK_SIMD_LEVEL"), 0);
  ReloadSimdLevelFromEnv();
  EXPECT_EQ(ActiveSimdLevel(), max);
}

// ---------------------------------------------------------------------------
// DecodeDeltaRun

// Encodes `positions` the way walk_store.cc writes a compressed walk:
// zigzag varints of the delta against the previous position (seeded with
// `prev`). Records each value's encoded length so tests can assert exact
// cursor placement.
struct EncodedRun {
  std::vector<uint8_t> bytes;
  std::vector<size_t> code_length;
};

EncodedRun EncodeDeltaRun(uint32_t prev, const std::vector<uint32_t>& positions) {
  EncodedRun run;
  for (uint32_t position : positions) {
    const size_t before = run.bytes.size();
    AppendVarint64(&run.bytes,
                   ZigZagEncode64(static_cast<int64_t>(position) -
                                  static_cast<int64_t>(prev)));
    run.code_length.push_back(run.bytes.size() - before);
    prev = position;
  }
  return run;
}

// Mirrors the scalar tail loop of walk_store.cc's DecodeSegment: decodes
// until the run ends or the first malformed/out-of-range value. Returns
// the values decoded before the first error.
std::vector<uint32_t> ScalarDeltaReference(const uint8_t* cursor,
                                           const uint8_t* end, uint32_t prev,
                                           uint32_t n, size_t count) {
  std::vector<uint32_t> values;
  for (size_t i = 0; i < count; ++i) {
    uint64_t zigzag = 0;
    if (!DecodeVarint64(&cursor, end, &zigzag)) break;
    if (zigzag >= 2 * static_cast<uint64_t>(n)) break;
    const int64_t value = static_cast<int64_t>(prev) + ZigZagDecode64(zigzag);
    if (value < 0 || value >= static_cast<int64_t>(n)) break;
    values.push_back(static_cast<uint32_t>(value));
    prev = static_cast<uint32_t>(value);
  }
  return values;
}

// The partial-commit contract: the kernel decodes some prefix of what the
// scalar loop would, leaves the cursor exactly past those codes, and never
// commits at or beyond the first byte the scalar loop would reject.
void CheckDeltaRun(const EncodedRun& run, uint32_t prev, uint32_t n,
                   size_t count) {
  const uint8_t* const start = run.bytes.data();
  const uint8_t* const end = start + run.bytes.size();
  const std::vector<uint32_t> expected =
      ScalarDeltaReference(start, end, prev, n, count);
  for (SimdLevel level : TestableLevels()) {
    SCOPED_TRACE(SimdLevelName(level));
    std::vector<uint32_t> out(count + 8, 0xDEADBEEFu);
    const uint8_t* cursor = start;
    const size_t done =
        DecodeDeltaRun(level, &cursor, end, prev, n, out.data(), count);
    ASSERT_LE(done, expected.size());
    size_t consumed = 0;
    for (size_t i = 0; i < done; ++i) {
      EXPECT_EQ(out[i], expected[i]) << "value " << i;
      consumed += run.code_length[i];
    }
    EXPECT_EQ(cursor, start + consumed);
    if (level == SimdLevel::kScalar) EXPECT_EQ(done, 0u);
    // Finishing with the scalar reference from the committed point must
    // reproduce the rest — the kernel may stop early, never wrongly.
    const std::vector<uint32_t> tail = ScalarDeltaReference(
        cursor, end, done == 0 ? prev : out[done - 1], n, count - done);
    ASSERT_EQ(done + tail.size(), expected.size());
    for (size_t i = 0; i < tail.size(); ++i) {
      EXPECT_EQ(tail[i], expected[i + done]) << "tail value " << i;
    }
  }
}

TEST(DecodeDeltaRunTest, CleanSingleByteRunDecodesAndVectorTiersCommit) {
  const uint32_t n = 1000;
  const uint32_t prev = 500;
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> step(-20, 20);
  std::vector<uint32_t> positions;
  uint32_t value = prev;
  for (size_t i = 0; i < 100; ++i) {
    int delta = step(rng);
    if (static_cast<int64_t>(value) + delta < 0 ||
        static_cast<int64_t>(value) + delta >= n) {
      delta = -delta;
    }
    value = static_cast<uint32_t>(static_cast<int64_t>(value) + delta);
    positions.push_back(value);
  }
  const EncodedRun run = EncodeDeltaRun(prev, positions);
  ASSERT_EQ(run.bytes.size(), positions.size());  // all single-byte codes
  CheckDeltaRun(run, prev, n, positions.size());

  // On a clean all-single-byte run the vector tiers must make progress
  // (otherwise the fast path is dead code).
  for (SimdLevel level : TestableLevels()) {
    if (level == SimdLevel::kScalar) continue;
    std::vector<uint32_t> out(positions.size(), 0);
    const uint8_t* cursor = run.bytes.data();
    EXPECT_GE(DecodeDeltaRun(level, &cursor,
                             run.bytes.data() + run.bytes.size(), prev, n,
                             out.data(), positions.size()),
              8u)
        << SimdLevelName(level);
  }
}

TEST(DecodeDeltaRunTest, MultiByteCodeMidRunStopsBeforeItsChunk) {
  const uint32_t n = 100000;
  const uint32_t prev = 50000;
  std::vector<uint32_t> positions;
  uint32_t value = prev;
  for (size_t i = 0; i < 40; ++i) {
    // A large jump (multi-byte code) right inside the second AVX2 chunk.
    value = (i == 11) ? value + 4000 : value + 1;
    positions.push_back(value);
  }
  const EncodedRun run = EncodeDeltaRun(prev, positions);
  ASSERT_GT(run.code_length[11], 1u);
  CheckDeltaRun(run, prev, n, positions.size());
  for (SimdLevel level : TestableLevels()) {
    std::vector<uint32_t> out(positions.size(), 0);
    const uint8_t* cursor = run.bytes.data();
    EXPECT_LE(DecodeDeltaRun(level, &cursor,
                             run.bytes.data() + run.bytes.size(), prev, n,
                             out.data(), positions.size()),
              11u)
        << SimdLevelName(level);
  }
}

TEST(DecodeDeltaRunTest, OutOfRangeValueIsLeftForTheScalarLoop) {
  // Single-byte codes whose running sum dips below zero at index 9: the
  // kernels must stop before that chunk so the scalar loop reports the
  // error at the same byte offset.
  const uint32_t n = 64;
  const uint32_t prev = 3;
  std::vector<uint8_t> bytes;
  std::vector<size_t> lens;
  for (size_t i = 0; i < 24; ++i) {
    const size_t before = bytes.size();
    // Delta +1 ... then a -10 plunge from position near 0.
    AppendVarint64(&bytes, ZigZagEncode64(i == 9 ? -60 : 1));
    lens.push_back(bytes.size() - before);
  }
  EncodedRun run;
  run.bytes = bytes;
  run.code_length = lens;
  CheckDeltaRun(run, prev, n, 24);
}

TEST(DecodeDeltaRunTest, SmallNBailsToScalar) {
  const uint32_t n = 63;  // below the fast path's n >= 64 regime
  std::vector<uint32_t> positions;
  for (uint32_t i = 0; i < 32; ++i) positions.push_back(i);
  const EncodedRun run = EncodeDeltaRun(0, positions);
  for (SimdLevel level : TestableLevels()) {
    std::vector<uint32_t> out(positions.size(), 0);
    const uint8_t* cursor = run.bytes.data();
    EXPECT_EQ(DecodeDeltaRun(level, &cursor,
                             run.bytes.data() + run.bytes.size(), 0, n,
                             out.data(), positions.size()),
              0u)
        << SimdLevelName(level);
    EXPECT_EQ(cursor, run.bytes.data());
  }
}

TEST(DecodeDeltaRunTest, TruncatedRunNeverReadsPastEnd) {
  const uint32_t n = 1000;
  const uint32_t prev = 100;
  std::vector<uint32_t> positions;
  for (uint32_t i = 0; i < 20; ++i) positions.push_back(prev + 1 + i);
  EncodedRun run = EncodeDeltaRun(prev, positions);
  for (size_t cut = 0; cut <= run.bytes.size(); ++cut) {
    EncodedRun clipped;
    clipped.bytes.assign(run.bytes.begin(), run.bytes.begin() + cut);
    clipped.code_length = run.code_length;  // lengths of the full codes
    CheckDeltaRun(clipped, prev, n, positions.size());
  }
}

// ---------------------------------------------------------------------------
// CopyCheckedWords

void CheckCopyWords(const std::vector<uint8_t>& bytes, uint32_t n,
                    size_t count) {
  const uint8_t* const start = bytes.data();
  const uint8_t* const end = start + bytes.size();
  // Scalar reference: words until truncation or the first >= n.
  std::vector<uint32_t> expected;
  {
    const uint8_t* p = start;
    while (expected.size() < count && end - p >= 4) {
      uint32_t word = 0;
      std::memcpy(&word, p, 4);
      if (word >= n) break;
      expected.push_back(word);
      p += 4;
    }
  }
  for (SimdLevel level : TestableLevels()) {
    SCOPED_TRACE(SimdLevelName(level));
    std::vector<uint32_t> out(count + 8, 0xDEADBEEFu);
    const uint8_t* cursor = start;
    const size_t done =
        CopyCheckedWords(level, &cursor, end, n, out.data(), count);
    ASSERT_LE(done, expected.size());
    EXPECT_EQ(cursor, start + done * 4);
    for (size_t i = 0; i < done; ++i) EXPECT_EQ(out[i], expected[i]);
    if (level == SimdLevel::kScalar) EXPECT_EQ(done, 0u);
  }
}

TEST(CopyCheckedWordsTest, PrefixCommitAcrossAdversarialInputs) {
  std::mt19937 rng(11);
  const uint32_t n = 5000;
  for (int trial = 0; trial < 50; ++trial) {
    std::uniform_int_distribution<size_t> len_dist(0, 40);
    const size_t count = len_dist(rng);
    std::vector<uint8_t> bytes;
    for (size_t i = 0; i < count; ++i) {
      uint32_t word = std::uniform_int_distribution<uint32_t>(0, n - 1)(rng);
      // Sprinkle violations: out-of-range words and (below) truncation.
      if (std::uniform_int_distribution<int>(0, 9)(rng) == 0) word = n + i;
      bytes.resize(bytes.size() + 4);
      std::memcpy(bytes.data() + bytes.size() - 4, &word, 4);
    }
    if (std::uniform_int_distribution<int>(0, 3)(rng) == 0 &&
        !bytes.empty()) {
      bytes.resize(bytes.size() - 1 -
                   std::uniform_int_distribution<size_t>(0, 2)(rng));
    }
    CheckCopyWords(bytes, n, count);
  }
}

// ---------------------------------------------------------------------------
// EqualRangeU32

TEST(EqualRangeU32Test, MatchesStdEqualRange) {
  std::mt19937 rng(13);
  for (int trial = 0; trial < 60; ++trial) {
    const size_t count = std::uniform_int_distribution<size_t>(0, 200)(rng);
    std::vector<uint32_t> values(count);
    for (auto& v : values) {
      v = std::uniform_int_distribution<uint32_t>(0, 60)(rng);
    }
    std::sort(values.begin(), values.end());
    for (uint32_t key = 0; key <= 61; ++key) {
      const auto [lo, hi] =
          std::equal_range(values.begin(), values.end(), key);
      for (SimdLevel level : TestableLevels()) {
        const EqualRange range =
            EqualRangeU32(level, values.data(), count, key);
        EXPECT_EQ(range.begin,
                  static_cast<size_t>(lo - values.begin()))
            << SimdLevelName(level) << " key=" << key;
        EXPECT_EQ(range.end, static_cast<size_t>(hi - values.begin()))
            << SimdLevelName(level) << " key=" << key;
      }
    }
  }
}

TEST(EqualRangeU32Test, ExtremeKeysAndValues) {
  const std::vector<uint32_t> values = {0, 0, 1, 5, 5, 5, UINT32_MAX - 1,
                                        UINT32_MAX, UINT32_MAX};
  for (uint32_t key : {0u, 1u, 2u, 5u, UINT32_MAX - 1, UINT32_MAX}) {
    const auto [lo, hi] = std::equal_range(values.begin(), values.end(), key);
    for (SimdLevel level : TestableLevels()) {
      const EqualRange range =
          EqualRangeU32(level, values.data(), values.size(), key);
      EXPECT_EQ(range.begin, static_cast<size_t>(lo - values.begin()))
          << SimdLevelName(level) << " key=" << key;
      EXPECT_EQ(range.end, static_cast<size_t>(hi - values.begin()))
          << SimdLevelName(level) << " key=" << key;
    }
  }
}

// ---------------------------------------------------------------------------
// FindFirstInvalidVertex

size_t ScalarFirstInvalid(const std::vector<uint32_t>& vertices, uint32_t n) {
  if (vertices.empty()) return 0;
  if (vertices[0] >= n) return 0;
  for (size_t i = 1; i < vertices.size(); ++i) {
    if (vertices[i] >= n || vertices[i] <= vertices[i - 1]) return i;
  }
  return vertices.size();
}

TEST(FindFirstInvalidVertexTest, AgreesWithScalarOnEveryViolationSite) {
  const uint32_t n = 100;
  std::mt19937 rng(17);
  for (size_t count : {0u, 1u, 3u, 7u, 8u, 9u, 16u, 33u, 50u}) {
    // A valid strictly-ascending base array of ids < n.
    std::vector<uint32_t> base;
    for (uint32_t v = 1; v < n && base.size() < count; ++v) {
      if (std::uniform_int_distribution<int>(0, 1)(rng) == 0) {
        base.push_back(v);
      }
    }
    const size_t m = base.size();
    for (SimdLevel level : TestableLevels()) {
      EXPECT_EQ(FindFirstInvalidVertex(level, base.data(), m, n), m)
          << SimdLevelName(level);
    }
    // Inject each violation kind at each index.
    for (size_t site = 0; site < m; ++site) {
      for (int kind = 0; kind < 3; ++kind) {
        std::vector<uint32_t> corrupted = base;
        if (kind == 0) {
          corrupted[site] = n + 7;  // out of range
        } else if (kind == 1 && site > 0) {
          corrupted[site] = corrupted[site - 1];  // duplicate
        } else if (kind == 2 && site > 0) {
          corrupted[site] = corrupted[site - 1] - 1;  // descending
        } else {
          continue;
        }
        const size_t expected = ScalarFirstInvalid(corrupted, n);
        for (SimdLevel level : TestableLevels()) {
          EXPECT_EQ(FindFirstInvalidVertex(level, corrupted.data(), m, n),
                    expected)
              << SimdLevelName(level) << " site=" << site
              << " kind=" << kind;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// AccumulateBucket

TEST(AccumulateBucketTest, BitwiseIdenticalToScalarOnValidBuckets) {
  std::mt19937 rng(23);
  const uint32_t n = 300;
  for (int trial = 0; trial < 40; ++trial) {
    // A valid bucket: strictly-ascending distinct ids < n.
    std::vector<uint32_t> vertices;
    for (uint32_t v = 0; v < n; ++v) {
      if (std::uniform_int_distribution<int>(0, 3)(rng) == 0) {
        vertices.push_back(v);
      }
    }
    const uint32_t round = 42;
    const double weight = 0.015625;
    // Some vertices already met this round, some stale.
    std::vector<uint32_t> met_base(n);
    std::vector<double> result_base(n);
    for (uint32_t v = 0; v < n; ++v) {
      met_base[v] =
          std::uniform_int_distribution<int>(0, 2)(rng) == 0 ? round : 7;
      result_base[v] =
          std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    }
    std::vector<uint32_t> met_expected = met_base;
    std::vector<double> result_expected = result_base;
    AccumulateBucket(SimdLevel::kScalar, vertices.data(), vertices.size(),
                     round, weight, met_expected.data(),
                     result_expected.data());
    for (SimdLevel level : TestableLevels()) {
      std::vector<uint32_t> met = met_base;
      std::vector<double> result = result_base;
      AccumulateBucket(level, vertices.data(), vertices.size(), round,
                       weight, met.data(), result.data());
      EXPECT_EQ(met, met_expected) << SimdLevelName(level);
      // Same adds in the same order: bitwise-equal doubles, not just near.
      for (uint32_t v = 0; v < n; ++v) {
        ASSERT_EQ(result[v], result_expected[v])
            << SimdLevelName(level) << " v=" << v;
      }
    }
  }
}

}  // namespace
}  // namespace simrank
