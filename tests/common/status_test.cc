#include "simrank/common/status.h"

#include <gtest/gtest.h>
#include <string>

namespace simrank {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status status = Status::InvalidArgument("bad n");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad n");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad n");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kIoError,
        StatusCode::kParseError, StatusCode::kUnimplemented,
        StatusCode::kInternal}) {
    EXPECT_NE(std::string(StatusCodeToString(code)), "Unknown");
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ValueOrPrefersValue) {
  Result<int> result(7);
  EXPECT_EQ(result.value_or(0), 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

}  // namespace
}  // namespace simrank
