#include "simrank/common/varint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

namespace simrank {
namespace {

TEST(VarintTest, RoundTrips32BitBoundaryValues) {
  const uint32_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             2097151,
                             2097152,
                             268435455,
                             268435456,
                             std::numeric_limits<uint32_t>::max() - 1,
                             std::numeric_limits<uint32_t>::max()};
  for (uint32_t value : values) {
    std::vector<uint8_t> buffer;
    AppendVarint32(&buffer, value);
    ASSERT_LE(buffer.size(), kMaxVarint32Bytes) << value;
    const uint8_t* cursor = buffer.data();
    uint32_t decoded = 0;
    ASSERT_TRUE(DecodeVarint32(&cursor, buffer.data() + buffer.size(),
                               &decoded))
        << value;
    EXPECT_EQ(decoded, value);
    EXPECT_EQ(cursor, buffer.data() + buffer.size()) << value;
  }
}

TEST(VarintTest, RoundTrips64BitBoundaryValues) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             (1ULL << 35) - 1,
                             1ULL << 35,
                             (1ULL << 56) - 1,
                             1ULL << 56,
                             (1ULL << 63),
                             std::numeric_limits<uint64_t>::max()};
  for (uint64_t value : values) {
    std::vector<uint8_t> buffer;
    AppendVarint64(&buffer, value);
    ASSERT_LE(buffer.size(), kMaxVarint64Bytes) << value;
    const uint8_t* cursor = buffer.data();
    uint64_t decoded = 0;
    ASSERT_TRUE(DecodeVarint64(&cursor, buffer.data() + buffer.size(),
                               &decoded))
        << value;
    EXPECT_EQ(decoded, value);
    EXPECT_EQ(cursor, buffer.data() + buffer.size()) << value;
  }
}

TEST(VarintTest, EncodingLengthGrowsEverySevenBits) {
  for (uint32_t bytes = 1; bytes <= 4; ++bytes) {
    // Largest value of `bytes` bytes and smallest of `bytes + 1`.
    const uint32_t largest = (1u << (7 * bytes)) - 1;
    std::vector<uint8_t> buffer;
    AppendVarint32(&buffer, largest);
    EXPECT_EQ(buffer.size(), bytes);
    buffer.clear();
    AppendVarint32(&buffer, largest + 1);
    EXPECT_EQ(buffer.size(), bytes + 1);
  }
}

TEST(VarintTest, DecodeRejectsTruncatedBuffers) {
  std::vector<uint8_t> buffer;
  AppendVarint32(&buffer, 300000);  // multi-byte encoding
  ASSERT_GT(buffer.size(), 1u);
  for (size_t keep = 0; keep + 1 < buffer.size(); ++keep) {
    const uint8_t* cursor = buffer.data();
    uint32_t decoded = 0;
    EXPECT_FALSE(DecodeVarint32(&cursor, buffer.data() + keep, &decoded))
        << "kept " << keep << " bytes";
  }
  // Empty range outright.
  const uint8_t* cursor = buffer.data();
  uint64_t decoded64 = 0;
  EXPECT_FALSE(DecodeVarint64(&cursor, buffer.data(), &decoded64));
}

TEST(VarintTest, DecodeRejectsOverlongAndOverflowingEncodings) {
  // Six continuation bytes: runs past the 5-byte 32-bit maximum.
  const std::vector<uint8_t> overlong32 = {0x80, 0x80, 0x80, 0x80,
                                           0x80, 0x01};
  const uint8_t* cursor = overlong32.data();
  uint32_t decoded32 = 0;
  EXPECT_FALSE(DecodeVarint32(
      &cursor, overlong32.data() + overlong32.size(), &decoded32));

  // Five bytes whose final byte carries bits above 2^32.
  const std::vector<uint8_t> overflow32 = {0xFF, 0xFF, 0xFF, 0xFF, 0x1F};
  cursor = overflow32.data();
  EXPECT_FALSE(DecodeVarint32(
      &cursor, overflow32.data() + overflow32.size(), &decoded32));

  // Eleven-byte 64-bit encoding with the continuation bit never dropped.
  const std::vector<uint8_t> overlong64(11, 0x80);
  cursor = overlong64.data();
  uint64_t decoded64 = 0;
  EXPECT_FALSE(DecodeVarint64(
      &cursor, overlong64.data() + overlong64.size(), &decoded64));

  // Tenth byte may only carry the single remaining bit.
  std::vector<uint8_t> overflow64(9, 0xFF);
  overflow64.push_back(0x02);
  cursor = overflow64.data();
  EXPECT_FALSE(DecodeVarint64(
      &cursor, overflow64.data() + overflow64.size(), &decoded64));
}

TEST(VarintTest, ZigZagMapsSmallMagnitudesToSmallCodes) {
  EXPECT_EQ(ZigZagEncode32(0), 0u);
  EXPECT_EQ(ZigZagEncode32(-1), 1u);
  EXPECT_EQ(ZigZagEncode32(1), 2u);
  EXPECT_EQ(ZigZagEncode32(-2), 3u);
  EXPECT_EQ(ZigZagEncode64(0), 0u);
  EXPECT_EQ(ZigZagEncode64(-1), 1u);
  EXPECT_EQ(ZigZagEncode64(1), 2u);
  const int64_t extremes64[] = {std::numeric_limits<int64_t>::min(),
                                std::numeric_limits<int64_t>::min() + 1,
                                -1,
                                0,
                                1,
                                std::numeric_limits<int64_t>::max()};
  for (int64_t value : extremes64) {
    EXPECT_EQ(ZigZagDecode64(ZigZagEncode64(value)), value);
  }
  const int32_t extremes32[] = {std::numeric_limits<int32_t>::min(), -1, 0,
                                1, std::numeric_limits<int32_t>::max()};
  for (int32_t value : extremes32) {
    EXPECT_EQ(ZigZagDecode32(ZigZagEncode32(value)), value);
  }
}

TEST(VarintTest, SequentialDecodeConsumesExactly) {
  // The segment decoder reads many varints back to back; the cursor must
  // land exactly on each boundary.
  std::vector<uint8_t> buffer;
  const std::vector<uint64_t> values = {5, 0, 1u << 20, 127, 128,
                                        ZigZagEncode64(-42)};
  for (uint64_t value : values) AppendVarint64(&buffer, value);
  const uint8_t* cursor = buffer.data();
  const uint8_t* end = buffer.data() + buffer.size();
  for (uint64_t expected : values) {
    uint64_t decoded = 0;
    ASSERT_TRUE(DecodeVarint64(&cursor, end, &decoded));
    EXPECT_EQ(decoded, expected);
  }
  EXPECT_EQ(cursor, end);
}

}  // namespace
}  // namespace simrank
