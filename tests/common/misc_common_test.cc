#include <gtest/gtest.h>

#include <thread>

#include "simrank/common/csv_writer.h"
#include "simrank/common/logging.h"
#include "simrank/common/memory_tracker.h"
#include "simrank/common/op_counter.h"
#include "simrank/common/table_printer.h"
#include "simrank/common/timer.h"

namespace simrank {
namespace {

TEST(WallTimerTest, AccumulatesAcrossStartStop) {
  WallTimer timer;
  EXPECT_EQ(timer.ElapsedNanos(), 0);
  timer.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  timer.Stop();
  const int64_t first = timer.ElapsedNanos();
  EXPECT_GT(first, 1000000);  // > 1 ms
  timer.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  timer.Stop();
  EXPECT_GT(timer.ElapsedNanos(), first);
  timer.Reset();
  EXPECT_EQ(timer.ElapsedNanos(), 0);
}

TEST(ScopedTimerTest, AddsIntoSink) {
  double sink = 0.0;
  {
    ScopedTimer timer(&sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(sink, 0.0005);
}

TEST(FormatDurationTest, UnitsSelection) {
  EXPECT_EQ(FormatDuration(2.5), "2.50 s");
  EXPECT_EQ(FormatDuration(0.0831), "83.1 ms");
  EXPECT_EQ(FormatDuration(12.5e-6), "12.5 us");
}

TEST(OpCounterTest, AccumulatesByCategory) {
  OpCounter ops;
  CountPartialAdds(&ops, 10);
  CountOuterAdds(&ops, 5);
  CountMultiplies(&ops, 3);
  CountSetOps(&ops, 2);
  EXPECT_EQ(ops.counts().partial_sum_adds, 10u);
  EXPECT_EQ(ops.counts().outer_sum_adds, 5u);
  EXPECT_EQ(ops.counts().total_adds(), 15u);
  EXPECT_EQ(ops.counts().total(), 20u);
  ops.Reset();
  EXPECT_EQ(ops.counts().total(), 0u);
}

TEST(OpCounterTest, NullSafeHelpers) {
  CountPartialAdds(nullptr, 10);  // must not crash
  CountOuterAdds(nullptr, 10);
  CountMultiplies(nullptr, 10);
  CountSetOps(nullptr, 10);
}

TEST(OpCountsTest, PlusEquals) {
  OpCounts a;
  a.partial_sum_adds = 1;
  OpCounts b;
  b.partial_sum_adds = 2;
  b.set_ops = 7;
  a += b;
  EXPECT_EQ(a.partial_sum_adds, 3u);
  EXPECT_EQ(a.set_ops, 7u);
}

TEST(MemoryTrackerTest, TracksPeak) {
  MemoryTracker mem;
  mem.Allocate(100);
  mem.Allocate(50);
  EXPECT_EQ(mem.current_bytes(), 150u);
  EXPECT_EQ(mem.peak_bytes(), 150u);
  mem.Release(120);
  mem.Allocate(10);
  EXPECT_EQ(mem.current_bytes(), 40u);
  EXPECT_EQ(mem.peak_bytes(), 150u);
}

TEST(MemoryTrackerTest, ScopedTrackedBytes) {
  MemoryTracker mem;
  {
    ScopedTrackedBytes scope(&mem, 64);
    EXPECT_EQ(mem.current_bytes(), 64u);
  }
  EXPECT_EQ(mem.current_bytes(), 0u);
  EXPECT_EQ(mem.peak_bytes(), 64u);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "22"});
  std::string out = table.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Right-aligned second column: "22" ends each data line at same offset.
  EXPECT_NE(out.find("     1"), std::string::npos);
}

TEST(TablePrinterTest, SeparatorAndRowCount) {
  TablePrinter table({"a"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  EXPECT_EQ(table.num_rows(), 2u);
  // Header separator + explicit separator.
  std::string out = table.Render();
  size_t dashes = 0;
  for (size_t pos = out.find("-"); pos != std::string::npos;
       pos = out.find("-", pos + 1)) {
    ++dashes;
  }
  EXPECT_GE(dashes, 2u);
}

TEST(CsvWriterTest, EscapesSpecialCharacters) {
  CsvWriter csv({"k", "v"});
  csv.AddRow({"plain", "with,comma"});
  csv.AddRow({"quote\"inside", "line\nbreak"});
  std::string out = csv.Render();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(CsvWriterTest, RoundTripsToFile) {
  CsvWriter csv({"x"});
  csv.AddRow({"1"});
  const std::string path = ::testing::TempDir() + "/oipsim_csv_test.csv";
  ASSERT_TRUE(csv.WriteToFile(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  size_t read = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, read), "x\n1\n");
}

TEST(CsvWriterTest, FailsOnUnwritablePath) {
  CsvWriter csv({"x"});
  EXPECT_FALSE(csv.WriteToFile("/nonexistent-dir/file.csv").ok());
}

TEST(LoggingTest, LevelGateWorks) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  OIPSIM_LOG(kError) << "suppressed";
  SetLogLevel(LogLevel::kDebug);
  OIPSIM_LOG(kDebug) << "emitted to stderr";
  SetLogLevel(original);
  EXPECT_EQ(GetLogLevel(), original);
}

}  // namespace
}  // namespace simrank
