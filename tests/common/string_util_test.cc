#include "simrank/common/string_util.h"

#include <gtest/gtest.h>

namespace simrank {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrSplitTest, SplitsAndKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("no-delim", ','),
            (std::vector<std::string>{"no-delim"}));
}

TEST(StrTrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(StrTrim("  x  "), "x");
  EXPECT_EQ(StrTrim("\t a b \n"), "a b");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("he", "hello"));
}

TEST(ParseUint64Test, ValidInputs) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
}

TEST(ParseUint64Test, RejectsMalformed) {
  uint64_t v = 0;
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
  EXPECT_FALSE(ParseUint64("12x", &v));
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // overflow
  EXPECT_FALSE(ParseUint64("1.5", &v));
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("2.5e-3", &v));
  EXPECT_DOUBLE_EQ(v, 2.5e-3);
  EXPECT_TRUE(ParseDouble("-1", &v));
  EXPECT_DOUBLE_EQ(v, -1.0);
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("1.5abc", &v));
}

TEST(FormatBytesTest, PicksUnits) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.0 MB");
}

TEST(FormatCountTest, ThousandsSeparators) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
}

TEST(FormatDoubleTest, TrimsTrailingZeros) {
  EXPECT_EQ(FormatDouble(0.5, 3), "0.5");
  EXPECT_EQ(FormatDouble(2.0, 3), "2");
  // printf rounds half-to-even: 0.125 -> "0.12".
  EXPECT_EQ(FormatDouble(0.125, 2), "0.12");
  EXPECT_EQ(FormatDouble(0.375, 2), "0.38");
}

}  // namespace
}  // namespace simrank
