#include "simrank/common/build_info.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "simrank/common/memory_tracker.h"

namespace simrank {
namespace {

TEST(BuildInfoTest, AllFieldsNonNullAndNonEmpty) {
  const BuildInfo& info = GetBuildInfo();
  ASSERT_NE(info.git_describe, nullptr);
  ASSERT_NE(info.compiler, nullptr);
  ASSERT_NE(info.build_type, nullptr);
  ASSERT_NE(info.cxx_standard, nullptr);
  EXPECT_GT(std::strlen(info.git_describe), 0u);
  EXPECT_GT(std::strlen(info.compiler), 0u);
  EXPECT_GT(std::strlen(info.cxx_standard), 0u);
  EXPECT_TRUE(std::strcmp(info.build_type, "release") == 0 ||
              std::strcmp(info.build_type, "debug") == 0)
      << info.build_type;
}

TEST(BuildInfoTest, BuildInfoIsStable) {
  // Same pointers every call: the struct is static identity, not state.
  const BuildInfo& a = GetBuildInfo();
  const BuildInfo& b = GetBuildInfo();
  EXPECT_EQ(&a, &b);
  EXPECT_STREQ(a.git_describe, b.git_describe);
}

TEST(BuildInfoTest, UptimeIsPositiveAndMonotonic) {
  const double first = UptimeSeconds();
  EXPECT_GT(first, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double second = UptimeSeconds();
  EXPECT_GE(second, first);
  EXPECT_GT(second - first, 0.005);
}

TEST(BuildInfoTest, ProcessStartPrecedesNow) {
  const uint64_t start = ProcessStartUnixMicros();
  EXPECT_GT(start, 0u);
  const uint64_t now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  EXPECT_LE(start, now);
}

#if defined(__linux__)
TEST(ProcessMemoryStatsTest, ReportsPlausibleLinuxValues) {
  ProcessMemoryStats stats;
  ASSERT_TRUE(ReadProcessMemoryStats(&stats));
  // Any live process is at least a page resident and maps more than it
  // has resident.
  EXPECT_GT(stats.resident_bytes, 0u);
  EXPECT_GE(stats.virtual_bytes, stats.resident_bytes);
  EXPECT_GE(stats.peak_resident_bytes, stats.resident_bytes);
  EXPECT_GT(stats.data_bytes, 0u);
}

TEST(ProcessMemoryStatsTest, ObservesLargeAllocation) {
  ProcessMemoryStats before;
  ASSERT_TRUE(ReadProcessMemoryStats(&before));
  constexpr size_t kBytes = 64 << 20;
  std::vector<char> block(kBytes, 1);  // touched, so it must be resident
  ProcessMemoryStats after;
  ASSERT_TRUE(ReadProcessMemoryStats(&after));
  EXPECT_GE(after.resident_bytes + (8 << 20),
            before.resident_bytes + kBytes);
  EXPECT_GE(after.peak_resident_bytes, before.peak_resident_bytes);
  EXPECT_GT(block[kBytes - 1], 0);
}
#endif  // __linux__

}  // namespace
}  // namespace simrank
