#include "simrank/index/walk_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "simrank/common/stream_hash.h"
#include "simrank/index/segment_reader.h"
#include "simrank/index/walk_index.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<int64_t>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

WalkIndex BuildSmallIndex(const DiGraph& graph) {
  WalkIndexOptions options;
  options.num_fingerprints = 24;
  options.walk_length = 7;
  options.damping = 0.7;
  options.seed = 5;
  auto index = WalkIndex::Build(graph, options);
  OIPSIM_CHECK(index.ok());
  return std::move(index).value();
}

/// Saves `index`, then opens it through both backends and checks every
/// estimator agrees bitwise with the freshly built index.
void CheckRoundTrip(const DiGraph& graph, const WalkIndex& index,
                    bool compress, const std::string& tag) {
  const std::string path = TempPath("store_roundtrip_" + tag + ".widx");
  WalkIndex::SaveOptions save;
  save.compress = compress;
  ASSERT_TRUE(index.Save(path, save).ok());

  auto ram = WalkIndex::Load(path);
  ASSERT_TRUE(ram.ok()) << ram.status().ToString();
  WalkIndex::LoadOptions mmap_load;
  mmap_load.use_mmap = true;
  auto mapped = WalkIndex::Load(path, mmap_load);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  EXPECT_TRUE(ram->has_resident_walks());
  EXPECT_FALSE(mapped->has_resident_walks());
  EXPECT_EQ(std::string(ram->store().backend_name()), "in-memory");
  EXPECT_EQ(std::string(mapped->store().backend_name()), "mmap");

  for (VertexId a = 0; a < graph.n(); ++a) {
    for (VertexId b = 0; b < graph.n(); ++b) {
      const double expected = index.EstimatePair(a, b);
      EXPECT_DOUBLE_EQ(ram->EstimatePair(a, b), expected)
          << tag << " pair (" << a << "," << b << ")";
      EXPECT_DOUBLE_EQ(mapped->EstimatePair(a, b), expected)
          << tag << " pair (" << a << "," << b << ")";
    }
  }
  for (VertexId v = 0; v < graph.n(); ++v) {
    const auto scan = index.EstimateSingleSourceScan(v);
    const auto built_inverted = index.EstimateSingleSource(v);
    const auto ram_inverted = ram->EstimateSingleSource(v);
    const auto mapped_inverted = mapped->EstimateSingleSource(v);
    ASSERT_EQ(scan.size(), graph.n());
    // Bitwise, not approximate: the inverted path must replay the exact
    // accumulation order of the scan.
    EXPECT_EQ(0, std::memcmp(scan.data(), built_inverted.data(),
                             scan.size() * sizeof(double)))
        << tag << " built inverted row " << v;
    EXPECT_EQ(0, std::memcmp(scan.data(), ram_inverted.data(),
                             scan.size() * sizeof(double)))
        << tag << " ram inverted row " << v;
    EXPECT_EQ(0, std::memcmp(scan.data(), mapped_inverted.data(),
                             scan.size() * sizeof(double)))
        << tag << " mmap inverted row " << v;
  }
}

TEST(WalkStoreTest, RoundTripsUncompressedAcrossBackends) {
  DiGraph graph = testing::RandomGraph(50, 200, 11);
  WalkIndex index = BuildSmallIndex(graph);
  CheckRoundTrip(graph, index, /*compress=*/false, "raw");
}

TEST(WalkStoreTest, RoundTripsCompressedAcrossBackends) {
  DiGraph graph = testing::RandomGraph(50, 200, 11);
  WalkIndex index = BuildSmallIndex(graph);
  CheckRoundTrip(graph, index, /*compress=*/true, "compressed");
}

TEST(WalkStoreTest, RoundTripsGraphsWithDeadWalks) {
  // A path-ish sparse graph leaves many vertices without in-neighbours, so
  // walks die early — the segment lengths and inverted slots shrink.
  DiGraph graph = testing::RandomGraph(40, 45, 3);
  WalkIndex index = BuildSmallIndex(graph);
  CheckRoundTrip(graph, index, /*compress=*/true, "dead_walks");
}

TEST(WalkStoreTest, ResaveThroughAnyBackendIsByteIdentical) {
  DiGraph graph = testing::OverlappyGraph(30, 4, 9);
  WalkIndex index = BuildSmallIndex(graph);
  for (bool compress : {false, true}) {
    WalkIndex::SaveOptions save;
    save.compress = compress;
    const std::string tag = compress ? "c" : "r";
    const std::string original = TempPath("store_resave_" + tag + ".widx");
    ASSERT_TRUE(index.Save(original, save).ok());

    auto ram = WalkIndex::Load(original);
    ASSERT_TRUE(ram.ok());
    WalkIndex::LoadOptions mmap_load;
    mmap_load.use_mmap = true;
    auto mapped = WalkIndex::Load(original, mmap_load);
    ASSERT_TRUE(mapped.ok());

    const std::string via_ram = TempPath("store_resave_ram_" + tag);
    const std::string via_mmap = TempPath("store_resave_mmap_" + tag);
    ASSERT_TRUE(ram->Save(via_ram, save).ok());
    ASSERT_TRUE(mapped->Save(via_mmap, save).ok());
    const std::string expected = ReadFileBytes(original);
    EXPECT_EQ(ReadFileBytes(via_ram), expected) << tag;
    EXPECT_EQ(ReadFileBytes(via_mmap), expected) << tag;
  }
}

TEST(WalkStoreTest, BucketsMatchTheFlatTable) {
  DiGraph graph = testing::RandomGraph(35, 120, 21);
  WalkIndex index = BuildSmallIndex(graph);
  const WalkStore& store = index.store();
  const uint32_t* flat = store.FlatWalks();
  ASSERT_NE(flat, nullptr);
  const uint32_t n = graph.n();
  const uint32_t L = index.options().walk_length;
  for (uint32_t r = 0; r < index.options().num_fingerprints; ++r) {
    for (uint32_t t = 1; t <= L; ++t) {
      const size_t base = (static_cast<size_t>(r) * (L + 1) + t) * n;
      // The slot must list exactly the alive walks, sorted by (position,
      // vertex).
      const WalkStore::SlotView slot = store.Slot(r, t);
      size_t alive = 0;
      for (uint32_t v = 0; v < n; ++v) {
        alive += flat[base + v] != WalkStore::kDeadWalk;
      }
      ASSERT_EQ(slot.count, alive);
      for (size_t i = 0; i + 1 < slot.count; ++i) {
        ASSERT_LE(slot.positions[i], slot.positions[i + 1]);
        if (slot.positions[i] == slot.positions[i + 1]) {
          ASSERT_LT(slot.vertices[i], slot.vertices[i + 1]);
        }
      }
      for (size_t i = 0; i < slot.count; ++i) {
        ASSERT_EQ(flat[base + slot.vertices[i]], slot.positions[i]);
      }
      // Every bucket returns exactly the vertices parked at the position.
      for (uint32_t p = 0; p < n; ++p) {
        auto bucket = store.Bucket(r, t, p);
        std::vector<uint32_t> expected;
        for (uint32_t v = 0; v < n; ++v) {
          if (flat[base + v] == p) expected.push_back(v);
        }
        ASSERT_EQ(bucket.size(), expected.size())
            << "slot (" << r << "," << t << ") position " << p;
        for (size_t i = 0; i < expected.size(); ++i) {
          ASSERT_EQ(bucket[i], expected[i]);
        }
      }
    }
  }
}

TEST(WalkStoreTest, DecodeVertexAgreesAcrossBackends) {
  DiGraph graph = testing::RandomGraph(30, 100, 7);
  WalkIndex index = BuildSmallIndex(graph);
  const std::string path = TempPath("store_decode.widx");
  WalkIndex::SaveOptions save;
  save.compress = true;
  ASSERT_TRUE(index.Save(path, save).ok());
  auto mapped_store = MmapWalkStore::Open(path);
  ASSERT_TRUE(mapped_store.ok());
  const WalkStore& built = index.store();
  std::vector<uint32_t> expected(built.WalkWords());
  std::vector<uint32_t> actual(built.WalkWords());
  for (VertexId v = 0; v < graph.n(); ++v) {
    ASSERT_TRUE(built.DecodeVertex(v, expected.data()).ok());
    ASSERT_TRUE((*mapped_store)->DecodeVertex(v, actual.data()).ok());
    EXPECT_EQ(0, std::memcmp(expected.data(), actual.data(),
                             expected.size() * sizeof(uint32_t)))
        << "vertex " << v;
  }
}

TEST(WalkStoreTest, MmapOpenKeepsOnlyHeaderAndDirectoryResident) {
  DiGraph graph = testing::RandomGraph(80, 400, 2);
  WalkIndex index = BuildSmallIndex(graph);
  const std::string path = TempPath("store_resident.widx");
  ASSERT_TRUE(index.Save(path).ok());
  const uint64_t file_bytes = ReadFileBytes(path).size();

  WalkIndex::LoadOptions mmap_load;
  mmap_load.use_mmap = true;
  auto mapped = WalkIndex::Load(path, mmap_load);
  ASSERT_TRUE(mapped.ok());
  // The mmap backend pins the header page plus the directory; the payload
  // must not count toward its resident footprint.
  EXPECT_LT(mapped->SizeBytes(), file_bytes / 2);
  // The in-memory backend holds at least the decoded flat table.
  auto ram = WalkIndex::Load(path);
  ASSERT_TRUE(ram.ok());
  EXPECT_GE(ram->SizeBytes(),
            static_cast<uint64_t>(graph.n()) *
                index.options().num_fingerprints *
                (index.options().walk_length + 1) * sizeof(uint32_t));
}

// ---------------------------------------------------------------- errors

TEST(WalkStoreTest, LoadNamesFoundAndSupportedVersions) {
  // A v1 index: same magic, version word 1 — the pre-v2 flat format.
  std::string v1_bytes(512, '\0');
  const uint32_t magic = 0x58444957;
  const uint32_t version = 1;
  std::memcpy(v1_bytes.data(), &magic, sizeof(magic));
  std::memcpy(v1_bytes.data() + 4, &version, sizeof(version));
  const std::string v1_path = TempPath("store_v1.widx");
  WriteFileBytes(v1_path, v1_bytes);
  for (bool use_mmap : {false, true}) {
    WalkIndex::LoadOptions load;
    load.use_mmap = use_mmap;
    auto loaded = WalkIndex::Load(v1_path, load);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
    EXPECT_NE(loaded.status().message().find("version 1"),
              std::string::npos)
        << loaded.status().ToString();
    EXPECT_NE(loaded.status().message().find("version 2"),
              std::string::npos)
        << loaded.status().ToString();
  }

  // An unknown future version gets the same found-vs-supported shape.
  const uint32_t version99 = 99;
  std::memcpy(v1_bytes.data() + 4, &version99, sizeof(version99));
  const std::string v99_path = TempPath("store_v99.widx");
  WriteFileBytes(v99_path, v1_bytes);
  auto future = WalkIndex::Load(v99_path);
  ASSERT_FALSE(future.ok());
  EXPECT_NE(future.status().message().find("version 99"),
            std::string::npos)
      << future.status().ToString();
}

TEST(WalkStoreTest, LoadRejectsNonIndexFiles) {
  const std::string garbage_path = TempPath("store_garbage.widx");
  WriteFileBytes(garbage_path, "definitely not an index");
  for (bool use_mmap : {false, true}) {
    WalkIndex::LoadOptions load;
    load.use_mmap = use_mmap;
    auto loaded = WalkIndex::Load(garbage_path, load);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
    EXPECT_NE(loaded.status().message().find("not a walk index"),
              std::string::npos)
        << loaded.status().ToString();
  }
  EXPECT_FALSE(WalkIndex::Load("/no/such/index.widx").ok());
}

TEST(WalkStoreTest, LoadReportsTruncationOffsets) {
  DiGraph graph = testing::PaperExampleGraph();
  WalkIndex index = BuildSmallIndex(graph);
  const std::string path = TempPath("store_truncate.widx");
  ASSERT_TRUE(index.Save(path).ok());
  const std::string bytes = ReadFileBytes(path);

  // Cut inside the payload: the header survives, so the error must name
  // the declared size and where the data stops.
  const std::string cut_payload = TempPath("store_truncate_payload.widx");
  WriteFileBytes(cut_payload, bytes.substr(0, bytes.size() - 100));
  for (bool use_mmap : {false, true}) {
    WalkIndex::LoadOptions load;
    load.use_mmap = use_mmap;
    auto loaded = WalkIndex::Load(cut_payload, load);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("truncated"),
              std::string::npos)
        << loaded.status().ToString();
    EXPECT_NE(loaded.status().message().find("data missing from offset"),
              std::string::npos)
        << loaded.status().ToString();
  }

  // Cut inside the header itself.
  const std::string cut_header = TempPath("store_truncate_header.widx");
  WriteFileBytes(cut_header, bytes.substr(0, 64));
  auto loaded = WalkIndex::Load(cut_header);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("truncated walk index header"),
            std::string::npos)
      << loaded.status().ToString();

  // Trailing garbage is corruption too, not silently ignored.
  const std::string padded = TempPath("store_trailing.widx");
  WriteFileBytes(padded, bytes + "extra");
  auto padded_loaded = WalkIndex::Load(padded);
  ASSERT_FALSE(padded_loaded.ok());
  EXPECT_NE(padded_loaded.status().message().find("trailing"),
            std::string::npos)
      << padded_loaded.status().ToString();
}

TEST(WalkStoreTest, CorruptHeaderAndDirectoryFailBothBackends) {
  DiGraph graph = testing::PaperExampleGraph();
  WalkIndex index = BuildSmallIndex(graph);
  const std::string path = TempPath("store_corrupt_src.widx");
  ASSERT_TRUE(index.Save(path).ok());
  const std::string bytes = ReadFileBytes(path);

  // Flip a bit in the walk-length header field.
  std::string bad_header = bytes;
  bad_header[16] ^= 0x01;
  const std::string bad_header_path = TempPath("store_bad_header.widx");
  WriteFileBytes(bad_header_path, bad_header);
  // Flip a bit inside the segment directory (page 1) — and one inside the
  // header page's padding (bytes 104..4095), which the directory
  // checksum's extent must cover too.
  std::string bad_directory = bytes;
  bad_directory[4096 + 9] ^= 0x10;
  const std::string bad_directory_path = TempPath("store_bad_dir.widx");
  WriteFileBytes(bad_directory_path, bad_directory);
  std::string bad_padding = bytes;
  bad_padding[200] ^= 0x04;
  const std::string bad_padding_path = TempPath("store_bad_pad.widx");
  WriteFileBytes(bad_padding_path, bad_padding);

  for (bool use_mmap : {false, true}) {
    WalkIndex::LoadOptions load;
    load.use_mmap = use_mmap;
    auto header_loaded = WalkIndex::Load(bad_header_path, load);
    ASSERT_FALSE(header_loaded.ok());
    EXPECT_NE(header_loaded.status().message().find(
                  "header checksum mismatch"),
              std::string::npos)
        << header_loaded.status().ToString();
    auto directory_loaded = WalkIndex::Load(bad_directory_path, load);
    ASSERT_FALSE(directory_loaded.ok());
    EXPECT_NE(directory_loaded.status().message().find(
                  "directory checksum mismatch"),
              std::string::npos)
        << directory_loaded.status().ToString();
    auto padding_loaded = WalkIndex::Load(bad_padding_path, load);
    ASSERT_FALSE(padding_loaded.ok());
    EXPECT_NE(padding_loaded.status().message().find(
                  "directory checksum mismatch"),
              std::string::npos)
        << padding_loaded.status().ToString();
  }
}

TEST(WalkStoreTest, CorruptPayloadIsCaughtAtOpenOrOnVerify) {
  DiGraph graph = testing::PaperExampleGraph();
  WalkIndex index = BuildSmallIndex(graph);
  const std::string path = TempPath("store_corrupt_payload_src.widx");
  ASSERT_TRUE(index.Save(path).ok());
  std::string bytes = ReadFileBytes(path);
  // Flip a byte near the end of the file — inside the inverted region.
  bytes[bytes.size() - 3] ^= 0x20;
  const std::string corrupt_path = TempPath("store_corrupt_payload.widx");
  WriteFileBytes(corrupt_path, bytes);

  // The fully-verifying backend refuses at open.
  auto ram = WalkIndex::Load(corrupt_path);
  ASSERT_FALSE(ram.ok());
  EXPECT_NE(ram.status().message().find("payload checksum mismatch"),
            std::string::npos)
      << ram.status().ToString();

  // The mmap backend deliberately does not read the payload at open; the
  // corruption surfaces on the explicit full sweep.
  WalkIndex::LoadOptions mmap_load;
  mmap_load.use_mmap = true;
  auto mapped = WalkIndex::Load(corrupt_path, mmap_load);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_FALSE(mapped->store().VerifyPayload().ok());
  // An untampered file passes the same sweep.
  auto clean = WalkIndex::Load(path, mmap_load);
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean->store().VerifyPayload().ok());
}

TEST(WalkStoreTest, MalformedSegmentBytesFailDecodeWithOffset) {
  DiGraph graph = testing::PaperExampleGraph();
  WalkIndex index = BuildSmallIndex(graph);
  const std::string path = TempPath("store_bad_segment_src.widx");
  WalkIndex::SaveOptions save;
  save.compress = true;
  ASSERT_TRUE(index.Save(path, save).ok());
  auto info = ReadWalkIndexInfo(path);
  ASSERT_TRUE(info.ok());
  std::string bytes = ReadFileBytes(path);
  // The segment region starts after the directory pages; stomp its first
  // bytes with maximal varint continuation so vertex 0 cannot decode.
  const size_t segments_offset =
      info->file_bytes - info->inverted_bytes - info->segment_bytes;
  for (size_t i = 0; i < 16; ++i) {
    bytes[segments_offset + i] = static_cast<char>(0x80);
  }
  const std::string corrupt_path = TempPath("store_bad_segment.widx");
  WriteFileBytes(corrupt_path, bytes);

  WalkIndex::LoadOptions mmap_load;
  mmap_load.use_mmap = true;
  auto mapped = WalkIndex::Load(corrupt_path, mmap_load);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  std::vector<uint32_t> scratch(mapped->store().WalkWords());
  const Status decode = mapped->store().DecodeVertex(0, scratch.data());
  ASSERT_FALSE(decode.ok());
  EXPECT_EQ(decode.code(), StatusCode::kParseError);
  EXPECT_NE(decode.message().find("byte offset"), std::string::npos)
      << decode.ToString();
  // The in-memory backend rejects the same file at open (the payload
  // checksum no longer matches).
  EXPECT_FALSE(WalkIndex::Load(corrupt_path).ok());
}

TEST(WalkStoreTest, CraftedHeaderWithHugeDimensionsIsRejected) {
  // num_fingerprints · walk_length · n chosen so the directory size wraps
  // without 128-bit arithmetic; the regions check must reject it before
  // any allocation. The header checksum is made valid so the dimension
  // check (not the checksum) is what rejects the file.
  DiGraph graph = testing::PaperExampleGraph();
  WalkIndex index = BuildSmallIndex(graph);
  const std::string path = TempPath("store_huge_src.widx");
  ASSERT_TRUE(index.Save(path).ok());
  std::string bytes = ReadFileBytes(path);
  const uint32_t huge = 0x80000000u;
  std::memcpy(bytes.data() + 8, &huge, sizeof(huge));    // n
  std::memcpy(bytes.data() + 12, &huge, sizeof(huge));   // R
  const uint32_t length = 3;  // keeps L under the format cap
  std::memcpy(bytes.data() + 16, &length, sizeof(length));  // L
  // Recompute the header checksum the same way the writer does.
  StreamHasher hasher(0x5349574b32484452ULL);
  hasher.AbsorbBytes(reinterpret_cast<const uint8_t*>(bytes.data()), 96);
  const uint64_t checksum = hasher.digest();
  std::memcpy(bytes.data() + 96, &checksum, sizeof(checksum));
  const std::string huge_path = TempPath("store_huge.widx");
  WriteFileBytes(huge_path, bytes);
  for (bool use_mmap : {false, true}) {
    WalkIndex::LoadOptions load;
    load.use_mmap = use_mmap;
    auto loaded = WalkIndex::Load(huge_path, load);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
    EXPECT_NE(loaded.status().message().find("inconsistent regions"),
              std::string::npos)
        << loaded.status().ToString();
  }
}

TEST(WalkStoreTest, WalkLengthBeyondTheFormatCapIsRejected) {
  // A tiny file whose header declares a small, file-backed n·R but a huge
  // walk length: without the cap, decoding would demand a walk table
  // thousands of times the file size. The header checksum is made valid
  // so the cap (not the checksum) is what rejects the file.
  DiGraph graph = testing::PaperExampleGraph();
  WalkIndex index = BuildSmallIndex(graph);
  const std::string path = TempPath("store_huge_l_src.widx");
  ASSERT_TRUE(index.Save(path).ok());
  std::string bytes = ReadFileBytes(path);
  const uint32_t huge_length = kMaxWalkLength + 1;
  std::memcpy(bytes.data() + 16, &huge_length, sizeof(huge_length));
  StreamHasher hasher(0x5349574b32484452ULL);
  hasher.AbsorbBytes(reinterpret_cast<const uint8_t*>(bytes.data()), 96);
  const uint64_t checksum = hasher.digest();
  std::memcpy(bytes.data() + 96, &checksum, sizeof(checksum));
  const std::string huge_path = TempPath("store_huge_l.widx");
  WriteFileBytes(huge_path, bytes);
  for (bool use_mmap : {false, true}) {
    WalkIndex::LoadOptions load;
    load.use_mmap = use_mmap;
    auto loaded = WalkIndex::Load(huge_path, load);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("format maximum"),
              std::string::npos)
        << loaded.status().ToString();
  }
  // Build enforces the same cap, so the formats stay round-trippable.
  WalkIndexOptions options;
  options.walk_length = kMaxWalkLength + 1;
  EXPECT_FALSE(options.Valid());
  EXPECT_FALSE(WalkIndex::Build(graph, options).ok());
}

TEST(WalkStoreTest, OverflowingPositionDeltaFailsDecodeCleanly) {
  // A compressed segment whose first walk declares one step with a zigzag
  // delta near 2^64: the decoder must reject it as out of range before
  // any signed arithmetic could overflow.
  DiGraph graph = testing::PaperExampleGraph();
  WalkIndex index = BuildSmallIndex(graph);
  const std::string path = TempPath("store_bad_delta_src.widx");
  WalkIndex::SaveOptions save;
  save.compress = true;
  ASSERT_TRUE(index.Save(path, save).ok());
  auto info = ReadWalkIndexInfo(path);
  ASSERT_TRUE(info.ok());
  std::string bytes = ReadFileBytes(path);
  const size_t segments_offset =
      info->file_bytes - info->inverted_bytes - info->segment_bytes;
  // len = 1, then the 10-byte varint of 0xFFFFFFFFFFFFFFFE (zigzag of
  // INT64_MAX).
  const uint8_t payload[11] = {0x01, 0xFE, 0xFF, 0xFF, 0xFF, 0xFF,
                               0xFF, 0xFF, 0xFF, 0xFF, 0x01};
  std::memcpy(bytes.data() + segments_offset, payload, sizeof(payload));
  const std::string corrupt_path = TempPath("store_bad_delta.widx");
  WriteFileBytes(corrupt_path, bytes);

  WalkIndex::LoadOptions mmap_load;
  mmap_load.use_mmap = true;
  auto mapped = WalkIndex::Load(corrupt_path, mmap_load);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  std::vector<uint32_t> scratch(mapped->store().WalkWords());
  const Status decode = mapped->store().DecodeVertex(0, scratch.data());
  ASSERT_FALSE(decode.ok());
  EXPECT_NE(decode.message().find("delta out of range"), std::string::npos)
      << decode.ToString();
}

TEST(WalkStoreTest, HeaderDeclaringUnbackedWalkTableIsRejected) {
  // A crafted header — magic, version and header checksum all valid —
  // declaring n·R·(L+1) walks over an empty segment region. Without the
  // minimum-segment-bytes guard this would drive a ~64 MB (or, scaled up,
  // multi-TB) allocation for bytes that plainly are not in the file.
  constexpr uint32_t kN = 4096;
  constexpr uint32_t kR = 1;
  constexpr uint32_t kL = 4096;
  const uint64_t directory_bytes = (uint64_t{kN} + 1 + kR * kL + 1) * 8;
  const uint64_t segments_offset =
      (4096 + directory_bytes + 4095) / 4096 * 4096;
  const uint64_t file_size = segments_offset;  // both regions empty

  std::string bytes(file_size, '\0');
  auto put32 = [&](size_t at, uint32_t value) {
    std::memcpy(bytes.data() + at, &value, sizeof(value));
  };
  auto put64 = [&](size_t at, uint64_t value) {
    std::memcpy(bytes.data() + at, &value, sizeof(value));
  };
  put32(0, 0x58444957u);  // magic
  put32(4, 2u);           // version
  put32(8, kN);
  put32(12, kR);
  put32(16, kL);
  put32(20, 0u);  // flags
  put64(24, 7u);  // seed
  const double damping = 0.6;
  uint64_t damping_bits = 0;
  std::memcpy(&damping_bits, &damping, sizeof(damping_bits));
  put64(32, damping_bits);
  put64(40, 0u);  // graph fingerprint
  put64(48, 4096u);
  put64(56, segments_offset);
  put64(64, segments_offset);  // inverted region also empty
  put64(72, file_size);
  put64(80, 0u);  // payload checksum (never reached)
  put64(88, 0u);  // directory checksum (never reached)
  StreamHasher hasher(0x5349574b32484452ULL);
  hasher.AbsorbBytes(reinterpret_cast<const uint8_t*>(bytes.data()), 96);
  put64(96, hasher.digest());

  const std::string path = TempPath("store_unbacked.widx");
  WriteFileBytes(path, bytes);
  for (bool use_mmap : {false, true}) {
    WalkIndex::LoadOptions load;
    load.use_mmap = use_mmap;
    auto loaded = WalkIndex::Load(path, load);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
    EXPECT_NE(loaded.status().message().find("too small for the declared "
                                             "geometry"),
              std::string::npos)
        << loaded.status().ToString();
  }
}

TEST(WalkStoreTest, OversizedDecodeRefusedInMemoryButServableViaMmap) {
  // A fully consistent (all three checksums valid) compressed index whose
  // all-dead walks and huge-but-legal walk length decode to ~2.4 GiB from
  // a ~5 MiB file. The in-memory backend must refuse the materialization
  // under its load budget; the mmap backend — which never builds the flat
  // table — must serve it.
  constexpr uint32_t kN = 1024;
  constexpr uint32_t kR = 64;
  constexpr uint32_t kL = 10000;
  const uint64_t slots = uint64_t{kR} * kL;
  const uint64_t dir_bytes = (uint64_t{kN} + 1 + slots + 1) * 8;
  auto align_up = [](uint64_t v) { return (v + 4095) / 4096 * 4096; };
  const uint64_t seg_off = align_up(4096 + dir_bytes);
  const uint64_t seg_bytes = uint64_t{kN} * kR;  // one 0x00 varint per walk
  const uint64_t inv_off = align_up(seg_off + seg_bytes);
  const uint64_t file_size = inv_off;  // every inverted slot is empty

  std::string bytes(file_size, '\0');
  auto put32 = [&](size_t at, uint32_t value) {
    std::memcpy(bytes.data() + at, &value, sizeof(value));
  };
  auto put64 = [&](size_t at, uint64_t value) {
    std::memcpy(bytes.data() + at, &value, sizeof(value));
  };
  put32(0, 0x58444957u);
  put32(4, 2u);
  put32(8, kN);
  put32(12, kR);
  put32(16, kL);
  put32(20, 1u);  // compressed segments
  put64(24, 7u);  // seed
  const double damping = 0.6;
  uint64_t damping_bits = 0;
  std::memcpy(&damping_bits, &damping, sizeof(damping_bits));
  put64(32, damping_bits);
  put64(40, 0u);  // graph fingerprint
  put64(48, 4096u);
  put64(56, seg_off);
  put64(64, inv_off);
  put64(72, file_size);
  for (uint32_t v = 0; v <= kN; ++v) {
    put64(4096 + uint64_t{v} * 8, uint64_t{v} * kR);
  }
  const auto* data = reinterpret_cast<const uint8_t*>(bytes.data());
  StreamHasher payload_hasher(0x5349574b32504159ULL);
  payload_hasher.AbsorbBytes(data + seg_off, inv_off - seg_off);
  payload_hasher.AbsorbBytes(data + inv_off, 0);
  put64(80, payload_hasher.digest());
  StreamHasher dir_hasher(0x5349574b32444952ULL);
  dir_hasher.AbsorbBytes(data + 104, seg_off - 104);
  put64(88, dir_hasher.digest());
  StreamHasher header_hasher(0x5349574b32484452ULL);
  header_hasher.AbsorbBytes(data, 96);
  put64(96, header_hasher.digest());

  const std::string path = TempPath("store_oversized.widx");
  WriteFileBytes(path, bytes);

  auto ram = WalkIndex::Load(path);
  ASSERT_FALSE(ram.ok());
  EXPECT_NE(ram.status().message().find("refusing the in-memory load"),
            std::string::npos)
      << ram.status().ToString();
  EXPECT_NE(ram.status().message().find("mmap"), std::string::npos);

  WalkIndex::LoadOptions mmap_load;
  mmap_load.use_mmap = true;
  auto mapped = WalkIndex::Load(path, mmap_load);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped->store().VerifyPayload().ok());
  // All walks are dead at step 1, so every off-diagonal estimate is 0.
  EXPECT_DOUBLE_EQ(mapped->EstimatePair(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(mapped->EstimatePair(5, 5), 1.0);
}

TEST(WalkStoreTest, InfoReflectsTheSavedHeader) {
  DiGraph graph = testing::RandomGraph(25, 90, 4);
  WalkIndex index = BuildSmallIndex(graph);
  for (bool compress : {false, true}) {
    const std::string path =
        TempPath(compress ? "store_info_c.widx" : "store_info_r.widx");
    WalkIndex::SaveOptions save;
    save.compress = compress;
    ASSERT_TRUE(index.Save(path, save).ok());
    auto info = ReadWalkIndexInfo(path);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(info->version, 2u);
    EXPECT_EQ(info->compressed, compress);
    EXPECT_EQ(info->meta.n, graph.n());
    EXPECT_EQ(info->meta.num_fingerprints,
              index.options().num_fingerprints);
    EXPECT_EQ(info->meta.walk_length, index.options().walk_length);
    EXPECT_DOUBLE_EQ(info->meta.damping, index.options().damping);
    EXPECT_EQ(info->meta.seed, index.options().seed);
    EXPECT_EQ(info->meta.graph_fingerprint, index.graph_fingerprint());
    EXPECT_EQ(info->file_bytes, ReadFileBytes(path).size());
    EXPECT_EQ(info->raw_walk_bytes,
              static_cast<uint64_t>(graph.n()) *
                  index.options().num_fingerprints *
                  (index.options().walk_length + 1) * sizeof(uint32_t));
    EXPECT_GT(info->segment_bytes, 0u);
    EXPECT_GT(info->inverted_bytes, 0u);
  }
  EXPECT_FALSE(ReadWalkIndexInfo("/no/such/index.widx").ok());
}

TEST(WalkStoreTest, ParallelOpenMatchesSerialBitwise) {
  // Big enough that the parallel path actually splits into blocks.
  DiGraph graph = testing::RandomGraph(257, 1400, 23);
  WalkIndex index = BuildSmallIndex(graph);
  const std::string path = TempPath("store_parallel_open.widx");
  WalkIndex::SaveOptions save;
  save.compress = true;
  ASSERT_TRUE(index.Save(path, save).ok());

  auto serial = InMemoryWalkStore::Open(path, 1);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  const WalkStoreMeta& meta = (*serial)->meta();
  const size_t total_words = (*serial)->WalkWords() * meta.n;
  for (const uint32_t threads : {2u, 3u, 8u}) {
    auto parallel = InMemoryWalkStore::Open(path, threads);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(std::memcmp((*serial)->FlatWalks(), (*parallel)->FlatWalks(),
                          total_words * sizeof(uint32_t)),
              0)
        << "flat walk table differs at " << threads << " threads";
    EXPECT_EQ((*serial)->ResidentBytes(), (*parallel)->ResidentBytes());
    for (uint32_t r = 0; r < meta.num_fingerprints; ++r) {
      for (uint32_t t = 1; t <= meta.walk_length; ++t) {
        const WalkStore::SlotView lhs = (*serial)->Slot(r, t);
        const WalkStore::SlotView rhs = (*parallel)->Slot(r, t);
        ASSERT_EQ(lhs.count, rhs.count);
        ASSERT_EQ(std::memcmp(lhs.positions, rhs.positions,
                              lhs.count * sizeof(uint32_t)),
                  0);
        ASSERT_EQ(std::memcmp(lhs.vertices, rhs.vertices,
                              lhs.count * sizeof(uint32_t)),
                  0);
      }
    }
  }
}

TEST(WalkStoreTest, ParallelOpenReportsTheSerialFirstCorruptVertex) {
  // Two corrupt segments with checksums made consistent again, so the
  // decode (not the checksum sweep) is what fails: every thread count
  // must report the *first* corrupt vertex, exactly like the serial pass.
  DiGraph graph = testing::RandomGraph(64, 300, 9);
  WalkIndex index = BuildSmallIndex(graph);
  const std::string path = TempPath("store_parallel_corrupt_src.widx");
  WalkIndex::SaveOptions save;
  save.compress = true;
  ASSERT_TRUE(index.Save(path, save).ok());
  auto info = ReadWalkIndexInfo(path);
  ASSERT_TRUE(info.ok());
  std::string bytes = ReadFileBytes(path);
  const size_t segments_offset =
      info->file_bytes - info->inverted_bytes - info->segment_bytes;
  const size_t inverted_offset = info->file_bytes - info->inverted_bytes;
  const auto* seg_rel =
      reinterpret_cast<const uint64_t*>(bytes.data() + 4096);
  // Five 0xFF bytes: an over-long varint32, malformed for any suffix.
  for (const uint32_t victim : {19u, 47u}) {
    for (size_t i = 0; i < 5; ++i) {
      bytes[segments_offset + seg_rel[victim] + i] =
          static_cast<char>(0xFF);
    }
  }
  // Re-seal payload and header checksums the way the writer computes them.
  StreamHasher payload_hasher(0x5349574b32504159ULL);
  payload_hasher.AbsorbBytes(
      reinterpret_cast<const uint8_t*>(bytes.data()) + segments_offset,
      info->segment_bytes);
  payload_hasher.AbsorbBytes(
      reinterpret_cast<const uint8_t*>(bytes.data()) + inverted_offset,
      info->inverted_bytes);
  const uint64_t payload_checksum = payload_hasher.digest();
  std::memcpy(bytes.data() + 80, &payload_checksum,
              sizeof(payload_checksum));
  StreamHasher header_hasher(0x5349574b32484452ULL);
  header_hasher.AbsorbBytes(reinterpret_cast<const uint8_t*>(bytes.data()),
                            96);
  const uint64_t header_checksum = header_hasher.digest();
  std::memcpy(bytes.data() + 96, &header_checksum,
              sizeof(header_checksum));
  const std::string corrupt_path = TempPath("store_parallel_corrupt.widx");
  WriteFileBytes(corrupt_path, bytes);

  auto serial = InMemoryWalkStore::Open(corrupt_path, 1);
  ASSERT_FALSE(serial.ok());
  EXPECT_NE(serial.status().message().find("vertex 19"), std::string::npos)
      << serial.status().ToString();
  for (const uint32_t threads : {2u, 8u}) {
    auto parallel = InMemoryWalkStore::Open(corrupt_path, threads);
    ASSERT_FALSE(parallel.ok());
    EXPECT_EQ(parallel.status(), serial.status())
        << "threads=" << threads << ": "
        << parallel.status().ToString();
  }
}

TEST(WalkStoreTest, PrefetchIsAHintThatChangesNothing) {
  DiGraph graph = testing::PaperExampleGraph();
  WalkIndex index = BuildSmallIndex(graph);
  const std::string path = TempPath("store_prefetch.widx");
  WalkIndex::SaveOptions save;
  save.compress = true;
  ASSERT_TRUE(index.Save(path, save).ok());
  WalkIndex::LoadOptions mmap_load;
  mmap_load.use_mmap = true;
  auto mapped = WalkIndex::Load(path, mmap_load);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  // Duplicates, unsorted input and out-of-range ids are all tolerated: a
  // stale warm list must never take the server down.
  const std::vector<VertexId> warm = {8, 0, 3, 3, 1, 1000000};
  mapped->store().Prefetch(warm);
  index.store().Prefetch(warm);  // in-memory backend: explicit no-op
  for (VertexId a = 0; a < graph.n(); ++a) {
    for (VertexId b = 0; b < graph.n(); ++b) {
      EXPECT_EQ(mapped->EstimatePair(a, b), index.EstimatePair(a, b));
    }
  }
}

TEST(WalkStoreTest, BatchedReaderPrefetchChangesNothing) {
  // Same hint-only contract as above, but with the io_uring batched
  // reader explicitly on and off, both encodings, and hostile warm lists
  // (out of order, duplicated, out of range, and touching the last
  // vertex, whose page-aligned segment run extends past EOF and must be
  // clamped before it becomes a real read).
  DiGraph graph = testing::RandomGraph(50, 210, 41);
  WalkIndex index = BuildSmallIndex(graph);
  const bool uring_was_enabled = SegmentReader::IoUringEnabled();
  for (const bool compress : {false, true}) {
    for (const bool uring : {false, true}) {
      SCOPED_TRACE(std::string(compress ? "compressed" : "raw") +
                   (uring ? "/uring" : "/no-uring"));
      SegmentReader::SetIoUringEnabled(uring);
      const std::string path =
          TempPath(std::string("store_reader_prefetch_") +
                   (compress ? "c" : "r") + (uring ? "u" : "p") + ".widx");
      WalkIndex::SaveOptions save;
      save.compress = compress;
      ASSERT_TRUE(index.Save(path, save).ok());
      WalkIndex::LoadOptions mmap_load;
      mmap_load.use_mmap = true;
      auto mapped = WalkIndex::Load(path, mmap_load);
      ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

      const std::vector<VertexId> warm = {
          graph.n() - 1, 7, 7, 0, 23, 5, 1u << 30, graph.n() - 1, 2};
      mapped->store().Prefetch(warm);
      mapped->store().Prefetch(std::vector<VertexId>{});  // empty list
      for (VertexId a = 0; a < graph.n(); a += 3) {
        for (VertexId b = 0; b < graph.n(); b += 2) {
          ASSERT_EQ(mapped->EstimatePair(a, b), index.EstimatePair(a, b))
              << a << "," << b;
        }
      }
      // The slot prefetch (fired by the first mmap single-source) is a
      // hint too: full rows stay bitwise equal to the in-memory backend.
      for (VertexId v = 0; v < graph.n(); v += 7) {
        ASSERT_EQ(mapped->EstimateSingleSource(v),
                  index.EstimateSingleSource(v));
      }
    }
  }
  SegmentReader::SetIoUringEnabled(uring_was_enabled);
}

}  // namespace
}  // namespace simrank
