// Group commit: concurrently submitted update batches share one WAL fsync
// without giving up durability — every acknowledged batch survives a
// reopen-and-replay.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "simrank/graph/graph_io.h"
#include "simrank/index/edge_update.h"
#include "simrank/index/index_updater.h"
#include "simrank/index/walk_index.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

WalkIndexOptions SmallOptions() {
  WalkIndexOptions options;
  options.num_fingerprints = 48;
  options.walk_length = 6;
  return options;
}

WalkIndex BuildIndex(const DiGraph& graph) {
  auto index = WalkIndex::Build(graph, SmallOptions());
  OIPSIM_CHECK(index.ok());
  return std::move(index).value();
}

std::string FreshWalPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "group-commit-" + name;
  std::remove(path.c_str());
  return path;
}

/// `count` distinct edges absent from `graph` — all insertable in any
/// order, so concurrent one-edge batches stay valid however they
/// interleave.
std::vector<Edge> FreshEdges(const DiGraph& graph, size_t count) {
  std::vector<Edge> fresh;
  for (VertexId src = 0; src < graph.n() && fresh.size() < count; ++src) {
    for (VertexId dst = 0; dst < graph.n() && fresh.size() < count; ++dst) {
      if (src != dst && !graph.HasEdge(src, dst)) {
        fresh.push_back(Edge{src, dst});
      }
    }
  }
  OIPSIM_CHECK_EQ(fresh.size(), count);
  return fresh;
}

TEST(GroupCommitTest, SequentialBatchesEachGetTheirOwnFsync) {
  const DiGraph graph = testing::RandomGraph(40, 160, 19);
  WalkIndex index = BuildIndex(graph);
  IndexUpdaterOptions options;
  options.wal_path = FreshWalPath("sequential.wal");
  auto updater = IndexUpdater::Open(index, graph, options);
  ASSERT_TRUE(updater.ok());
  const std::vector<Edge> fresh = FreshEdges(graph, 3);
  for (const Edge& edge : fresh) {
    const EdgeUpdate update{EdgeUpdate::Op::kInsert, edge.src, edge.dst};
    ASSERT_TRUE((*updater)->ApplyUpdates({&update, 1}).ok());
  }
  // No concurrency, no group: one fsync per batch, exactly as without
  // group commit.
  const IndexUpdateStats stats = (*updater)->stats();
  EXPECT_EQ(stats.batches_applied, 3u);
  EXPECT_EQ(stats.wal_records, 3u);
  EXPECT_EQ(stats.wal_syncs, 3u);
}

TEST(GroupCommitTest, ConcurrentBatchesCoalesceIntoFewerFsyncs) {
  const DiGraph graph = testing::RandomGraph(40, 160, 19);
  WalkIndex index = BuildIndex(graph);
  IndexUpdaterOptions options;
  options.wal_path = FreshWalPath("concurrent.wal");
  // A long leader window so the follower batches reliably join the
  // leader's group instead of racing past it.
  options.group_commit_window_us = 500000;
  auto updater = IndexUpdater::Open(index, graph, options);
  ASSERT_TRUE(updater.ok());

  const std::vector<Edge> fresh = FreshEdges(graph, 3);
  std::vector<std::thread> writers;
  std::vector<Status> results(fresh.size());
  for (size_t i = 0; i < fresh.size(); ++i) {
    writers.emplace_back([&, i] {
      // Stagger the followers into the leader's window.
      if (i > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50 * i));
      }
      const EdgeUpdate update{EdgeUpdate::Op::kInsert, fresh[i].src,
                              fresh[i].dst};
      results[i] = (*updater)->ApplyUpdates({&update, 1});
    });
  }
  for (std::thread& writer : writers) writer.join();
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].ok()) << "batch " << i << ": "
                                 << results[i].ToString();
  }

  const IndexUpdateStats stats = (*updater)->stats();
  EXPECT_EQ(stats.batches_applied, 3u);
  EXPECT_EQ(stats.wal_records, 3u);
  // The whole point: fewer fsyncs than batches. (Normally 1; 2 tolerates
  // a spurious leader wakeup splitting the group.)
  EXPECT_LE(stats.wal_syncs, 2u);
  EXPECT_GE(stats.wal_syncs, 1u);

  // Coalescing did not cost equivalence: the patched index matches a
  // rebuild on the updated graph.
  auto rebuilt = WalkIndex::Build((*updater)->CurrentGraph(), SmallOptions());
  ASSERT_TRUE(rebuilt.ok());
  for (const Edge& edge : fresh) {
    const std::vector<double> patched = index.EstimateSingleSource(edge.dst);
    const std::vector<double> expected =
        rebuilt->EstimateSingleSource(edge.dst);
    ASSERT_EQ(patched.size(), expected.size());
    EXPECT_EQ(std::memcmp(patched.data(), expected.data(),
                          expected.size() * sizeof(double)),
              0)
        << "row " << edge.dst;
  }
}

TEST(GroupCommitTest, GroupedBatchesAreDurableAcrossReopen) {
  const DiGraph graph = testing::RandomGraph(40, 160, 19);
  const std::string wal_path = FreshWalPath("durable.wal");
  const std::vector<Edge> fresh = FreshEdges(graph, 4);
  {
    WalkIndex index = BuildIndex(graph);
    IndexUpdaterOptions options;
    options.wal_path = wal_path;
    options.group_commit_window_us = 100000;
    auto updater = IndexUpdater::Open(index, graph, options);
    ASSERT_TRUE(updater.ok());
    std::vector<std::thread> writers;
    for (size_t i = 0; i < fresh.size(); ++i) {
      writers.emplace_back([&, i] {
        const EdgeUpdate update{EdgeUpdate::Op::kInsert, fresh[i].src,
                                fresh[i].dst};
        ASSERT_TRUE((*updater)->ApplyUpdates({&update, 1}).ok());
      });
    }
    for (std::thread& writer : writers) writer.join();
    EXPECT_EQ((*updater)->stats().wal_records, 4u);
    // Updater and index dropped here: only the WAL survives.
  }

  // Reopen over a fresh base index: the WAL replays every acknowledged
  // batch and the replayed state equals a rebuild on the updated graph.
  WalkIndex index = BuildIndex(graph);
  IndexUpdaterOptions options;
  options.wal_path = wal_path;
  auto reopened = IndexUpdater::Open(index, graph, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const IndexUpdateStats stats = (*reopened)->stats();
  EXPECT_EQ(stats.batches_applied, 4u);
  EXPECT_EQ(stats.batches_replayed, 4u);
  const DiGraph updated = (*reopened)->CurrentGraph();
  for (const Edge& edge : fresh) {
    EXPECT_TRUE(updated.HasEdge(edge.src, edge.dst));
  }
  auto rebuilt = WalkIndex::Build(updated, SmallOptions());
  ASSERT_TRUE(rebuilt.ok());
  for (const Edge& edge : fresh) {
    const std::vector<double> replayed =
        index.EstimateSingleSource(edge.dst);
    const std::vector<double> expected =
        rebuilt->EstimateSingleSource(edge.dst);
    ASSERT_EQ(replayed.size(), expected.size());
    EXPECT_EQ(std::memcmp(replayed.data(), expected.data(),
                          expected.size() * sizeof(double)),
              0)
        << "row " << edge.dst;
  }
}

TEST(GroupCommitTest, DisablingGroupCommitSyncsPerBatchEvenConcurrently) {
  const DiGraph graph = testing::RandomGraph(40, 160, 19);
  WalkIndex index = BuildIndex(graph);
  IndexUpdaterOptions options;
  options.wal_path = FreshWalPath("ungrouped.wal");
  options.group_commit = false;
  auto updater = IndexUpdater::Open(index, graph, options);
  ASSERT_TRUE(updater.ok());
  const std::vector<Edge> fresh = FreshEdges(graph, 4);
  std::vector<std::thread> writers;
  for (size_t i = 0; i < fresh.size(); ++i) {
    writers.emplace_back([&, i] {
      const EdgeUpdate update{EdgeUpdate::Op::kInsert, fresh[i].src,
                              fresh[i].dst};
      ASSERT_TRUE((*updater)->ApplyUpdates({&update, 1}).ok());
    });
  }
  for (std::thread& writer : writers) writer.join();
  const IndexUpdateStats stats = (*updater)->stats();
  EXPECT_EQ(stats.batches_applied, 4u);
  EXPECT_EQ(stats.wal_syncs, 4u);
}

TEST(GroupCommitTest, NoSyncWalSkipsEveryFsync) {
  const DiGraph graph = testing::RandomGraph(40, 160, 19);
  WalkIndex index = BuildIndex(graph);
  IndexUpdaterOptions options;
  options.wal_path = FreshWalPath("nosync.wal");
  options.sync_wal = false;
  auto updater = IndexUpdater::Open(index, graph, options);
  ASSERT_TRUE(updater.ok());
  const std::vector<Edge> fresh = FreshEdges(graph, 2);
  for (const Edge& edge : fresh) {
    const EdgeUpdate update{EdgeUpdate::Op::kInsert, edge.src, edge.dst};
    ASSERT_TRUE((*updater)->ApplyUpdates({&update, 1}).ok());
  }
  const IndexUpdateStats stats = (*updater)->stats();
  EXPECT_EQ(stats.batches_applied, 2u);
  EXPECT_EQ(stats.wal_syncs, 0u);
}

}  // namespace
}  // namespace simrank
