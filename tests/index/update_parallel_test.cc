// Parallel walk patching, O(degree) graph maintenance and bounded
// overlays with background auto-compaction.
//
// The contracts under test:
//   - thread-count independence: the overlay (and therefore every query
//     answer and every compacted file) is bitwise identical whether a
//     batch is patched serially or by 2/4/8 workers, over both store
//     backends and both segment encodings;
//   - the in-place adjacency (sorted per-vertex lists + commutative
//     fingerprint accumulators) stays equal to a DiGraph rebuilt through
//     ApplyEdgeUpdates after every accepted batch, and untouched by
//     rejected ones;
//   - an overlay crossing --overlay-budget (or the patched-fraction
//     heuristic) triggers exactly the background compaction behavior:
//     answers stay bitwise a rebuild's, the WAL is re-seeded, the emitted
//     files restart cleanly, and updates keep applying afterwards;
//   - updates, queries and compactions may run concurrently (the TSan CI
//     job runs this suite).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "simrank/common/rng.h"
#include "simrank/graph/graph_io.h"
#include "simrank/index/edge_update.h"
#include "simrank/index/index_updater.h"
#include "simrank/index/walk_index.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

WalkIndexOptions SmallOptions() {
  WalkIndexOptions options;
  options.num_fingerprints = 48;
  options.walk_length = 6;
  options.damping = 0.6;
  return options;
}

/// A deterministic stream of mixed batches, each valid against the graph
/// as evolved by its predecessors.
std::vector<std::vector<EdgeUpdate>> MakeStream(const DiGraph& start,
                                                uint64_t seed,
                                                uint32_t batches,
                                                uint32_t edges) {
  std::vector<std::vector<EdgeUpdate>> stream;
  Rng rng(seed);
  DiGraph current = start;
  for (uint32_t i = 0; i < batches; ++i) {
    std::vector<EdgeUpdate> batch;
    while (batch.size() < edges) {
      const auto src = static_cast<VertexId>(rng.NextUint64(current.n()));
      const auto dst = static_cast<VertexId>(rng.NextUint64(current.n()));
      const bool want_delete = batch.size() % 2 == 1;
      bool duplicate = false;
      for (const EdgeUpdate& u : batch) {
        duplicate = duplicate || (u.src == src && u.dst == dst);
      }
      if (duplicate) continue;
      if (want_delete) {
        const auto out = current.OutNeighbors(src);
        if (out.empty()) continue;
        const VertexId victim = out[rng.NextUint64(out.size())];
        bool victim_duplicate = false;
        for (const EdgeUpdate& u : batch) {
          victim_duplicate =
              victim_duplicate || (u.src == src && u.dst == victim);
        }
        if (victim_duplicate) continue;
        batch.push_back(EdgeUpdate{EdgeUpdate::Op::kDelete, src, victim});
      } else {
        if (current.HasEdge(src, dst)) continue;
        batch.push_back(EdgeUpdate{EdgeUpdate::Op::kInsert, src, dst});
      }
    }
    stream.push_back(batch);
    auto next = ApplyEdgeUpdates(current, stream.back());
    OIPSIM_CHECK(next.ok());
    current = std::move(*next);
  }
  return stream;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  OIPSIM_CHECK(f != nullptr);
  std::vector<uint8_t> bytes;
  char chunk[4096];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  std::fclose(f);
  return bytes;
}

std::vector<std::vector<double>> AllRows(const WalkIndex& index) {
  std::vector<std::vector<double>> rows;
  rows.reserve(index.n());
  for (VertexId v = 0; v < index.n(); ++v) {
    rows.push_back(index.EstimateSingleSource(v));
  }
  return rows;
}

void ExpectRowsBitwiseEqual(const std::vector<std::vector<double>>& a,
                            const std::vector<std::vector<double>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t v = 0; v < a.size(); ++v) {
    ASSERT_EQ(a[v].size(), b[v].size());
    ASSERT_EQ(std::memcmp(a[v].data(), b[v].data(),
                          a[v].size() * sizeof(double)),
              0)
        << "row " << v << " diverges";
  }
}

struct BackendParam {
  bool compress;
  bool use_mmap;
};

class ParallelPatchBackendTest
    : public ::testing::TestWithParam<BackendParam> {};

INSTANTIATE_TEST_SUITE_P(
    Backends, ParallelPatchBackendTest,
    ::testing::Values(BackendParam{false, false}, BackendParam{true, false},
                      BackendParam{false, true}, BackendParam{true, true}),
    [](const ::testing::TestParamInfo<BackendParam>& info) {
      return std::string(info.param.compress ? "Compressed" : "Raw") +
             (info.param.use_mmap ? "Mmap" : "InMemory");
    });

TEST_P(ParallelPatchBackendTest, AnyThreadCountIsBitwiseSerial) {
  const DiGraph graph = testing::RandomGraph(40, 160, 3);
  const WalkIndexOptions options = SmallOptions();
  const std::string tag =
      std::string(GetParam().compress ? "c" : "r") +
      (GetParam().use_mmap ? "m" : "i");
  const std::vector<std::vector<EdgeUpdate>> stream =
      MakeStream(graph, /*seed=*/31, /*batches=*/4, /*edges=*/6);

  // Shared base file: every replay loads the identical store.
  auto built = WalkIndex::Build(graph, options);
  ASSERT_TRUE(built.ok());
  const std::string base_path = TempPath("par-base-" + tag + ".widx");
  WalkIndex::SaveOptions save;
  save.compress = GetParam().compress;
  ASSERT_TRUE(built->Save(base_path, save).ok());

  std::vector<std::vector<double>> reference_rows;
  std::vector<uint8_t> reference_bytes;
  for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
    WalkIndex::LoadOptions load;
    load.use_mmap = GetParam().use_mmap;
    auto index = WalkIndex::Load(base_path, load);
    ASSERT_TRUE(index.ok());

    const std::string wal_path =
        TempPath("par-" + tag + std::to_string(threads) + ".wal");
    std::remove(wal_path.c_str());
    IndexUpdaterOptions updater_options;
    updater_options.wal_path = wal_path;
    updater_options.num_threads = threads;
    auto updater = IndexUpdater::Open(*index, graph, updater_options);
    ASSERT_TRUE(updater.ok()) << updater.status().ToString();
    for (const auto& batch : stream) {
      ASSERT_TRUE((*updater)->ApplyUpdates(batch).ok());
    }

    const std::vector<std::vector<double>> rows = AllRows(*index);
    const std::string compacted =
        TempPath("par-out-" + tag + std::to_string(threads) + ".widx");
    ASSERT_TRUE((*updater)->Compact(compacted, save).ok());
    std::vector<uint8_t> bytes = ReadFileBytes(compacted);
    std::remove(compacted.c_str());

    if (threads == 1) {
      // Serial ground truth: also a rebuild of the evolved graph.
      auto rebuilt = WalkIndex::Build((*updater)->CurrentGraph(), options);
      ASSERT_TRUE(rebuilt.ok());
      ExpectRowsBitwiseEqual(rows, AllRows(*rebuilt));
      reference_rows = rows;
      reference_bytes = std::move(bytes);
    } else {
      ExpectRowsBitwiseEqual(rows, reference_rows);
      ASSERT_EQ(bytes, reference_bytes)
          << threads << "-thread compacted file diverges from serial";
    }
  }
}

TEST(IncrementalGraphTest, MatchesRebuiltDiGraphUnderFuzz) {
  const DiGraph start = testing::RandomGraph(60, 240, 5);
  const WalkIndexOptions options = SmallOptions();
  auto built = WalkIndex::Build(start, options);
  ASSERT_TRUE(built.ok());
  WalkIndex index = std::move(built).value();

  const std::string wal_path = TempPath("incgraph.wal");
  std::remove(wal_path.c_str());
  IndexUpdaterOptions updater_options;
  updater_options.wal_path = wal_path;
  updater_options.num_threads = 2;
  auto updater = IndexUpdater::Open(index, start, updater_options);
  ASSERT_TRUE(updater.ok());

  const std::vector<std::vector<EdgeUpdate>> stream =
      MakeStream(start, /*seed=*/91, /*batches=*/24, /*edges=*/5);
  DiGraph expected = start;
  for (const auto& batch : stream) {
    ASSERT_TRUE((*updater)->ApplyUpdates(batch).ok());
    auto next = ApplyEdgeUpdates(expected, batch);
    ASSERT_TRUE(next.ok());
    expected = std::move(*next);

    // The O(degree)-maintained adjacency equals the from-scratch graph:
    // same edges, same ids, same commutative fingerprint.
    const DiGraph current = (*updater)->CurrentGraph();
    ASSERT_EQ(current.n(), expected.n());
    ASSERT_EQ(current.m(), expected.m());
    ASSERT_EQ(current.Edges(), expected.Edges());
    EXPECT_EQ((*updater)->stats().current_graph_fingerprint,
              GraphFingerprint(expected));
  }

  // A rejected batch (duplicate insert) must leave graph and fingerprint
  // untouched — validation happens before any in-place mutation.
  const Edge existing = expected.Edges().front();
  const uint64_t fingerprint_before =
      (*updater)->stats().current_graph_fingerprint;
  EXPECT_FALSE(
      (*updater)
          ->ApplyUpdates(
              {{EdgeUpdate{EdgeUpdate::Op::kInsert, 0, 1},
                EdgeUpdate{EdgeUpdate::Op::kInsert, existing.src,
                           existing.dst}}})
          .ok());
  EXPECT_EQ((*updater)->stats().current_graph_fingerprint,
            fingerprint_before);
  EXPECT_EQ((*updater)->CurrentGraph().Edges(), expected.Edges());
}

TEST(AutoCompactionTest, BudgetTriggersBackgroundCompaction) {
  const DiGraph graph = testing::RandomGraph(40, 160, 7);
  const WalkIndexOptions options = SmallOptions();
  auto built = WalkIndex::Build(graph, options);
  ASSERT_TRUE(built.ok());
  WalkIndex index = std::move(built).value();

  const std::string wal_path = TempPath("autocompact.wal");
  const std::string compact_path = TempPath("autocompact.widx");
  const std::string graph_path = TempPath("autocompact.graph");
  std::remove(wal_path.c_str());
  IndexUpdaterOptions updater_options;
  updater_options.wal_path = wal_path;
  updater_options.num_threads = 2;
  // Any non-empty overlay exceeds one byte, so every publish trips the
  // trigger; the worker coalesces while one compaction runs.
  updater_options.overlay_budget_bytes = 1;
  updater_options.auto_compact_path = compact_path;
  updater_options.auto_compact_graph_path = graph_path;
  auto updater = IndexUpdater::Open(index, graph, updater_options);
  ASSERT_TRUE(updater.ok()) << updater.status().ToString();

  const std::vector<std::vector<EdgeUpdate>> stream =
      MakeStream(graph, /*seed=*/13, /*batches=*/6, /*edges=*/4);
  for (const auto& batch : stream) {
    ASSERT_TRUE((*updater)->ApplyUpdates(batch).ok());
  }
  (*updater)->DrainBackgroundCompaction();

  const IndexUpdateStats stats = (*updater)->stats();
  EXPECT_GE(stats.auto_compactions, 1u);
  EXPECT_EQ(stats.auto_compact_failures, 0u);
  EXPECT_EQ(stats.compactions, stats.auto_compactions);
  EXPECT_GT(stats.last_compaction_micros, 0u);
  EXPECT_GE((*updater)->compaction_histogram().snapshot().count,
            stats.compactions);

  // Serving state survives the swaps bitwise: still exactly a rebuild of
  // the final graph, and the sequence kept counting (cached rows stay
  // coherent).
  auto rebuilt = WalkIndex::Build((*updater)->CurrentGraph(), options);
  ASSERT_TRUE(rebuilt.ok());
  ExpectRowsBitwiseEqual(AllRows(index), AllRows(*rebuilt));
  EXPECT_EQ(index.overlay_sequence(), stream.size());

  // Updates keep applying after the swap — patches now express against
  // the merged store.
  const std::vector<std::vector<EdgeUpdate>> more =
      MakeStream((*updater)->CurrentGraph(), /*seed=*/14, /*batches=*/2,
                 /*edges=*/3);
  for (const auto& batch : more) {
    ASSERT_TRUE((*updater)->ApplyUpdates(batch).ok());
  }
  (*updater)->DrainBackgroundCompaction();
  auto rebuilt_after = WalkIndex::Build((*updater)->CurrentGraph(), options);
  ASSERT_TRUE(rebuilt_after.ok());
  ExpectRowsBitwiseEqual(AllRows(index), AllRows(*rebuilt_after));

  // The emitted (index, graph, WAL) triple restarts cleanly: the WAL was
  // re-seeded with only the batches the compacted file does not embody.
  const DiGraph final_graph = (*updater)->CurrentGraph();
  updater->reset();  // joins the background thread, releases the WAL
  auto compacted_graph = ReadBinary(graph_path);
  ASSERT_TRUE(compacted_graph.ok());
  auto reloaded = WalkIndex::Load(compact_path, {});
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  IndexUpdaterOptions restart_options;
  restart_options.wal_path = wal_path;
  auto restarted = IndexUpdater::Open(*reloaded, std::move(*compacted_graph),
                                      restart_options);
  ASSERT_TRUE(restarted.ok()) << restarted.status().ToString();
  EXPECT_EQ((*restarted)->CurrentGraph().Edges(), final_graph.Edges());
  auto rebuilt_final = WalkIndex::Build(final_graph, options);
  ASSERT_TRUE(rebuilt_final.ok());
  ExpectRowsBitwiseEqual(AllRows(*reloaded), AllRows(*rebuilt_final));
}

TEST(AutoCompactionTest, PatchedFractionHeuristicTriggers) {
  const DiGraph graph = testing::RandomGraph(30, 120, 11);
  const WalkIndexOptions options = SmallOptions();
  auto built = WalkIndex::Build(graph, options);
  ASSERT_TRUE(built.ok());
  WalkIndex index = std::move(built).value();

  const std::string wal_path = TempPath("autofrac.wal");
  std::remove(wal_path.c_str());
  IndexUpdaterOptions updater_options;
  updater_options.wal_path = wal_path;
  // No byte budget; any patched walk exceeds this fraction of n·R.
  updater_options.auto_compact_patched_fraction = 1e-9;
  updater_options.auto_compact_path = TempPath("autofrac.widx");
  // No graph path: the WAL must be left whole.
  auto updater = IndexUpdater::Open(index, graph, updater_options);
  ASSERT_TRUE(updater.ok()) << updater.status().ToString();

  const std::vector<std::vector<EdgeUpdate>> stream =
      MakeStream(graph, /*seed=*/17, /*batches=*/3, /*edges=*/3);
  for (const auto& batch : stream) {
    ASSERT_TRUE((*updater)->ApplyUpdates(batch).ok());
  }
  (*updater)->DrainBackgroundCompaction();
  const IndexUpdateStats stats = (*updater)->stats();
  EXPECT_GE(stats.auto_compactions, 1u);
  EXPECT_EQ(stats.auto_compact_failures, 0u);
  // WAL untouched: every accepted batch still recorded.
  EXPECT_EQ(stats.wal_records, stream.size());

  auto rebuilt = WalkIndex::Build((*updater)->CurrentGraph(), options);
  ASSERT_TRUE(rebuilt.ok());
  ExpectRowsBitwiseEqual(AllRows(index), AllRows(*rebuilt));
}

TEST(AutoCompactionTest, ArmingRequiresAPath) {
  const DiGraph graph = testing::PaperExampleGraph();
  const WalkIndexOptions options = SmallOptions();
  auto built = WalkIndex::Build(graph, options);
  ASSERT_TRUE(built.ok());
  WalkIndex index = std::move(built).value();
  IndexUpdaterOptions updater_options;
  updater_options.wal_path = TempPath("autoarm.wal");
  updater_options.overlay_budget_bytes = 1024;
  auto updater = IndexUpdater::Open(index, graph, updater_options);
  EXPECT_FALSE(updater.ok());
}

// The TSan target of this suite: updates, point + row queries, manual
// compactions and budget-armed background compactions all concurrently.
TEST(ConcurrentUpdateTest, UpdatesQueriesAndCompactionsRace) {
  const DiGraph graph = testing::RandomGraph(30, 120, 19);
  WalkIndexOptions options = SmallOptions();
  options.num_fingerprints = 24;
  auto built = WalkIndex::Build(graph, options);
  ASSERT_TRUE(built.ok());
  WalkIndex index = std::move(built).value();

  const std::string wal_path = TempPath("race.wal");
  const std::string compact_path = TempPath("race.widx");
  std::remove(wal_path.c_str());
  IndexUpdaterOptions updater_options;
  updater_options.wal_path = wal_path;
  updater_options.sync_wal = false;
  updater_options.num_threads = 2;
  updater_options.overlay_budget_bytes = 1;
  updater_options.auto_compact_path = compact_path;
  auto updater = IndexUpdater::Open(index, graph, updater_options);
  ASSERT_TRUE(updater.ok()) << updater.status().ToString();

  const std::vector<std::vector<EdgeUpdate>> stream =
      MakeStream(graph, /*seed=*/23, /*batches=*/12, /*edges=*/3);
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (uint32_t reader = 0; reader < 2; ++reader) {
    readers.emplace_back([&index, &done, reader] {
      Rng rng(100 + reader);
      while (!done.load(std::memory_order_acquire)) {
        const auto a = static_cast<VertexId>(rng.NextUint64(index.n()));
        const auto b = static_cast<VertexId>(rng.NextUint64(index.n()));
        volatile double pair = index.EstimatePair(a, b);
        (void)pair;
        volatile double row = index.EstimateSingleSource(a)[b];
        (void)row;
      }
    });
  }
  std::thread compactor([&updater, &compact_path] {
    WalkIndex::SaveOptions save;
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE((*updater)->Compact(compact_path, save).ok());
    }
  });
  for (const auto& batch : stream) {
    ASSERT_TRUE((*updater)->ApplyUpdates(batch).ok());
  }
  compactor.join();
  (*updater)->DrainBackgroundCompaction();
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  auto rebuilt = WalkIndex::Build((*updater)->CurrentGraph(), options);
  ASSERT_TRUE(rebuilt.ok());
  ExpectRowsBitwiseEqual(AllRows(index), AllRows(*rebuilt));
}

}  // namespace
}  // namespace simrank
