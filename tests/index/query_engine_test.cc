#include "simrank/index/query_engine.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "simrank/core/naive.h"
#include "simrank/extra/topk.h"
#include "simrank/index/edge_update.h"
#include "simrank/index/index_updater.h"
#include "simrank/index/lru_cache.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

WalkIndex BuildIndex(const DiGraph& graph, uint32_t fingerprints = 256) {
  WalkIndexOptions options;
  options.num_fingerprints = fingerprints;
  auto index = WalkIndex::Build(graph, options);
  OIPSIM_CHECK(index.ok());
  return std::move(index).value();
}

TEST(ShardedLruCacheTest, EvictsLeastRecentlyUsedPerShard) {
  ShardedLruCache<int, int> cache(/*num_shards=*/1,
                                  /*capacity_per_shard=*/2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  ASSERT_TRUE(cache.Get(1).has_value());  // refresh 1; 2 becomes LRU
  cache.Put(3, 30);                       // evicts 2
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_TRUE(cache.Get(3).has_value());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ShardedLruCacheTest, PutRefreshesExistingKey) {
  ShardedLruCache<int, int> cache(2, 4);
  cache.Put(7, 1);
  cache.Put(7, 2);
  auto hit = cache.Get(7);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 2);
}

TEST(QueryEngineTest, PairMatchesIndexEstimate) {
  DiGraph graph = testing::RandomGraph(30, 120, 5);
  WalkIndex index = BuildIndex(graph, 64);
  QueryEngine engine(index);
  for (VertexId a = 0; a < graph.n(); a += 3) {
    for (VertexId b = 0; b < graph.n(); b += 4) {
      auto score = engine.Pair(a, b);
      ASSERT_TRUE(score.ok());
      EXPECT_DOUBLE_EQ(*score, index.EstimatePair(a, b));
    }
  }
}

TEST(QueryEngineTest, SingleSourceIsCachedAndStable) {
  DiGraph graph = testing::PaperExampleGraph();
  WalkIndex index = BuildIndex(graph, 64);
  QueryEngine engine(index);
  auto first = engine.SingleSource(3);
  ASSERT_TRUE(first.ok());
  auto second = engine.SingleSource(3);
  ASSERT_TRUE(second.ok());
  // Hit returns the identical cached row object.
  EXPECT_EQ(first->get(), second->get());
  EXPECT_GE(engine.cache_stats().hits, 1u);
  for (VertexId b = 0; b < graph.n(); ++b) {
    EXPECT_DOUBLE_EQ((**first)[b], index.EstimatePair(3, b));
  }
}

TEST(QueryEngineTest, PairIsServedFromCachedRow) {
  DiGraph graph = testing::PaperExampleGraph();
  WalkIndex index = BuildIndex(graph, 64);
  QueryEngine engine(index);
  ASSERT_TRUE(engine.SingleSource(2).ok());
  const auto misses_before = engine.cache_stats().misses;
  const auto hits_before = engine.cache_stats().hits;
  auto score = engine.Pair(2, 5);
  ASSERT_TRUE(score.ok());
  EXPECT_DOUBLE_EQ(*score, index.EstimatePair(2, 5));
  EXPECT_EQ(engine.cache_stats().hits, hits_before + 1);
  EXPECT_EQ(engine.cache_stats().misses, misses_before);
}

TEST(QueryEngineTest, TopKMatchesNaiveTopKOnPaperFixture) {
  // Acceptance criterion: the indexed top-5 for each vertex reproduces the
  // exact (naive) top-5 ordering within estimator tolerance. With 8192
  // fingerprints and the fixed seed this is deterministic.
  DiGraph graph = testing::PaperExampleGraph();
  SimRankOptions exact_options;
  exact_options.damping = 0.6;
  exact_options.iterations = 16;
  auto exact = NaiveSimRank(graph, exact_options);
  ASSERT_TRUE(exact.ok());

  WalkIndexOptions options;
  options.num_fingerprints = 8192;
  options.walk_length = 14;
  auto index = WalkIndex::Build(graph, options);
  ASSERT_TRUE(index.ok());
  QueryEngine engine(*index);

  constexpr uint32_t kK = 5;
  for (VertexId v = 0; v < graph.n(); ++v) {
    auto approx = engine.TopK(v, kK);
    ASSERT_TRUE(approx.ok());
    auto truth = TopKSimilar(*exact, v, kK);
    ASSERT_EQ(approx->size(), truth.size());
    for (size_t i = 0; i < truth.size(); ++i) {
      // Adjacent ranks separated by more than the estimator error must
      // appear in the exact order; estimated scores must track the exact
      // ones closely.
      EXPECT_NEAR((*approx)[i].score, truth[i].score, 0.05)
          << "query " << v << " rank " << i;
    }
    // The sets of returned ids must coincide whenever the k-th score is
    // separated from the (k+1)-th; on this fixture it always is, so demand
    // identical ordering outright.
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ((*approx)[i].vertex, truth[i].vertex)
          << "query " << v << " rank " << i;
    }
  }
}

TEST(QueryEngineTest, BatchMatchesSequentialQueries) {
  DiGraph graph = testing::RandomGraph(25, 100, 9);
  WalkIndex index = BuildIndex(graph, 64);
  QueryEngineOptions options;
  options.num_threads = 4;
  QueryEngine engine(index, options);

  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (VertexId a = 0; a < graph.n(); ++a) {
    pairs.emplace_back(a, (a * 7 + 3) % graph.n());
  }
  auto batch = engine.BatchPair(pairs);
  ASSERT_EQ(batch.size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_TRUE(batch[i].ok());
    EXPECT_DOUBLE_EQ(*batch[i],
                     index.EstimatePair(pairs[i].first, pairs[i].second));
  }

  std::vector<VertexId> sources = {0, 5, 10, 15, 20, 5, 0};
  auto batch_topk = engine.BatchTopK(sources, 4);
  ASSERT_EQ(batch_topk.size(), sources.size());
  QueryEngine sequential(index);
  for (size_t i = 0; i < sources.size(); ++i) {
    ASSERT_TRUE(batch_topk[i].ok());
    auto expected = sequential.TopK(sources[i], 4);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(*batch_topk[i], *expected) << "source " << sources[i];
  }
}

TEST(QueryEngineTest, OutOfRangeQueriesReturnErrors) {
  DiGraph graph = testing::PaperExampleGraph();
  WalkIndex index = BuildIndex(graph, 16);
  QueryEngine engine(index);
  EXPECT_EQ(engine.Pair(0, 99).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(engine.Pair(99, 0).status().code(), StatusCode::kOutOfRange);
  EXPECT_FALSE(engine.SingleSource(graph.n()).ok());
  EXPECT_FALSE(engine.TopK(graph.n(), 3).ok());
  auto batch = engine.BatchPair({{0, 1}, {0, 99}});
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_TRUE(batch[0].ok());
  EXPECT_FALSE(batch[1].ok());
}

TEST(QueryEngineTest, MmapBackedEngineAnswersIdentically) {
  // The engine must serve bit-identical answers whether the index is fully
  // resident or mmap-backed (the inverted single-source path is shared;
  // pair queries decode segments instead of reading the flat table).
  DiGraph graph = testing::RandomGraph(30, 120, 5);
  WalkIndex index = BuildIndex(graph, 64);
  const std::string path = ::testing::TempDir() + "/qe_mmap.widx";
  WalkIndex::SaveOptions save;
  save.compress = true;
  ASSERT_TRUE(index.Save(path, save).ok());
  WalkIndex::LoadOptions load;
  load.use_mmap = true;
  auto mapped = WalkIndex::Load(path, load);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_FALSE(mapped->has_resident_walks());

  QueryEngine resident_engine(index);
  QueryEngine mapped_engine(*mapped);
  for (VertexId v = 0; v < graph.n(); v += 3) {
    auto expected = resident_engine.TopK(v, 5);
    auto actual = mapped_engine.TopK(v, 5);
    ASSERT_TRUE(expected.ok() && actual.ok());
    EXPECT_EQ(*actual, *expected) << "source " << v;
  }
  for (VertexId a = 0; a < graph.n(); a += 4) {
    for (VertexId b = 0; b < graph.n(); b += 5) {
      auto expected = resident_engine.Pair(a, b);
      auto actual = mapped_engine.Pair(a, b);
      ASSERT_TRUE(expected.ok() && actual.ok());
      EXPECT_DOUBLE_EQ(*actual, *expected)
          << "pair (" << a << "," << b << ")";
    }
  }
}

TEST(QueryEngineTest, CacheEvictsUnderPressure) {
  DiGraph graph = testing::RandomGraph(40, 160, 3);
  WalkIndex index = BuildIndex(graph, 16);
  QueryEngineOptions options;
  options.cache_shards = 1;
  options.cache_capacity_per_shard = 2;
  QueryEngine engine(index, options);
  for (VertexId v = 0; v < 10; ++v) {
    ASSERT_TRUE(engine.SingleSource(v).ok());
  }
  EXPECT_GT(engine.cache_stats().evictions, 0u);
}

TEST(ShardedLruCacheTest, EraseRemovesOnlyTheKey) {
  ShardedLruCache<int, int> cache(2, 4);
  cache.Put(1, 10);
  cache.Put(2, 20);
  EXPECT_TRUE(cache.Erase(1));
  EXPECT_FALSE(cache.Erase(1));  // already gone
  EXPECT_FALSE(cache.Erase(99));
  EXPECT_FALSE(cache.Get(1).has_value());
  ASSERT_TRUE(cache.Get(2).has_value());
  EXPECT_EQ(cache.size(), 1u);
  // Erase is invalidation, not a lookup: hit/miss counters reflect only
  // the two Gets above.
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 2u);
}

TEST(ShardedLruCacheTest, ClearDropsEverythingKeepsCounters) {
  ShardedLruCache<int, int> cache(4, 2);
  for (int i = 0; i < 8; ++i) cache.Put(i, i);
  ASSERT_TRUE(cache.Get(7).has_value());
  const auto before = cache.stats();
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get(7).has_value());
  EXPECT_EQ(cache.stats().hits, before.hits);
  EXPECT_EQ(cache.stats().misses, before.misses + 1);
  // Reusable after the clear.
  cache.Put(1, 11);
  ASSERT_TRUE(cache.Get(1).has_value());
}

TEST(QueryEngineTest, StaleRowsReadAsMissesAfterOverlayPublish) {
  // The engine stamps cached rows with the overlay sequence; an update
  // makes every older row unservable even before any explicit
  // invalidation — the window between overlay swap and cache flush can
  // never serve a pre-update row.
  DiGraph graph = testing::RandomGraph(30, 120, 5);
  WalkIndex index = BuildIndex(graph, 32);
  QueryEngine engine(index);
  // Pick an absent edge whose insertion we will serve through.
  Edge fresh{0, 0};
  for (VertexId dst = 1; dst < graph.n(); ++dst) {
    if (!graph.HasEdge(0, dst)) {
      fresh = Edge{0, dst};
      break;
    }
  }
  ASSERT_NE(fresh.dst, 0u);
  // Cache the touched vertex's row pre-update.
  ASSERT_TRUE(engine.SingleSource(fresh.dst).ok());

  const std::string wal_path =
      ::testing::TempDir() + "query-engine-stale.wal";
  std::remove(wal_path.c_str());
  IndexUpdaterOptions updater_options;
  updater_options.wal_path = wal_path;
  auto updater = IndexUpdater::Open(index, graph, updater_options);
  ASSERT_TRUE(updater.ok());
  ASSERT_TRUE((*updater)
                  ->ApplyUpdates({{{EdgeUpdate::Op::kInsert, fresh.src,
                                    fresh.dst}}})
                  .ok());

  // Deliberately NO InvalidateCache(): the stale stamp alone must force a
  // recompute that matches a rebuilt index bitwise.
  auto rebuilt = WalkIndex::Build((*updater)->CurrentGraph(),
                                  index.options());
  ASSERT_TRUE(rebuilt.ok());
  auto served = engine.SingleSource(fresh.dst);
  ASSERT_TRUE(served.ok());
  const std::vector<double> expected =
      rebuilt->EstimateSingleSource(fresh.dst);
  ASSERT_EQ((*served)->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ((**served)[i], expected[i]) << "entry " << i;
  }
  // Pair served off cached rows obeys the same staleness rule.
  auto pair = engine.Pair(fresh.dst, fresh.src);
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(*pair, rebuilt->EstimatePair(fresh.dst, fresh.src));
}

TEST(QueryEngineTest, SequenceStaysMonotoneAcrossCancellingBatches) {
  // A batch that cancels every patch out must not reset the overlay
  // sequence: a row cached at sequence 1 would otherwise read as fresh
  // once a later batch re-used sequence 1.
  DiGraph graph = testing::RandomGraph(30, 120, 6);
  WalkIndex index = BuildIndex(graph, 32);
  QueryEngine engine(index);
  std::vector<Edge> fresh;
  for (VertexId src = 0; src < graph.n() && fresh.size() < 2; ++src) {
    for (VertexId dst = 0; dst < graph.n() && fresh.size() < 2; ++dst) {
      if (src != dst && !graph.HasEdge(src, dst)) {
        fresh.push_back(Edge{src, dst});
      }
    }
  }
  ASSERT_EQ(fresh.size(), 2u);

  const std::string wal_path =
      ::testing::TempDir() + "query-engine-monotone.wal";
  std::remove(wal_path.c_str());
  IndexUpdaterOptions updater_options;
  updater_options.wal_path = wal_path;
  auto updater = IndexUpdater::Open(index, graph, updater_options);
  ASSERT_TRUE(updater.ok());

  // Sequence 1: insert e; cache a row under it.
  ASSERT_TRUE((*updater)
                  ->ApplyUpdates({{{EdgeUpdate::Op::kInsert, fresh[0].src,
                                    fresh[0].dst}}})
                  .ok());
  ASSERT_TRUE(engine.SingleSource(fresh[1].dst).ok());
  // Sequence 2: delete e — patches cancel, overlay is empty but live.
  ASSERT_TRUE((*updater)
                  ->ApplyUpdates({{{EdgeUpdate::Op::kDelete, fresh[0].src,
                                    fresh[0].dst}}})
                  .ok());
  EXPECT_EQ(index.overlay_sequence(), 2u);
  // Sequence 3: insert f; the sequence-1 row must not be served.
  ASSERT_TRUE((*updater)
                  ->ApplyUpdates({{{EdgeUpdate::Op::kInsert, fresh[1].src,
                                    fresh[1].dst}}})
                  .ok());
  EXPECT_EQ(index.overlay_sequence(), 3u);
  auto rebuilt = WalkIndex::Build((*updater)->CurrentGraph(),
                                  index.options());
  ASSERT_TRUE(rebuilt.ok());
  auto served = engine.SingleSource(fresh[1].dst);
  ASSERT_TRUE(served.ok());
  const std::vector<double> expected =
      rebuilt->EstimateSingleSource(fresh[1].dst);
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ((**served)[i], expected[i]) << "entry " << i;
  }
}


}  // namespace
}  // namespace simrank
