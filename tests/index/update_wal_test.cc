#include "simrank/index/update_wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace simrank {
namespace {

WalBaseIdentity TestIdentity() {
  WalBaseIdentity identity;
  identity.n = 9;
  identity.num_fingerprints = 32;
  identity.walk_length = 6;
  identity.seed = 7;
  identity.damping = 0.6;
  identity.graph_fingerprint = 0x1234abcd5678ef00ull;
  return identity;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + name;
}

WalRecord MakeRecord(uint32_t salt) {
  WalRecord record;
  record.updates.push_back(EdgeUpdate{EdgeUpdate::Op::kInsert, salt, salt + 1});
  record.updates.push_back(
      EdgeUpdate{EdgeUpdate::Op::kDelete, salt + 2, salt});
  record.post_graph_fingerprint = 0x9999000011112222ull + salt;
  return record;
}

TEST(UpdateWalTest, AppendAndReplay) {
  const std::string path = TempPath("wal-roundtrip.wal");
  std::remove(path.c_str());
  {
    auto opened = UpdateWal::Open(path, TestIdentity(), {});
    ASSERT_TRUE(opened.ok());
    EXPECT_TRUE(opened->records.empty());
    EXPECT_EQ(opened->truncated_bytes, 0u);
    ASSERT_TRUE(opened->wal.Append(MakeRecord(1)).ok());
    ASSERT_TRUE(opened->wal.Append(MakeRecord(10)).ok());
    EXPECT_EQ(opened->wal.record_count(), 2u);
  }
  auto reopened = UpdateWal::Open(path, TestIdentity(), {});
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->truncated_bytes, 0u);
  ASSERT_EQ(reopened->records.size(), 2u);
  EXPECT_EQ(reopened->records[0].updates, MakeRecord(1).updates);
  EXPECT_EQ(reopened->records[0].post_graph_fingerprint,
            MakeRecord(1).post_graph_fingerprint);
  EXPECT_EQ(reopened->records[1].updates, MakeRecord(10).updates);
}

TEST(UpdateWalTest, RejectsForeignIdentity) {
  const std::string path = TempPath("wal-identity.wal");
  std::remove(path.c_str());
  {
    auto opened = UpdateWal::Open(path, TestIdentity(), {});
    ASSERT_TRUE(opened.ok());
  }
  WalBaseIdentity other = TestIdentity();
  other.graph_fingerprint ^= 1;
  auto mismatch = UpdateWal::Open(path, other, {});
  EXPECT_FALSE(mismatch.ok());
  EXPECT_NE(mismatch.status().message().find("different index"),
            std::string::npos);
}

TEST(UpdateWalTest, TornTailIsDroppedAndPrefixSurvives) {
  const std::string path = TempPath("wal-torn.wal");
  std::remove(path.c_str());
  uint64_t full_size = 0;
  {
    auto opened = UpdateWal::Open(path, TestIdentity(), {});
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(opened->wal.Append(MakeRecord(1)).ok());
    full_size = opened->wal.size_bytes();
    ASSERT_TRUE(opened->wal.Append(MakeRecord(2)).ok());
  }
  // Simulate a crash mid-append: truncate the second record in half.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string bytes;
    char chunk[4096];
    size_t got = 0;
    while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
      bytes.append(chunk, got);
    }
    std::fclose(f);
    ASSERT_GT(bytes.size(), full_size);
    const size_t torn = full_size + (bytes.size() - full_size) / 2;
    f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, torn, f), torn);
    std::fclose(f);
  }
  auto reopened = UpdateWal::Open(path, TestIdentity(), {});
  ASSERT_TRUE(reopened.ok());
  EXPECT_GT(reopened->truncated_bytes, 0u);
  ASSERT_EQ(reopened->records.size(), 1u);
  EXPECT_EQ(reopened->records[0].updates, MakeRecord(1).updates);
  // The torn bytes are gone from disk too: appending after the replayed
  // prefix yields a clean two-record log.
  ASSERT_TRUE(reopened->wal.Append(MakeRecord(3)).ok());
  auto final_open = UpdateWal::Open(path, TestIdentity(), {});
  ASSERT_TRUE(final_open.ok());
  EXPECT_EQ(final_open->truncated_bytes, 0u);
  ASSERT_EQ(final_open->records.size(), 2u);
  EXPECT_EQ(final_open->records[1].updates, MakeRecord(3).updates);
}

TEST(UpdateWalTest, CorruptedRecordByteIsATornTail) {
  const std::string path = TempPath("wal-flip.wal");
  std::remove(path.c_str());
  {
    auto opened = UpdateWal::Open(path, TestIdentity(), {});
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(opened->wal.Append(MakeRecord(5)).ok());
  }
  // Flip one payload byte of the record; the checksum must catch it.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 64 + 20, SEEK_SET), 0);  // inside the record
    const char flip = 0x5a;
    ASSERT_EQ(std::fwrite(&flip, 1, 1, f), 1u);
    std::fclose(f);
  }
  auto reopened = UpdateWal::Open(path, TestIdentity(), {});
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened->records.empty());
  EXPECT_GT(reopened->truncated_bytes, 0u);
}

TEST(UpdateWalTest, ResetRebindsIdentity) {
  const std::string path = TempPath("wal-reset.wal");
  std::remove(path.c_str());
  WalBaseIdentity compacted = TestIdentity();
  compacted.graph_fingerprint = 0xfeedfacecafebeefull;
  {
    auto opened = UpdateWal::Open(path, TestIdentity(), {});
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(opened->wal.Append(MakeRecord(1)).ok());
    ASSERT_TRUE(opened->wal.Reset(compacted).ok());
    EXPECT_EQ(opened->wal.record_count(), 0u);
    // Post-reset appends land against the new identity.
    ASSERT_TRUE(opened->wal.Append(MakeRecord(9)).ok());
  }
  // The old identity no longer opens it; the compacted one does.
  EXPECT_FALSE(UpdateWal::Open(path, TestIdentity(), {}).ok());
  auto reopened = UpdateWal::Open(path, compacted, {});
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened->records.size(), 1u);
  EXPECT_EQ(reopened->records[0].updates, MakeRecord(9).updates);
}

TEST(UpdateWalTest, GarbageFileIsRejected) {
  const std::string path = TempPath("wal-garbage.wal");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char garbage[] = "this is not a WAL at all, but long enough......"
                         "................................";
  ASSERT_EQ(std::fwrite(garbage, 1, sizeof(garbage), f), sizeof(garbage));
  std::fclose(f);
  EXPECT_FALSE(UpdateWal::Open(path, TestIdentity(), {}).ok());
}

}  // namespace
}  // namespace simrank
