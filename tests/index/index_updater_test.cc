#include "simrank/index/index_updater.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "simrank/graph/graph_io.h"
#include "simrank/index/edge_update.h"
#include "simrank/index/query_engine.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

WalkIndexOptions SmallOptions() {
  WalkIndexOptions options;
  options.num_fingerprints = 48;
  options.walk_length = 6;
  options.damping = 0.6;
  return options;
}

/// Builds, saves with `compress`, reloads through the chosen backend — the
/// load-then-update paths the updater must serve.
WalkIndex BuildSaveLoad(const DiGraph& graph, const WalkIndexOptions& options,
                        bool compress, bool use_mmap,
                        const std::string& tag) {
  auto built = WalkIndex::Build(graph, options);
  OIPSIM_CHECK(built.ok());
  const std::string path = TempPath("updater-" + tag + ".widx");
  WalkIndex::SaveOptions save;
  save.compress = compress;
  OIPSIM_CHECK(built->Save(path, save).ok());
  WalkIndex::LoadOptions load;
  load.use_mmap = use_mmap;
  auto loaded = WalkIndex::Load(path, load);
  OIPSIM_CHECK(loaded.ok());
  return std::move(loaded).value();
}

/// Asserts every query shape against `index` (with its published overlay)
/// is bitwise identical to the freshly `rebuilt` index.
void ExpectBitwiseEquivalent(const WalkIndex& index,
                             const WalkIndex& rebuilt) {
  const uint32_t n = index.n();
  for (VertexId v = 0; v < n; ++v) {
    const std::vector<double> patched = index.EstimateSingleSource(v);
    const std::vector<double> fresh = rebuilt.EstimateSingleSource(v);
    ASSERT_EQ(patched.size(), fresh.size());
    ASSERT_EQ(std::memcmp(patched.data(), fresh.data(),
                          patched.size() * sizeof(double)),
              0)
        << "single-source row of " << v << " diverges from rebuild";
    if (index.has_resident_walks()) {
      const std::vector<double> scan = index.EstimateSingleSourceScan(v);
      ASSERT_EQ(std::memcmp(patched.data(), scan.data(),
                            patched.size() * sizeof(double)),
                0)
          << "scan and inverted paths disagree under overlay at " << v;
    }
    for (VertexId b = 0; b < n; ++b) {
      const double pair = index.EstimatePair(v, b);
      const double fresh_pair = rebuilt.EstimatePair(v, b);
      ASSERT_EQ(std::memcmp(&pair, &fresh_pair, sizeof(double)), 0)
          << "pair (" << v << ", " << b << ") diverges from rebuild";
    }
  }
}

/// `count` edges absent from `graph` (self-loops excluded), so strict
/// insert validation holds on any fixture.
std::vector<Edge> FreshEdges(const DiGraph& graph, size_t count) {
  std::vector<Edge> fresh;
  for (VertexId src = 0; src < graph.n() && fresh.size() < count; ++src) {
    for (VertexId dst = graph.n(); dst-- > 0 && fresh.size() < count;) {
      if (src != dst && !graph.HasEdge(src, dst)) {
        fresh.push_back(Edge{src, dst});
      }
    }
  }
  OIPSIM_CHECK_EQ(fresh.size(), count);
  return fresh;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  OIPSIM_CHECK(f != nullptr);
  std::vector<uint8_t> bytes;
  char chunk[4096];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  std::fclose(f);
  return bytes;
}

struct BackendParam {
  bool compress;
  bool use_mmap;
};

class IndexUpdaterBackendTest
    : public ::testing::TestWithParam<BackendParam> {};

INSTANTIATE_TEST_SUITE_P(
    Backends, IndexUpdaterBackendTest,
    ::testing::Values(BackendParam{false, false}, BackendParam{true, false},
                      BackendParam{false, true}, BackendParam{true, true}),
    [](const ::testing::TestParamInfo<BackendParam>& info) {
      return std::string(info.param.compress ? "Compressed" : "Raw") +
             (info.param.use_mmap ? "Mmap" : "InMemory");
    });

TEST_P(IndexUpdaterBackendTest, UpdateThenQueryEqualsRebuildThenQuery) {
  const DiGraph graph = testing::RandomGraph(40, 160, 3);
  const WalkIndexOptions options = SmallOptions();
  const std::string tag =
      std::string(GetParam().compress ? "c" : "r") +
      (GetParam().use_mmap ? "m" : "i");
  WalkIndex index = BuildSaveLoad(graph, options, GetParam().compress,
                                  GetParam().use_mmap, tag);

  const std::string wal_path = TempPath("updater-equiv-" + tag + ".wal");
  std::remove(wal_path.c_str());
  IndexUpdaterOptions updater_options;
  updater_options.wal_path = wal_path;
  auto updater = IndexUpdater::Open(index, graph, updater_options);
  ASSERT_TRUE(updater.ok()) << updater.status().ToString();

  // Three batches: inserts, deletes, and a mix touching the same region.
  // Fresh edges are picked by scanning so the strict validation holds on
  // any fixture graph.
  const std::vector<Edge> fresh = FreshEdges(graph, 3);
  const std::vector<std::vector<EdgeUpdate>> batches = {
      {{EdgeUpdate::Op::kInsert, fresh[0].src, fresh[0].dst},
       {EdgeUpdate::Op::kInsert, fresh[1].src, fresh[1].dst}},
      {{EdgeUpdate::Op::kDelete, graph.Edges()[3].src,
        graph.Edges()[3].dst}},
      {{EdgeUpdate::Op::kInsert, fresh[2].src, fresh[2].dst},
       {EdgeUpdate::Op::kDelete, fresh[0].src, fresh[0].dst}},
  };
  for (const auto& batch : batches) {
    ASSERT_TRUE((*updater)->ApplyUpdates(batch).ok());
    auto rebuilt = WalkIndex::Build((*updater)->CurrentGraph(), options);
    ASSERT_TRUE(rebuilt.ok());
    ExpectBitwiseEquivalent(index, *rebuilt);
    EXPECT_EQ(index.overlay_sequence(), (*updater)->stats().overlay_sequence);
  }

  // Compact must be byte-identical to a fresh save of the rebuilt index,
  // for the encoding the base file used.
  auto rebuilt = WalkIndex::Build((*updater)->CurrentGraph(), options);
  ASSERT_TRUE(rebuilt.ok());
  const std::string compacted = TempPath("updater-compact-" + tag + ".widx");
  const std::string fresh_path = TempPath("updater-fresh-" + tag + ".widx");
  WalkIndex::SaveOptions save;
  save.compress = GetParam().compress;
  ASSERT_TRUE((*updater)->Compact(compacted, save).ok());
  ASSERT_TRUE(rebuilt->Save(fresh_path, save).ok());
  EXPECT_EQ(ReadFileBytes(compacted), ReadFileBytes(fresh_path));
}

TEST(IndexUpdaterTest, DeadWalksReviveAndDie) {
  // In the paper graph f, g, i have no in-neighbours: every walk reaching
  // them dies. Giving f an in-edge revives those walks; deleting it kills
  // them again — both must match a rebuild exactly.
  const DiGraph graph = testing::PaperExampleGraph();
  WalkIndexOptions options = SmallOptions();
  auto built = WalkIndex::Build(graph, options);
  ASSERT_TRUE(built.ok());
  WalkIndex index = std::move(built).value();

  const std::string wal_path = TempPath("updater-revive.wal");
  std::remove(wal_path.c_str());
  IndexUpdaterOptions updater_options;
  updater_options.wal_path = wal_path;
  auto updater = IndexUpdater::Open(index, graph, updater_options);
  ASSERT_TRUE(updater.ok());

  ASSERT_TRUE(
      (*updater)
          ->ApplyUpdates({{{EdgeUpdate::Op::kInsert, testing::kA,
                            testing::kF}}})
          .ok());
  auto revived = WalkIndex::Build((*updater)->CurrentGraph(), options);
  ASSERT_TRUE(revived.ok());
  ExpectBitwiseEquivalent(index, *revived);

  ASSERT_TRUE(
      (*updater)
          ->ApplyUpdates({{{EdgeUpdate::Op::kDelete, testing::kA,
                            testing::kF}}})
          .ok());
  auto killed = WalkIndex::Build((*updater)->CurrentGraph(), options);
  ASSERT_TRUE(killed.ok());
  ExpectBitwiseEquivalent(index, *killed);
  // The graph is back to the original and every patch cancelled out — but
  // the (empty) overlay still publishes with an advanced sequence, so
  // rows cached under intermediate overlays can never read as fresh.
  EXPECT_EQ((*updater)->stats().patched_vertices, 0u);
  auto overlay = index.overlay_snapshot();
  ASSERT_NE(overlay, nullptr);
  EXPECT_EQ(overlay->sequence(), 2u);
  EXPECT_EQ(overlay->patched_walk_count(), 0u);
  EXPECT_EQ(overlay->changed_slot_count(), 0u);
  EXPECT_EQ(index.overlay_sequence(), 2u);
}

TEST(IndexUpdaterTest, WalReplayRestoresOverlayAfterRestart) {
  const DiGraph graph = testing::RandomGraph(30, 120, 9);
  const WalkIndexOptions options = SmallOptions();
  const std::string wal_path = TempPath("updater-replay.wal");
  std::remove(wal_path.c_str());

  const std::vector<Edge> fresh = FreshEdges(graph, 2);
  const std::vector<EdgeUpdate> batch1 = {
      {EdgeUpdate::Op::kInsert, fresh[0].src, fresh[0].dst}};
  const std::vector<EdgeUpdate> batch2 = {
      {EdgeUpdate::Op::kDelete, fresh[0].src, fresh[0].dst},
      {EdgeUpdate::Op::kInsert, fresh[1].src, fresh[1].dst}};

  // Session 1: apply two batches, then "crash" (drop everything).
  {
    auto built = WalkIndex::Build(graph, options);
    ASSERT_TRUE(built.ok());
    WalkIndex index = std::move(built).value();
    IndexUpdaterOptions updater_options;
    updater_options.wal_path = wal_path;
    auto updater = IndexUpdater::Open(index, graph, updater_options);
    ASSERT_TRUE(updater.ok());
    ASSERT_TRUE((*updater)->ApplyUpdates(batch1).ok());
    ASSERT_TRUE((*updater)->ApplyUpdates(batch2).ok());
  }

  // Session 2: a fresh index + WAL replay serves the updated state.
  auto built = WalkIndex::Build(graph, options);
  ASSERT_TRUE(built.ok());
  WalkIndex index = std::move(built).value();
  IndexUpdaterOptions updater_options;
  updater_options.wal_path = wal_path;
  auto updater = IndexUpdater::Open(index, graph, updater_options);
  ASSERT_TRUE(updater.ok());
  EXPECT_EQ((*updater)->stats().batches_replayed, 2u);
  EXPECT_EQ(index.overlay_sequence(), 2u);

  auto expected_graph = ApplyEdgeUpdates(graph, batch1);
  ASSERT_TRUE(expected_graph.ok());
  expected_graph = ApplyEdgeUpdates(*expected_graph, batch2);
  ASSERT_TRUE(expected_graph.ok());
  auto rebuilt = WalkIndex::Build(*expected_graph, options);
  ASSERT_TRUE(rebuilt.ok());
  ExpectBitwiseEquivalent(index, *rebuilt);
}

TEST(IndexUpdaterTest, TruncatedWalReplaysOnlyCompleteBatches) {
  const DiGraph graph = testing::RandomGraph(30, 120, 9);
  const WalkIndexOptions options = SmallOptions();
  const std::string wal_path = TempPath("updater-torn.wal");
  std::remove(wal_path.c_str());

  const std::vector<Edge> fresh = FreshEdges(graph, 2);
  const std::vector<EdgeUpdate> batch1 = {
      {EdgeUpdate::Op::kInsert, fresh[0].src, fresh[0].dst}};
  uint64_t after_first = 0;
  {
    auto built = WalkIndex::Build(graph, options);
    ASSERT_TRUE(built.ok());
    WalkIndex index = std::move(built).value();
    IndexUpdaterOptions updater_options;
    updater_options.wal_path = wal_path;
    auto updater = IndexUpdater::Open(index, graph, updater_options);
    ASSERT_TRUE(updater.ok());
    ASSERT_TRUE((*updater)->ApplyUpdates(batch1).ok());
    after_first = (*updater)->stats().wal_bytes;
    ASSERT_TRUE(
        (*updater)
            ->ApplyUpdates(
                {{{EdgeUpdate::Op::kInsert, fresh[1].src, fresh[1].dst}}})
            .ok());
  }
  // Tear the second record mid-write.
  {
    const std::vector<uint8_t> bytes = ReadFileBytes(wal_path);
    ASSERT_GT(bytes.size(), after_first);
    const size_t torn = after_first + (bytes.size() - after_first) / 2;
    std::FILE* f = std::fopen(wal_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, torn, f), torn);
    std::fclose(f);
  }
  auto built = WalkIndex::Build(graph, options);
  ASSERT_TRUE(built.ok());
  WalkIndex index = std::move(built).value();
  IndexUpdaterOptions updater_options;
  updater_options.wal_path = wal_path;
  auto updater = IndexUpdater::Open(index, graph, updater_options);
  ASSERT_TRUE(updater.ok());
  EXPECT_EQ((*updater)->stats().batches_replayed, 1u);
  EXPECT_GT((*updater)->stats().wal_truncated_bytes, 0u);

  auto expected_graph = ApplyEdgeUpdates(graph, batch1);
  ASSERT_TRUE(expected_graph.ok());
  auto rebuilt = WalkIndex::Build(*expected_graph, options);
  ASSERT_TRUE(rebuilt.ok());
  ExpectBitwiseEquivalent(index, *rebuilt);
}

TEST(IndexUpdaterTest, CompactWithResetRebindsTheWal) {
  const DiGraph graph = testing::RandomGraph(25, 90, 4);
  const WalkIndexOptions options = SmallOptions();
  const std::string wal_path = TempPath("updater-compact-reset.wal");
  const std::string compacted = TempPath("updater-compact-reset.widx");
  std::remove(wal_path.c_str());

  DiGraph updated_graph;
  {
    auto built = WalkIndex::Build(graph, options);
    ASSERT_TRUE(built.ok());
    WalkIndex index = std::move(built).value();
    IndexUpdaterOptions updater_options;
    updater_options.wal_path = wal_path;
    auto updater = IndexUpdater::Open(index, graph, updater_options);
    ASSERT_TRUE(updater.ok());
    const std::vector<Edge> fresh = FreshEdges(graph, 1);
    ASSERT_TRUE(
        (*updater)
            ->ApplyUpdates({{{EdgeUpdate::Op::kInsert, fresh[0].src,
                              fresh[0].dst}}})
            .ok());
    ASSERT_TRUE((*updater)
                    ->Compact(compacted, WalkIndex::SaveOptions{},
                              /*reset_wal=*/true)
                    .ok());
    updated_graph = (*updater)->CurrentGraph();
  }

  // The compacted file + reset WAL form a consistent restart pair.
  auto loaded = WalkIndex::Load(compacted);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded->ValidateGraph(updated_graph).ok());
  IndexUpdaterOptions updater_options;
  updater_options.wal_path = wal_path;
  auto updater =
      IndexUpdater::Open(*loaded, updated_graph, updater_options);
  ASSERT_TRUE(updater.ok()) << updater.status().ToString();
  EXPECT_EQ((*updater)->stats().batches_replayed, 0u);

  // The *base* graph no longer matches the reset WAL.
  auto built = WalkIndex::Build(graph, options);
  ASSERT_TRUE(built.ok());
  WalkIndex base_index = std::move(built).value();
  auto stale = IndexUpdater::Open(base_index, graph, updater_options);
  EXPECT_FALSE(stale.ok());
}

TEST(IndexUpdaterTest, OpenValidation) {
  const DiGraph graph = testing::RandomGraph(20, 60, 2);
  const DiGraph other = testing::RandomGraph(20, 60, 5);
  auto built = WalkIndex::Build(graph, SmallOptions());
  ASSERT_TRUE(built.ok());
  WalkIndex index = std::move(built).value();

  IndexUpdaterOptions no_wal;
  EXPECT_FALSE(IndexUpdater::Open(index, graph, no_wal).ok());

  IndexUpdaterOptions updater_options;
  updater_options.wal_path = TempPath("updater-validate.wal");
  std::remove(updater_options.wal_path.c_str());
  EXPECT_FALSE(IndexUpdater::Open(index, other, updater_options).ok());

  auto updater = IndexUpdater::Open(index, graph, updater_options);
  ASSERT_TRUE(updater.ok());
  const std::vector<Edge> fresh = FreshEdges(graph, 1);
  ASSERT_TRUE((*updater)
                  ->ApplyUpdates({{{EdgeUpdate::Op::kInsert, fresh[0].src,
                                    fresh[0].dst}}})
                  .ok());
  // A second updater on an index that already carries an overlay.
  EXPECT_FALSE(
      IndexUpdater::Open(index, (*updater)->CurrentGraph(), updater_options)
          .ok());

  // Empty batches and invalid updates are rejected without side effects.
  const IndexUpdateStats before = (*updater)->stats();
  EXPECT_FALSE((*updater)->ApplyUpdates({}).ok());
  EXPECT_FALSE((*updater)
                   ->ApplyUpdates({{{EdgeUpdate::Op::kInsert, fresh[0].src,
                                     fresh[0].dst}}})
                   .ok());  // duplicate edge
  EXPECT_EQ((*updater)->stats().batches_applied, before.batches_applied);
  EXPECT_EQ(index.overlay_sequence(), before.overlay_sequence);
}

TEST(IndexUpdaterTest, ConcurrentQueriesDuringUpdatesAreSafe) {
  // Readers hammer the engine while a writer applies batches; TSan is the
  // real assertion here, plus: rows served mid-update must equal either
  // the pre- or some post-batch state (they are snapshots, never blends),
  // and the final state must equal a rebuild.
  const DiGraph graph = testing::RandomGraph(32, 128, 8);
  WalkIndexOptions options = SmallOptions();
  options.num_fingerprints = 24;
  auto built = WalkIndex::Build(graph, options);
  ASSERT_TRUE(built.ok());
  WalkIndex index = std::move(built).value();
  QueryEngine engine(index);

  const std::string wal_path = TempPath("updater-concurrent.wal");
  std::remove(wal_path.c_str());
  IndexUpdaterOptions updater_options;
  updater_options.wal_path = wal_path;
  auto updater = IndexUpdater::Open(index, graph, updater_options);
  ASSERT_TRUE(updater.ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int reader = 0; reader < 3; ++reader) {
    readers.emplace_back([&engine, &stop, reader] {
      uint32_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto v = static_cast<VertexId>((reader * 11 + i) % 32);
        auto row = engine.SingleSource(v);
        ASSERT_TRUE(row.ok());
        auto pair = engine.Pair(v, static_cast<VertexId>((v + 7) % 32));
        ASSERT_TRUE(pair.ok());
        ++i;
      }
    });
  }

  const std::vector<Edge> fresh = FreshEdges(graph, 3);
  const std::vector<std::vector<EdgeUpdate>> batches = {
      {{EdgeUpdate::Op::kInsert, fresh[0].src, fresh[0].dst}},
      {{EdgeUpdate::Op::kInsert, fresh[1].src, fresh[1].dst}},
      {{EdgeUpdate::Op::kDelete, fresh[0].src, fresh[0].dst}},
      {{EdgeUpdate::Op::kInsert, fresh[2].src, fresh[2].dst}},
  };
  for (const auto& batch : batches) {
    ASSERT_TRUE((*updater)->ApplyUpdates(batch).ok());
    engine.InvalidateCache();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  auto rebuilt = WalkIndex::Build((*updater)->CurrentGraph(), options);
  ASSERT_TRUE(rebuilt.ok());
  ExpectBitwiseEquivalent(index, *rebuilt);
  // Post-update queries through the engine see the new state.
  QueryEngine fresh_engine(*rebuilt);
  for (VertexId v = 0; v < 32; v += 5) {
    auto served = engine.SingleSource(v);
    auto expected = fresh_engine.SingleSource(v);
    ASSERT_TRUE(served.ok());
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(std::memcmp((*served)->data(), (*expected)->data(),
                          (*served)->size() * sizeof(double)),
              0);
  }
}

}  // namespace
}  // namespace simrank
