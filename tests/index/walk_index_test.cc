#include "simrank/index/walk_index.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "simrank/core/naive.h"
#include "simrank/extra/montecarlo.h"
#include "simrank/graph/graph_io.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(WalkIndexOptionsTest, FromAccuracyMeetsTheInverseHoeffdingBound) {
  for (double eps : {0.2, 0.1, 0.05}) {
    for (double delta : {0.1, 0.01, 1e-3}) {
      WalkIndexOptions options = WalkIndexOptions::FromAccuracy(eps, delta);
      ASSERT_TRUE(options.Valid()) << "eps=" << eps << " delta=" << delta;
      // The derived R must make the Hoeffding failure probability for a
      // deviation of eps/2 at most delta...
      const double failure_prob =
          2.0 * std::exp(-2.0 * options.num_fingerprints *
                         (eps / 2.0) * (eps / 2.0));
      EXPECT_LE(failure_prob, delta);
      // ...and be minimal up to the ceiling: one fingerprint fewer breaks
      // the bound.
      const double failure_prob_minus_one =
          2.0 * std::exp(-2.0 * (options.num_fingerprints - 1.0) *
                         (eps / 2.0) * (eps / 2.0));
      EXPECT_GT(failure_prob_minus_one, delta);
      // The walk length must keep the truncation bias inside the other
      // half of the budget, again minimally.
      const double c = options.damping;
      const double bias =
          std::pow(c, options.walk_length + 1.0) / (1.0 - c);
      EXPECT_LE(bias, eps / 2.0);
      if (options.walk_length > 1) {
        EXPECT_GT(std::pow(c, static_cast<double>(options.walk_length)) /
                      (1.0 - c),
                  eps / 2.0);
      }
    }
  }
}

TEST(WalkIndexOptionsTest, FromAccuracyCarriesModelOptionsAndTightens) {
  SimRankOptions simrank;
  simrank.damping = 0.8;
  simrank.seed = 99;
  WalkIndexOptions options = WalkIndexOptions::FromAccuracy(0.1, 0.01,
                                                            simrank);
  EXPECT_DOUBLE_EQ(options.damping, 0.8);
  EXPECT_EQ(options.seed, 99u);
  // Smaller eps and slower-decaying damping both demand more work.
  WalkIndexOptions tighter = WalkIndexOptions::FromAccuracy(0.05, 0.01,
                                                            simrank);
  EXPECT_GT(tighter.num_fingerprints, options.num_fingerprints);
  EXPECT_GE(tighter.walk_length, options.walk_length);
  WalkIndexOptions default_damping = WalkIndexOptions::FromAccuracy(0.1);
  EXPECT_LT(default_damping.walk_length, options.walk_length);
}

TEST(WalkIndexOptionsTest, FromAccuracyRejectsUnusableTargets) {
  EXPECT_FALSE(WalkIndexOptions::FromAccuracy(0.0, 0.01).Valid());
  EXPECT_FALSE(WalkIndexOptions::FromAccuracy(1.5, 0.01).Valid());
  EXPECT_FALSE(WalkIndexOptions::FromAccuracy(0.1, 0.0).Valid());
  EXPECT_FALSE(WalkIndexOptions::FromAccuracy(0.1, 1.0).Valid());
}

TEST(WalkIndexOptionsTest, FromAccuracyRejectsUnprovisionableTargets) {
  // eps small enough that R > UINT32_MAX: rejected, not silently wrapped.
  EXPECT_FALSE(WalkIndexOptions::FromAccuracy(2e-5, 0.01).Valid());
  // Damping so close to 1 that no capped walk length meets the eps/2
  // truncation budget: rejected, not silently biased.
  SimRankOptions near_one;
  near_one.damping = 0.9999;
  EXPECT_FALSE(WalkIndexOptions::FromAccuracy(0.05, 0.01, near_one).Valid());
}

TEST(WalkIndexTest, BuildRejectsInvalidOptions) {
  DiGraph graph = testing::PaperExampleGraph();
  WalkIndexOptions options;
  options.num_fingerprints = 0;
  EXPECT_FALSE(WalkIndex::Build(graph, options).ok());
  options = WalkIndexOptions{};
  options.damping = 1.0;
  EXPECT_FALSE(WalkIndex::Build(graph, options).ok());
}

TEST(WalkIndexTest, DiagonalAndRangeInvariants) {
  DiGraph graph = testing::PaperExampleGraph();
  WalkIndexOptions options;
  options.num_fingerprints = 64;
  auto index = WalkIndex::Build(graph, options);
  ASSERT_TRUE(index.ok());
  for (VertexId a = 0; a < graph.n(); ++a) {
    EXPECT_DOUBLE_EQ(index->EstimatePair(a, a), 1.0);
    for (VertexId b = 0; b < graph.n(); ++b) {
      const double estimate = index->EstimatePair(a, b);
      EXPECT_GE(estimate, 0.0);
      EXPECT_LE(estimate, 1.0);
      EXPECT_DOUBLE_EQ(estimate, index->EstimatePair(b, a));
    }
  }
}

TEST(WalkIndexTest, DeterministicAcrossThreadCounts) {
  DiGraph graph = testing::RandomGraph(50, 200, 11);
  WalkIndexOptions options;
  options.num_fingerprints = 32;
  options.num_threads = 1;
  auto serial = WalkIndex::Build(graph, options);
  options.num_threads = 4;
  auto parallel = WalkIndex::Build(graph, options);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  // Same estimates everywhere...
  for (VertexId a = 0; a < graph.n(); ++a) {
    for (VertexId b = 0; b < graph.n(); ++b) {
      EXPECT_DOUBLE_EQ(serial->EstimatePair(a, b),
                       parallel->EstimatePair(a, b));
    }
  }
  // ...and bit-identical serialized artefacts.
  const std::string p1 = TempPath("widx_serial.widx");
  const std::string p2 = TempPath("widx_parallel.widx");
  ASSERT_TRUE(serial->Save(p1).ok());
  ASSERT_TRUE(parallel->Save(p2).ok());
  EXPECT_EQ(ReadFileBytes(p1), ReadFileBytes(p2));
}

TEST(WalkIndexTest, SaveLoadRoundTripsBitIdentically) {
  DiGraph graph = testing::OverlappyGraph(60, 4, 13);
  WalkIndexOptions options;
  options.num_fingerprints = 48;
  options.walk_length = 9;
  options.damping = 0.7;
  options.seed = 99;
  auto built = WalkIndex::Build(graph, options);
  ASSERT_TRUE(built.ok());
  const std::string p1 = TempPath("widx_roundtrip1.widx");
  ASSERT_TRUE(built->Save(p1).ok());

  auto loaded = WalkIndex::Load(p1);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->n(), graph.n());
  EXPECT_EQ(loaded->options().num_fingerprints, options.num_fingerprints);
  EXPECT_EQ(loaded->options().walk_length, options.walk_length);
  EXPECT_DOUBLE_EQ(loaded->options().damping, options.damping);
  EXPECT_EQ(loaded->options().seed, options.seed);
  EXPECT_EQ(loaded->graph_fingerprint(), built->graph_fingerprint());

  // Re-saving the loaded index reproduces the file byte-for-byte.
  const std::string p2 = TempPath("widx_roundtrip2.widx");
  ASSERT_TRUE(loaded->Save(p2).ok());
  EXPECT_EQ(ReadFileBytes(p1), ReadFileBytes(p2));

  for (VertexId a = 0; a < graph.n(); ++a) {
    for (VertexId b = 0; b < graph.n(); ++b) {
      EXPECT_DOUBLE_EQ(loaded->EstimatePair(a, b),
                       built->EstimatePair(a, b));
    }
  }
}

TEST(WalkIndexTest, ValidateGraphDetectsMismatch) {
  DiGraph graph = testing::PaperExampleGraph();
  WalkIndexOptions options;
  options.num_fingerprints = 8;
  auto index = WalkIndex::Build(graph, options);
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(index->ValidateGraph(graph).ok());
  // Different vertex count.
  EXPECT_FALSE(index->ValidateGraph(testing::RandomGraph(12, 30, 1)).ok());
  // Same n, different edges.
  DiGraph::Builder builder(graph.n());
  builder.AddEdge(0, 1);
  EXPECT_FALSE(
      index->ValidateGraph(std::move(builder).Build()).ok());
}

TEST(WalkIndexTest, LoadRejectsMissingCorruptAndTamperedFiles) {
  EXPECT_FALSE(WalkIndex::Load("/no/such/index.widx").ok());

  const std::string garbage_path = TempPath("widx_garbage.widx");
  {
    std::ofstream out(garbage_path, std::ios::binary);
    out << "definitely not an index";
  }
  EXPECT_FALSE(WalkIndex::Load(garbage_path).ok());

  DiGraph graph = testing::PaperExampleGraph();
  WalkIndexOptions options;
  options.num_fingerprints = 8;
  auto index = WalkIndex::Build(graph, options);
  ASSERT_TRUE(index.ok());
  const std::string path = TempPath("widx_tampered.widx");
  ASSERT_TRUE(index->Save(path).ok());

  // Truncation inside the payload.
  std::string bytes = ReadFileBytes(path);
  const std::string truncated_path = TempPath("widx_truncated.widx");
  {
    std::ofstream out(truncated_path, std::ios::binary);
    out.write(bytes.data(), static_cast<int64_t>(bytes.size() / 2));
  }
  EXPECT_FALSE(WalkIndex::Load(truncated_path).ok());

  // A single flipped payload byte must fail the checksum.
  bytes[bytes.size() / 2] ^= 0x40;
  const std::string flipped_path = TempPath("widx_flipped.widx");
  {
    std::ofstream out(flipped_path, std::ios::binary);
    out.write(bytes.data(), static_cast<int64_t>(bytes.size()));
  }
  EXPECT_FALSE(WalkIndex::Load(flipped_path).ok());
}

TEST(WalkIndexTest, LoadRejectsV1FilesByVersionNotChecksum) {
  // A well-formed v1 header (the retired flat format: magic, version 1,
  // dimensions, payload, trailing checksum). v2 readers must reject it on
  // the version word — with a message naming both versions — before ever
  // interpreting the v1 payload geometry. Crafted oversized dimensions on
  // a *v2* header are covered in walk_store_test.cc.
  const std::string path = TempPath("widx_v1.widx");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint32_t header32[6] = {0x58444957u, 1u, 4u, 8u, 3u, 0u};
  const double damping = 0.6;
  uint64_t damping_bits = 0;
  std::memcpy(&damping_bits, &damping, sizeof(damping_bits));
  const uint64_t header64[4] = {7u, damping_bits, 0u, /*payload_words=*/0u};
  const uint64_t checksum = 0;
  ASSERT_EQ(std::fwrite(header32, sizeof(header32), 1, f), 1u);
  ASSERT_EQ(std::fwrite(header64, sizeof(header64), 1, f), 1u);
  ASSERT_EQ(std::fwrite(&checksum, sizeof(checksum), 1, f), 1u);
  std::fclose(f);
  auto loaded = WalkIndex::Load(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("version 1"), std::string::npos)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().message().find("version 2"), std::string::npos)
      << loaded.status().ToString();
}

TEST(WalkIndexTest, SingleSourceMatchesPairQueries) {
  DiGraph graph = testing::RandomGraph(40, 180, 17);
  WalkIndexOptions options;
  // Deliberately not a power of two: row scaling must divide like
  // EstimatePair does, not multiply by a rounded reciprocal.
  options.num_fingerprints = 100;
  auto index = WalkIndex::Build(graph, options);
  ASSERT_TRUE(index.ok());
  for (VertexId v : {VertexId{0}, VertexId{7}, VertexId{39}}) {
    auto row = index->EstimateSingleSource(v);
    ASSERT_EQ(row.size(), graph.n());
    for (VertexId b = 0; b < graph.n(); ++b) {
      EXPECT_DOUBLE_EQ(row[b], index->EstimatePair(v, b))
          << "source " << v << " target " << b;
    }
  }
}

TEST(WalkIndexTest, AgreesExactlyWithMonteCarloEstimator) {
  // Same seed, same coupled hash -> the persistent index and the in-memory
  // Monte-Carlo estimator sample identical walks.
  DiGraph graph = testing::PaperExampleGraph();
  WalkIndexOptions index_options;
  index_options.num_fingerprints = 128;
  index_options.walk_length = 10;
  index_options.damping = 0.6;
  index_options.seed = 21;
  auto index = WalkIndex::Build(graph, index_options);
  ASSERT_TRUE(index.ok());
  MonteCarloOptions mc_options;
  mc_options.num_fingerprints = 128;
  mc_options.walk_length = 10;
  mc_options.damping = 0.6;
  mc_options.seed = 21;
  MonteCarloSimRank mc(graph, mc_options);
  for (VertexId a = 0; a < graph.n(); ++a) {
    for (VertexId b = 0; b < graph.n(); ++b) {
      EXPECT_DOUBLE_EQ(index->EstimatePair(a, b), mc.EstimatePair(a, b));
    }
  }
}

TEST(WalkIndexTest, ConvergesToNaiveScoresOnPaperFixture) {
  DiGraph graph = testing::PaperExampleGraph();
  SimRankOptions exact_options;
  exact_options.damping = 0.6;
  exact_options.iterations = 16;
  auto exact = NaiveSimRank(graph, exact_options);
  ASSERT_TRUE(exact.ok());

  WalkIndexOptions options;
  options.num_fingerprints = 4096;
  options.walk_length = 12;
  options.damping = 0.6;
  auto index = WalkIndex::Build(graph, options);
  ASSERT_TRUE(index.ok());

  // Hoeffding bound over all n² pairs at confidence 1 - 1e-3, plus the
  // walk-truncation bias C^(L+1)/(1-C).
  const double pairs = static_cast<double>(graph.n()) * graph.n();
  const double hoeffding = std::sqrt(
      std::log(2.0 * pairs / 1e-3) / (2.0 * options.num_fingerprints));
  const double truncation =
      std::pow(options.damping, options.walk_length + 1.0) /
      (1.0 - options.damping);
  const double tolerance = hoeffding + truncation;
  for (VertexId a = 0; a < graph.n(); ++a) {
    for (VertexId b = 0; b < graph.n(); ++b) {
      EXPECT_NEAR(index->EstimatePair(a, b), (*exact)(a, b), tolerance)
          << "pair (" << a << "," << b << ")";
    }
  }
}

}  // namespace
}  // namespace simrank
