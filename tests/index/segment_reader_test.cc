#include "simrank/index/segment_reader.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "simrank/common/status.h"

namespace simrank {
namespace {

std::string TempPath(const std::string& name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string tag = std::string(info->test_suite_name()) + "_" +
                    info->name() + "_" + name;
  // Parameterized suite/test names contain '/' — not directory parts here.
  std::replace(tag.begin(), tag.end(), '/', '_');
  return ::testing::TempDir() + tag;
}

// A deterministic pseudo-random file so any misplaced read shows up as a
// byte mismatch, not a coincidental match.
std::vector<uint8_t> WritePatternFile(const std::string& path, size_t size) {
  std::vector<uint8_t> bytes(size);
  std::mt19937 rng(12345);
  for (auto& b : bytes) b = static_cast<uint8_t>(rng());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();
  return bytes;
}

// Reads `ranges` through the reader and checks every destination buffer
// byte-for-byte against the in-memory copy of the file.
void CheckRanges(SegmentReader* reader, const std::vector<uint8_t>& file,
                 const std::vector<SegmentReader::Range>& ranges) {
  std::vector<std::vector<uint8_t>> buffers(ranges.size());
  std::vector<uint8_t*> dests(ranges.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    buffers[i].assign(ranges[i].length, 0xCC);
    dests[i] = buffers[i].data();
  }
  const Status status = reader->ReadInto(ranges, dests.data());
  ASSERT_TRUE(status.ok()) << status.message();
  for (size_t i = 0; i < ranges.size(); ++i) {
    ASSERT_LE(ranges[i].offset + ranges[i].length, file.size());
    for (size_t j = 0; j < ranges[i].length; ++j) {
      ASSERT_EQ(buffers[i][j], file[ranges[i].offset + j])
          << "range " << i << " byte " << j;
    }
  }
}

class SegmentReaderTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    uring_was_enabled_ = SegmentReader::IoUringEnabled();
    SegmentReader::SetIoUringEnabled(GetParam());
  }
  void TearDown() override {
    SegmentReader::SetIoUringEnabled(uring_was_enabled_);
  }

 private:
  bool uring_was_enabled_ = false;
};

TEST_P(SegmentReaderTest, MissingFileFailsToOpen) {
  auto reader = SegmentReader::Open(TempPath("does_not_exist.bin"));
  EXPECT_FALSE(reader.ok());
}

TEST_P(SegmentReaderTest, InOrderOutOfOrderDuplicateAndOverlappingRanges) {
  const std::string path = TempPath("pattern.bin");
  const std::vector<uint8_t> file = WritePatternFile(path, 256 * 1024);
  auto reader = SegmentReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().message();
  if (GetParam() && !(*reader)->using_io_uring()) {
    GTEST_LOG_(INFO) << "io_uring unavailable here; exercising fallback";
  }

  CheckRanges(reader->get(), file, {});
  CheckRanges(reader->get(), file, {{0, 100}});
  CheckRanges(reader->get(), file,
              {{0, 4096}, {4096, 4096}, {8192, 1}});  // in order
  CheckRanges(reader->get(), file,
              {{200000, 333}, {17, 90}, {65536, 4096}});  // out of order
  CheckRanges(reader->get(), file,
              {{1000, 50}, {1000, 50}, {1000, 50}});  // duplicates
  CheckRanges(reader->get(), file,
              {{1000, 5000}, {3000, 5000}, {4000, 100}});  // overlapping
  CheckRanges(reader->get(), file, {{0, 0}, {5, 0}, {7, 3}});  // empty
  CheckRanges(reader->get(), file,
              {{file.size() - 10, 10}});  // ends exactly at EOF
}

TEST_P(SegmentReaderTest, MoreRangesThanOneSubmissionWave) {
  const std::string path = TempPath("waves.bin");
  const std::vector<uint8_t> file = WritePatternFile(path, 512 * 1024);
  auto reader = SegmentReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().message();

  // 200 ranges > the 64-entry ring, so the uring path must run several
  // waves; a shuffled order additionally stresses completion matching.
  std::vector<SegmentReader::Range> ranges;
  for (uint64_t i = 0; i < 200; ++i) {
    ranges.push_back({(i * 2557) % (file.size() - 512), 1 + (i * 37) % 512});
  }
  std::mt19937 rng(99);
  std::shuffle(ranges.begin(), ranges.end(), rng);
  CheckRanges(reader->get(), file, ranges);
}

TEST_P(SegmentReaderTest, ReadPastEofIsAShortReadError) {
  const std::string path = TempPath("short.bin");
  WritePatternFile(path, 1000);
  auto reader = SegmentReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().message();

  std::vector<uint8_t> buffer(200, 0);
  uint8_t* dest = buffer.data();
  const std::vector<SegmentReader::Range> ranges = {{900, 200}};
  const Status status = reader->get()->ReadInto(ranges, &dest);
  ASSERT_FALSE(status.ok());
  // Same prefix the buffered whole-file reader uses, so a cold-path
  // failure reads identically to a warm-path one.
  EXPECT_NE(status.message().find("short read"), std::string::npos)
      << status.message();
}

TEST_P(SegmentReaderTest, PrefetchIsAHarmlessHint) {
  const std::string path = TempPath("prefetch.bin");
  const std::vector<uint8_t> file = WritePatternFile(path, 128 * 1024);
  auto reader = SegmentReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().message();

  const std::vector<SegmentReader::Range> two = {{0, 64 * 1024},
                                                 {100 * 1024, 28 * 1024}};
  (*reader)->Prefetch(two);
  (*reader)->Prefetch(std::vector<SegmentReader::Range>{});  // empty is fine
  const std::vector<SegmentReader::Range> whole = {{0, file.size()}};
  (*reader)->Prefetch(whole);
  // Reads after prefetch still see exact bytes.
  CheckRanges(reader->get(), file, {{64 * 1024 - 7, 77}});
}

TEST_P(SegmentReaderTest, ResultsAreIdenticalWithAndWithoutUring) {
  const std::string path = TempPath("parity.bin");
  const std::vector<uint8_t> file = WritePatternFile(path, 96 * 1024);

  std::vector<SegmentReader::Range> ranges;
  for (uint64_t i = 0; i < 40; ++i) {
    ranges.push_back({(i * 4099) % (file.size() - 256), 1 + (i * 13) % 256});
  }

  auto read_all = [&](bool enable) {
    SegmentReader::SetIoUringEnabled(enable);
    auto reader = SegmentReader::Open(path);
    EXPECT_TRUE(reader.ok());
    std::vector<std::vector<uint8_t>> buffers(ranges.size());
    std::vector<uint8_t*> dests(ranges.size());
    for (size_t i = 0; i < ranges.size(); ++i) {
      buffers[i].assign(ranges[i].length, 0);
      dests[i] = buffers[i].data();
    }
    EXPECT_TRUE((*reader)->ReadInto(ranges, dests.data()).ok());
    return buffers;
  };
  const auto with_uring = read_all(true);
  const auto without_uring = read_all(false);
  ASSERT_EQ(with_uring, without_uring);
  for (size_t i = 0; i < ranges.size(); ++i) {
    for (size_t j = 0; j < ranges[i].length; ++j) {
      ASSERT_EQ(with_uring[i][j], file[ranges[i].offset + j]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(UringOnOff, SegmentReaderTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "UringEnabled"
                                             : "UringDisabled";
                         });

}  // namespace
}  // namespace simrank
