// Dispatch-correctness suite for the serve-path SIMD kernels: every tier
// (scalar / SSE4 / AVX2, forced via SIMRANK_SIMD_LEVEL) must produce
// byte-identical query results and byte-identical corruption diagnostics,
// on both storage backends and both segment encodings. This is the
// executable statement of the repo's bitwise-equality discipline for the
// vector fast paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "simrank/common/simd.h"
#include "simrank/extra/topk.h"
#include "simrank/index/query_engine.h"
#include "simrank/index/walk_index.h"
#include "simrank/index/walk_store.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

std::string TempPath(const std::string& name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string tag = "simd_dispatch_" + std::string(info->name()) + "_" + name;
  // Parameterized test names contain '/' — not directory parts here.
  std::replace(tag.begin(), tag.end(), '/', '_');
  return ::testing::TempDir() + tag;
}

// Forces one kernel tier for a scope, restoring the prior environment (and
// the published level) on destruction.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(const char* level) {
    const char* prior = std::getenv("SIMRANK_SIMD_LEVEL");
    had_prior_ = prior != nullptr;
    if (had_prior_) prior_ = prior;
    setenv("SIMRANK_SIMD_LEVEL", level, 1);
    ReloadSimdLevelFromEnv();
  }
  ~ScopedSimdLevel() {
    if (had_prior_) {
      setenv("SIMRANK_SIMD_LEVEL", prior_.c_str(), 1);
    } else {
      unsetenv("SIMRANK_SIMD_LEVEL");
    }
    ReloadSimdLevelFromEnv();
  }

 private:
  bool had_prior_ = false;
  std::string prior_;
};

// Tier names this CPU can actually run (forcing a wider tier than the CPU
// supports would silently clamp and test nothing new).
std::vector<const char*> RunnableTiers() {
  std::vector<const char*> tiers = {"scalar"};
  const auto max = static_cast<uint8_t>(MaxSupportedSimdLevel());
  if (max >= static_cast<uint8_t>(SimdLevel::kSse4)) tiers.push_back("sse4");
  if (max >= static_cast<uint8_t>(SimdLevel::kAvx2)) tiers.push_back("avx2");
  return tiers;
}

struct QuerySnapshot {
  std::vector<std::vector<double>> rows;       // SingleSource per vertex
  std::vector<double> pairs;                   // a sweep of Pair scores
  std::vector<std::vector<ScoredVertex>> topk; // TopK per vertex
};

// Runs the full query surface against one opened index.
QuerySnapshot Snapshot(const WalkIndex& index) {
  QuerySnapshot snap;
  QueryEngine engine(index);
  const uint32_t n = index.n();
  for (VertexId v = 0; v < n; ++v) {
    snap.rows.push_back(index.EstimateSingleSource(v));
    auto topk = engine.TopK(v, 5);
    EXPECT_TRUE(topk.ok());
    snap.topk.push_back(std::move(topk).value());
  }
  for (VertexId a = 0; a < n; a += 2) {
    for (VertexId b = 1; b < n; b += 3) {
      snap.pairs.push_back(index.EstimatePair(a, b));
    }
  }
  return snap;
}

// Bitwise comparison — EXPECT_EQ on doubles is exact equality, which is
// the contract: the kernels perform the same arithmetic in the same order.
void ExpectIdentical(const QuerySnapshot& got, const QuerySnapshot& want,
                     const char* tier) {
  ASSERT_EQ(got.rows.size(), want.rows.size()) << tier;
  for (size_t v = 0; v < want.rows.size(); ++v) {
    ASSERT_EQ(got.rows[v].size(), want.rows[v].size()) << tier;
    ASSERT_EQ(std::memcmp(got.rows[v].data(), want.rows[v].data(),
                          want.rows[v].size() * sizeof(double)),
              0)
        << tier << " row " << v;
    ASSERT_EQ(got.topk[v], want.topk[v]) << tier << " topk " << v;
  }
  ASSERT_EQ(got.pairs.size(), want.pairs.size()) << tier;
  ASSERT_EQ(std::memcmp(got.pairs.data(), want.pairs.data(),
                        want.pairs.size() * sizeof(double)),
            0)
      << tier;
}

struct BackendEncoding {
  bool use_mmap;
  bool compress;
};

class SimdDispatchTest
    : public ::testing::TestWithParam<BackendEncoding> {};

TEST_P(SimdDispatchTest, EveryTierServesByteIdenticalAnswers) {
  const BackendEncoding param = GetParam();
  DiGraph graph = testing::RandomGraph(60, 260, 29);
  WalkIndexOptions options;
  options.num_fingerprints = 96;
  auto built = WalkIndex::Build(graph, options);
  ASSERT_TRUE(built.ok());
  const std::string path = TempPath("index.widx");
  WalkIndex::SaveOptions save;
  save.compress = param.compress;
  ASSERT_TRUE(built->Save(path, save).ok());

  WalkIndex::LoadOptions load;
  load.use_mmap = param.use_mmap;

  // Reference: everything under the forced-scalar tier.
  QuerySnapshot reference;
  {
    ScopedSimdLevel forced("scalar");
    ASSERT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
    auto index = WalkIndex::Load(path, load);
    ASSERT_TRUE(index.ok()) << index.status().message();
    reference = Snapshot(*index);
  }

  for (const char* tier : RunnableTiers()) {
    SCOPED_TRACE(tier);
    ScopedSimdLevel forced(tier);
    // Open fresh per tier so the load-time decode (in-memory backend) runs
    // under the tier as well, not just the serve path.
    auto index = WalkIndex::Load(path, load);
    ASSERT_TRUE(index.ok()) << index.status().message();
    ExpectIdentical(Snapshot(*index), reference, tier);
  }
}

// Flips single payload bytes and checks that every tier reports the exact
// same verification outcome — same status code, same message, same first
// corrupt offset. The kernels must never turn a detectable corruption into
// a different (or silently absent) diagnostic.
TEST_P(SimdDispatchTest, CorruptionDiagnosticsMatchAcrossTiers) {
  const BackendEncoding param = GetParam();
  if (!param.use_mmap) {
    GTEST_SKIP() << "the in-memory backend rejects corrupt files on the "
                    "load-time checksum, before any kernel runs";
  }
  DiGraph graph = testing::RandomGraph(40, 170, 31);
  WalkIndexOptions options;
  options.num_fingerprints = 64;
  auto built = WalkIndex::Build(graph, options);
  ASSERT_TRUE(built.ok());
  const std::string clean_path = TempPath("clean.widx");
  WalkIndex::SaveOptions save;
  save.compress = param.compress;
  ASSERT_TRUE(built->Save(clean_path, save).ok());

  std::string bytes;
  {
    std::ifstream in(clean_path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 2 * 4096u);

  // Probe byte flips across the payload (pages after header+directory).
  const size_t first_payload = 2 * 4096;
  size_t corrupt_cases = 0;
  for (size_t offset = first_payload; offset < bytes.size();
       offset += 197) {
    std::string tampered = bytes;
    tampered[offset] = static_cast<char>(tampered[offset] ^ 0x2A);
    const std::string path = TempPath("tampered.widx");
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(tampered.data(),
                static_cast<std::streamsize>(tampered.size()));
    }

    // The scalar tier defines the expected outcome.
    bool ref_open_ok;
    std::string ref_open_error;
    bool ref_verify_ok = false;
    std::string ref_verify_error;
    {
      ScopedSimdLevel forced("scalar");
      auto store = MmapWalkStore::Open(path);
      ref_open_ok = store.ok();
      if (!ref_open_ok) {
        ref_open_error = store.status().ToString();
      } else {
        const Status verify = (*store)->VerifyPayload();
        ref_verify_ok = verify.ok();
        if (!ref_verify_ok) ref_verify_error = verify.ToString();
      }
    }
    if (!ref_verify_ok) ++corrupt_cases;

    for (const char* tier : RunnableTiers()) {
      SCOPED_TRACE(std::string(tier) + " offset=" + std::to_string(offset));
      ScopedSimdLevel forced(tier);
      auto store = MmapWalkStore::Open(path);
      ASSERT_EQ(store.ok(), ref_open_ok);
      if (!store.ok()) {
        EXPECT_EQ(store.status().ToString(), ref_open_error);
        continue;
      }
      const Status verify = (*store)->VerifyPayload();
      ASSERT_EQ(verify.ok(), ref_verify_ok);
      if (!verify.ok()) EXPECT_EQ(verify.ToString(), ref_verify_error);
    }
  }
  // The sweep must have exercised real corruption, not just harmless flips.
  EXPECT_GT(corrupt_cases, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    BackendsAndEncodings, SimdDispatchTest,
    ::testing::Values(BackendEncoding{false, false},
                      BackendEncoding{false, true},
                      BackendEncoding{true, false},
                      BackendEncoding{true, true}),
    [](const ::testing::TestParamInfo<BackendEncoding>& info) {
      return std::string(info.param.use_mmap ? "Mmap" : "InMemory") +
             (info.param.compress ? "Compressed" : "Raw");
    });

}  // namespace
}  // namespace simrank
