#include "simrank/index/edge_update.h"

#include <gtest/gtest.h>

#include "simrank/graph/graph_io.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

TEST(EdgeUpdateTest, ApplyInsertAndDelete) {
  DiGraph graph = testing::PaperExampleGraph();
  const std::vector<EdgeUpdate> updates = {
      {EdgeUpdate::Op::kInsert, testing::kA, testing::kB},
      {EdgeUpdate::Op::kDelete, testing::kB, testing::kA},
  };
  auto updated = ApplyEdgeUpdates(graph, updates);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->m(), graph.m());
  EXPECT_TRUE(updated->HasEdge(testing::kA, testing::kB));
  EXPECT_FALSE(updated->HasEdge(testing::kB, testing::kA));
  // Untouched adjacency survives.
  EXPECT_TRUE(updated->HasEdge(testing::kG, testing::kA));
}

TEST(EdgeUpdateTest, MatchesFreshlyBuiltGraphExactly) {
  DiGraph graph = testing::RandomGraph(40, 160, 11);
  // Pick an edge that verifiably does not exist yet.
  Edge fresh{0, 0};
  for (VertexId dst = 1; dst < graph.n(); ++dst) {
    if (!graph.HasEdge(0, dst)) {
      fresh = Edge{0, dst};
      break;
    }
  }
  ASSERT_NE(fresh.dst, 0u);
  const std::vector<EdgeUpdate> updates = {
      {EdgeUpdate::Op::kInsert, fresh.src, fresh.dst},
      {EdgeUpdate::Op::kDelete, graph.Edges()[0].src,
       graph.Edges()[0].dst},
  };
  auto updated = ApplyEdgeUpdates(graph, updates);
  ASSERT_TRUE(updated.ok());
  // Rebuild the same graph from scratch; structural equality (and thus
  // fingerprint equality — what the updater's bitwise story rests on).
  DiGraph::Builder builder(graph.n());
  builder.AddEdges(updated->Edges());
  const DiGraph rebuilt = std::move(builder).Build();
  EXPECT_TRUE(*updated == rebuilt);
  EXPECT_EQ(GraphFingerprint(*updated), GraphFingerprint(rebuilt));
}

TEST(EdgeUpdateTest, StrictValidation) {
  DiGraph graph = testing::PaperExampleGraph();
  // Inserting an existing edge fails.
  auto duplicate = ApplyEdgeUpdates(
      graph, {{{EdgeUpdate::Op::kInsert, testing::kB, testing::kA}}});
  EXPECT_FALSE(duplicate.ok());
  // Deleting a missing edge fails.
  auto missing = ApplyEdgeUpdates(
      graph, {{{EdgeUpdate::Op::kDelete, testing::kA, testing::kB}}});
  EXPECT_FALSE(missing.ok());
  // Out-of-universe endpoints fail.
  auto out_of_range =
      ApplyEdgeUpdates(graph, {{{EdgeUpdate::Op::kInsert, 0, 99}}});
  EXPECT_FALSE(out_of_range.ok());
  // Within one batch, state evolves: insert-then-delete of the same edge
  // is legal, insert-then-insert is not.
  auto insert_delete = ApplyEdgeUpdates(
      graph, {{{EdgeUpdate::Op::kInsert, testing::kA, testing::kB},
               {EdgeUpdate::Op::kDelete, testing::kA, testing::kB}}});
  EXPECT_TRUE(insert_delete.ok());
  EXPECT_TRUE(*insert_delete == graph);
  auto double_insert = ApplyEdgeUpdates(
      graph, {{{EdgeUpdate::Op::kInsert, testing::kA, testing::kB},
               {EdgeUpdate::Op::kInsert, testing::kA, testing::kB}}});
  EXPECT_FALSE(double_insert.ok());
}

TEST(EdgeUpdateTest, TextFormatRoundTrips) {
  const std::vector<EdgeUpdate> updates = {
      {EdgeUpdate::Op::kInsert, 3, 7},
      {EdgeUpdate::Op::kDelete, 0, 12345},
  };
  auto parsed = ParseEdgeUpdates(FormatEdgeUpdates(updates));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, updates);
}

TEST(EdgeUpdateTest, TextFormatCommentsAndErrors) {
  auto parsed = ParseEdgeUpdates(
      "# a comment\n"
      "+ 1 2   # trailing comment\n"
      "\n"
      "  - 3\t4\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0], (EdgeUpdate{EdgeUpdate::Op::kInsert, 1, 2}));
  EXPECT_EQ((*parsed)[1], (EdgeUpdate{EdgeUpdate::Op::kDelete, 3, 4}));

  EXPECT_FALSE(ParseEdgeUpdates("x 1 2\n").ok());
  EXPECT_FALSE(ParseEdgeUpdates("+ 1\n").ok());
  EXPECT_FALSE(ParseEdgeUpdates("+ 1 2 3\n").ok());
  EXPECT_FALSE(ParseEdgeUpdates("+ 1 notanumber\n").ok());
}

}  // namespace
}  // namespace simrank
