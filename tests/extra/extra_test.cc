#include <gtest/gtest.h>

#include <cmath>

#include "simrank/core/naive.h"
#include "simrank/core/psum.h"
#include "simrank/extra/montecarlo.h"
#include "simrank/extra/prank.h"
#include "simrank/extra/single_pair.h"
#include "simrank/extra/topk.h"
#include "simrank/linalg/dense_matrix.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

TEST(TopKTest, ReturnsDescendingScores) {
  DenseMatrix scores(4, 4);
  scores(0, 1) = 0.3;
  scores(0, 2) = 0.9;
  scores(0, 3) = 0.5;
  scores(0, 0) = 1.0;
  auto top = TopKSimilar(scores, 0, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].vertex, 2u);
  EXPECT_DOUBLE_EQ(top[0].score, 0.9);
  EXPECT_EQ(top[1].vertex, 3u);
}

TEST(TopKTest, ExcludesQueryByDefaultIncludesOnRequest) {
  DenseMatrix scores(3, 3);
  scores(1, 1) = 1.0;
  scores(1, 0) = 0.2;
  scores(1, 2) = 0.1;
  auto without = TopKIds(scores, 1, 3);
  EXPECT_EQ(without, (std::vector<VertexId>{0, 2}));
  auto with = TopKIds(scores, 1, 3, /*exclude_query=*/false);
  EXPECT_EQ(with, (std::vector<VertexId>{1, 0, 2}));
}

TEST(TopKTest, TiesBrokenByAscendingId) {
  DenseMatrix scores(4, 4);
  scores(0, 1) = 0.5;
  scores(0, 2) = 0.5;
  scores(0, 3) = 0.5;
  auto ids = TopKIds(scores, 0, 3);
  EXPECT_EQ(ids, (std::vector<VertexId>{1, 2, 3}));
}

TEST(SinglePairTest, MatchesAllPairsIteration) {
  DiGraph graph = testing::PaperExampleGraph();
  SimRankOptions options;
  options.damping = 0.6;
  options.iterations = 6;
  auto all_pairs = PsumSimRank(graph, options);
  ASSERT_TRUE(all_pairs.ok());
  for (VertexId a = 0; a < graph.n(); ++a) {
    for (VertexId b = 0; b < graph.n(); ++b) {
      auto single = SinglePairSimRank(graph, a, b, options);
      ASSERT_TRUE(single.ok());
      EXPECT_NEAR(*single, (*all_pairs)(a, b), 1e-12)
          << "pair (" << a << "," << b << ")";
    }
  }
}

TEST(SinglePairTest, MemoisationKeepsSubproblemsBounded) {
  DiGraph graph = testing::RandomGraph(40, 160, 19);
  SimRankOptions options;
  options.iterations = 5;
  SinglePairStats stats;
  auto value = SinglePairSimRank(graph, 0, 1, options, &stats);
  ASSERT_TRUE(value.ok());
  // Memoised subproblems can never exceed pairs x depth.
  EXPECT_LE(stats.subproblems,
            static_cast<uint64_t>(graph.n()) * graph.n() * 5);
  EXPECT_GT(stats.subproblems, 0u);
}

TEST(SinglePairTest, OutOfRangeVertices) {
  DiGraph graph = testing::PaperExampleGraph();
  SimRankOptions options;
  options.iterations = 2;
  EXPECT_FALSE(SinglePairSimRank(graph, 0, 99, options).ok());
}

TEST(MonteCarloTest, DiagonalAndRangeInvariants) {
  DiGraph graph = testing::PaperExampleGraph();
  MonteCarloOptions options;
  options.num_fingerprints = 64;
  MonteCarloSimRank mc(graph, options);
  EXPECT_DOUBLE_EQ(mc.EstimatePair(0, 0), 1.0);
  for (VertexId a = 0; a < graph.n(); ++a) {
    for (VertexId b = 0; b < graph.n(); ++b) {
      const double estimate = mc.EstimatePair(a, b);
      EXPECT_GE(estimate, 0.0);
      EXPECT_LE(estimate, 1.0);
    }
  }
}

TEST(MonteCarloTest, ApproximatesExactScores) {
  DiGraph graph = testing::PaperExampleGraph();
  SimRankOptions exact_options;
  exact_options.damping = 0.6;
  exact_options.iterations = 12;
  auto exact = PsumSimRank(graph, exact_options);
  ASSERT_TRUE(exact.ok());
  MonteCarloOptions mc_options;
  mc_options.num_fingerprints = 4096;
  mc_options.walk_length = 12;
  mc_options.damping = 0.6;
  MonteCarloSimRank mc(graph, mc_options);
  // Spot-check a few informative pairs with a generous sampling tolerance.
  for (auto [a, b] : std::vector<std::pair<VertexId, VertexId>>{
           {testing::kA, testing::kC},
           {testing::kB, testing::kD},
           {testing::kA, testing::kE}}) {
    EXPECT_NEAR(mc.EstimatePair(a, b), (*exact)(a, b), 0.08)
        << "pair (" << a << "," << b << ")";
  }
}

TEST(MonteCarloTest, WithinHoeffdingToleranceOfNaive) {
  // Each pair estimate averages num_fingerprints i.i.d. samples in [0, 1],
  // so Hoeffding bounds the deviation from the (truncated-walk) mean; the
  // truncation itself biases down by at most C^(L+1)/(1-C). Check every
  // pair of the paper fixture against the naive ground truth under the
  // union bound at confidence 1 - 1e-3.
  DiGraph graph = testing::PaperExampleGraph();
  SimRankOptions exact_options;
  exact_options.damping = 0.6;
  exact_options.iterations = 16;
  auto exact = NaiveSimRank(graph, exact_options);
  ASSERT_TRUE(exact.ok());

  MonteCarloOptions options;
  options.num_fingerprints = 4096;
  options.walk_length = 12;
  options.damping = 0.6;
  MonteCarloSimRank mc(graph, options);

  const double pairs = static_cast<double>(graph.n()) * graph.n();
  const double hoeffding = std::sqrt(
      std::log(2.0 * pairs / 1e-3) / (2.0 * options.num_fingerprints));
  const double truncation =
      std::pow(options.damping, options.walk_length + 1.0) /
      (1.0 - options.damping);
  const double tolerance = hoeffding + truncation;
  for (VertexId a = 0; a < graph.n(); ++a) {
    for (VertexId b = 0; b < graph.n(); ++b) {
      EXPECT_NEAR(mc.EstimatePair(a, b), (*exact)(a, b), tolerance)
          << "pair (" << a << "," << b << ")";
    }
  }
}

TEST(MonteCarloTest, RowMatchesPairQueries) {
  DiGraph graph = testing::RandomGraph(20, 80, 23);
  MonteCarloOptions options;
  options.num_fingerprints = 32;
  MonteCarloSimRank mc(graph, options);
  auto row = mc.EstimateRow(3);
  ASSERT_EQ(row.size(), graph.n());
  for (VertexId b = 0; b < graph.n(); ++b) {
    EXPECT_DOUBLE_EQ(row[b], mc.EstimatePair(3, b));
  }
}

TEST(PRankTest, LambdaOneReducesToSimRank) {
  DiGraph graph = testing::RandomGraph(30, 120, 29);
  PRankOptions options;
  options.lambda = 1.0;
  options.simrank.damping = 0.7;
  options.simrank.iterations = 6;
  auto prank = PRank(graph, options);
  auto simrank = PsumSimRank(graph, options.simrank);
  ASSERT_TRUE(prank.ok() && simrank.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(*prank, *simrank), 1e-12);
}

TEST(PRankTest, UsesOutLinksWhenLambdaZero) {
  // Two vertices pointing at the same target are "out-similar" even with
  // no in-links.
  DiGraph::Builder builder(3);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  DiGraph graph = std::move(builder).Build();
  PRankOptions options;
  options.lambda = 0.0;
  options.simrank.damping = 0.6;
  options.simrank.iterations = 3;
  auto prank = PRank(graph, options);
  ASSERT_TRUE(prank.ok());
  EXPECT_DOUBLE_EQ((*prank)(0, 1), 0.6);
  // Pure in-link SimRank sees nothing here.
  auto simrank = PsumSimRank(graph, options.simrank);
  ASSERT_TRUE(simrank.ok());
  EXPECT_DOUBLE_EQ((*simrank)(0, 1), 0.0);
}

TEST(PRankTest, RejectsBadLambda) {
  DiGraph graph = testing::PaperExampleGraph();
  PRankOptions options;
  options.lambda = 1.5;
  EXPECT_FALSE(PRank(graph, options).ok());
}

TEST(PRankTest, ScoresSymmetricAndBounded) {
  DiGraph graph = testing::RandomGraph(25, 100, 31);
  PRankOptions options;
  options.lambda = 0.4;
  options.simrank.iterations = 8;
  auto prank = PRank(graph, options);
  ASSERT_TRUE(prank.ok());
  for (uint32_t i = 0; i < graph.n(); ++i) {
    EXPECT_DOUBLE_EQ((*prank)(i, i), 1.0);
    for (uint32_t j = 0; j < graph.n(); ++j) {
      EXPECT_NEAR((*prank)(i, j), (*prank)(j, i), 1e-12);
      EXPECT_GE((*prank)(i, j), 0.0);
      EXPECT_LE((*prank)(i, j), 1.0 + 1e-12);
    }
  }
}

}  // namespace
}  // namespace simrank
