#include "simrank/mst/arborescence.h"

#include <gtest/gtest.h>

#include "simrank/common/rng.h"

namespace simrank {
namespace {

TEST(MinInEdgeTest, SimpleDag) {
  //      0 (root)
  //  1<--/ \-->2     edges 0->1 (w1), 0->2 (w5), 1->2 (w2)
  std::vector<WeightedEdge> edges{{0, 1, 1.0}, {0, 2, 5.0}, {1, 2, 2.0}};
  auto arb = MinInEdgeArborescence(3, 0, edges);
  ASSERT_TRUE(arb.ok());
  EXPECT_EQ(arb->parent[1], 0u);
  EXPECT_EQ(arb->parent[2], 1u);
  EXPECT_DOUBLE_EQ(arb->total_weight, 3.0);
}

TEST(MinInEdgeTest, TieBreaksTowardSmallerSource) {
  std::vector<WeightedEdge> edges{{0, 2, 1.0}, {1, 2, 1.0}, {0, 1, 1.0}};
  auto arb = MinInEdgeArborescence(3, 0, edges);
  ASSERT_TRUE(arb.ok());
  EXPECT_EQ(arb->parent[2], 0u);
}

TEST(MinInEdgeTest, FailsWhenUnreachable) {
  std::vector<WeightedEdge> edges{{0, 1, 1.0}};
  EXPECT_FALSE(MinInEdgeArborescence(3, 0, edges).ok());
}

TEST(MinInEdgeTest, DetectsCycleOnNonDagInput) {
  // 1 and 2 prefer each other over the root.
  std::vector<WeightedEdge> edges{
      {0, 1, 10.0}, {0, 2, 10.0}, {1, 2, 1.0}, {2, 1, 1.0}};
  EXPECT_FALSE(MinInEdgeArborescence(3, 0, edges).ok());
}

TEST(MinInEdgeTest, RejectsBadInput) {
  EXPECT_FALSE(MinInEdgeArborescence(3, 7, {}).ok());  // root out of range
  std::vector<WeightedEdge> edges{{0, 9, 1.0}};
  EXPECT_FALSE(MinInEdgeArborescence(3, 0, edges).ok());
}

TEST(ChuLiuEdmondsTest, HandlesCycles) {
  // Classic example: the greedy choice 1<->2 forms a cycle; the optimum
  // must enter the cycle once.
  std::vector<WeightedEdge> edges{
      {0, 1, 10.0}, {0, 2, 10.0}, {1, 2, 1.0}, {2, 1, 1.0}};
  auto cost = ChuLiuEdmondsCost(3, 0, edges);
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(*cost, 11.0);  // enter at 1 (10) + cycle edge (1)
}

TEST(ChuLiuEdmondsTest, MatchesMinInEdgeOnDags) {
  // Random DAGs (edges only from lower to higher id): greedy is optimal.
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const uint32_t n = 2 + static_cast<uint32_t>(rng.NextUint64(15));
    std::vector<WeightedEdge> edges;
    for (uint32_t v = 1; v < n; ++v) {
      // Guarantee reachability with one root edge, then add extras.
      edges.push_back(
          WeightedEdge{0, v, static_cast<double>(rng.NextUint64(20))});
      const uint32_t extra = static_cast<uint32_t>(rng.NextUint64(3));
      for (uint32_t e = 0; e < extra; ++e) {
        uint32_t u = static_cast<uint32_t>(rng.NextUint64(v));
        edges.push_back(
            WeightedEdge{u, v, static_cast<double>(rng.NextUint64(20))});
      }
    }
    auto greedy = MinInEdgeArborescence(n, 0, edges);
    auto oracle = ChuLiuEdmondsCost(n, 0, edges);
    ASSERT_TRUE(greedy.ok() && oracle.ok()) << "trial " << trial;
    EXPECT_DOUBLE_EQ(greedy->total_weight, *oracle) << "trial " << trial;
  }
}

TEST(ChuLiuEdmondsTest, FailsOnUnreachableNode) {
  std::vector<WeightedEdge> edges{{1, 2, 1.0}};
  EXPECT_FALSE(ChuLiuEdmondsCost(3, 0, edges).ok());
}

TEST(ChuLiuEdmondsTest, NestedCycles) {
  // Two levels of contraction: 1->2->3->1 cycle reachable from root.
  std::vector<WeightedEdge> edges{
      {0, 1, 100.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 1, 1.0}, {0, 3, 50.0}};
  auto cost = ChuLiuEdmondsCost(4, 0, edges);
  ASSERT_TRUE(cost.ok());
  // Enter at 3 (50), then 3->1 (1), 1->2 (1).
  EXPECT_DOUBLE_EQ(*cost, 52.0);
}

}  // namespace
}  // namespace simrank
