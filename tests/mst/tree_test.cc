#include "simrank/mst/tree.h"

#include <gtest/gtest.h>

namespace simrank {
namespace {

// Tree used throughout:        0
//                            / | \
//                           1  2  3
//                          / \     \
//                         4   5     6
Tree MakeSampleTree() { return Tree(0, {0, 0, 0, 0, 1, 1, 3}); }

TEST(TreeTest, DefaultIsSingleRoot) {
  Tree tree;
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.root(), 0u);
  EXPECT_TRUE(tree.children(0).empty());
  EXPECT_EQ(tree.max_depth(), 0u);
}

TEST(TreeTest, StructureAccessors) {
  Tree tree = MakeSampleTree();
  EXPECT_EQ(tree.size(), 7u);
  EXPECT_EQ(tree.children(0), (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_EQ(tree.children(1), (std::vector<uint32_t>{4, 5}));
  EXPECT_EQ(tree.parent(6), 3u);
  EXPECT_EQ(tree.depth(0), 0u);
  EXPECT_EQ(tree.depth(5), 2u);
  EXPECT_EQ(tree.max_depth(), 2u);
}

TEST(TreeTest, DepthFirstWalkOrder) {
  Tree tree = MakeSampleTree();
  std::vector<uint32_t> entered, left;
  tree.DepthFirstWalk([&](uint32_t v) { entered.push_back(v); },
                      [&](uint32_t v) { left.push_back(v); });
  EXPECT_EQ(entered, (std::vector<uint32_t>{0, 1, 4, 5, 2, 3, 6}));
  EXPECT_EQ(left, (std::vector<uint32_t>{4, 5, 1, 2, 6, 3, 0}));
}

TEST(TreeTest, PathDecompositionCoversAllEdges) {
  Tree tree = MakeSampleTree();
  auto chains = tree.PathDecomposition();
  // Count each tree edge exactly once across chains.
  uint32_t edges_seen = 0;
  for (const auto& chain : chains) {
    ASSERT_GE(chain.size(), 2u);
    for (size_t i = 1; i < chain.size(); ++i) {
      EXPECT_EQ(tree.parent(chain[i]), chain[i - 1]);
      ++edges_seen;
    }
  }
  EXPECT_EQ(edges_seen, tree.size() - 1);
}

TEST(TreeTest, PathDecompositionOfChain) {
  Tree chain(0, {0, 0, 1, 2});
  auto chains = chain.PathDecomposition();
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0], (std::vector<uint32_t>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace simrank
