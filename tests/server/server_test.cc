// End-to-end tests of the epoll serving frontend: real sockets against a
// real QueryEngine, concurrent clients, admission control, shutdown.
#include "simrank/server/server.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "simrank/common/string_util.h"
#include "simrank/graph/graph_io.h"
#include "simrank/index/edge_update.h"
#include "simrank/index/index_updater.h"
#include "simrank/index/query_engine.h"
#include "simrank/index/walk_index.h"
#include "simrank/server/http_client.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

/// A server over a small deterministic graph, running on its own thread.
/// With `with_updater`, a WAL-backed IndexUpdater is bound to the index
/// and the live-update endpoints are enabled.
class ServerFixture {
 public:
  explicit ServerFixture(ServerOptions options = {},
                         uint32_t fingerprints = 64,
                         bool with_updater = false)
      : graph_(testing::RandomGraph(60, 240, 11)),
        index_(BuildIndex(graph_, fingerprints)),
        engine_(index_),
        reference_engine_(index_) {
    options.port = 0;  // every fixture gets its own free port
    if (with_updater) {
      wal_path_ = ::testing::TempDir() +
                  StrFormat("server-fixture-%u.wal", options.max_inflight);
      std::remove(wal_path_.c_str());
      if (options.compact_path.empty()) {
        options.compact_path = wal_path_ + ".compacted.widx";
      }
      if (options.compact_graph_path.empty()) {
        options.compact_graph_path = options.compact_path + ".graph.bin";
      }
      IndexUpdaterOptions updater_options;
      updater_options.wal_path = wal_path_;
      auto updater = IndexUpdater::Open(index_, graph_, updater_options);
      OIPSIM_CHECK(updater.ok());
      updater_ = std::move(*updater);
    }
    compact_path_ = options.compact_path;
    server_ =
        std::make_unique<SimRankServer>(engine_, options, updater_.get());
    OIPSIM_CHECK(server_->Bind().ok());
    serve_thread_ = std::thread([this] { serve_status_ = server_->Serve(); });
  }

  ~ServerFixture() { StopAndJoin(); }

  void StopAndJoin() {
    if (serve_thread_.joinable()) {
      server_->Shutdown();
      serve_thread_.join();
    }
  }

  uint16_t port() const { return server_->port(); }
  SimRankServer& server() { return *server_; }
  const DiGraph& graph() const { return graph_; }
  const WalkIndex& index() const { return index_; }
  IndexUpdater* updater() { return updater_.get(); }
  const std::string& compact_path() const { return compact_path_; }
  /// A second engine over the same index: direct answers unperturbed by
  /// the served engine's cache state (they must agree bitwise anyway).
  QueryEngine& reference() { return reference_engine_; }
  const Status& serve_status() const { return serve_status_; }

  /// An edge not present in the current graph.
  Edge FreshEdge() {
    const DiGraph current =
        updater_ != nullptr ? updater_->CurrentGraph() : graph_;
    for (VertexId src = 0; src < current.n(); ++src) {
      for (VertexId dst = 0; dst < current.n(); ++dst) {
        if (src != dst && !current.HasEdge(src, dst)) {
          return Edge{src, dst};
        }
      }
    }
    OIPSIM_CHECK_MSG(false, "no fresh edge in fixture graph");
    return Edge{};
  }

 private:
  static WalkIndex BuildIndex(const DiGraph& graph, uint32_t fingerprints) {
    WalkIndexOptions options;
    options.num_fingerprints = fingerprints;
    auto index = WalkIndex::Build(graph, options);
    OIPSIM_CHECK(index.ok());
    return std::move(index).value();
  }

  DiGraph graph_;
  WalkIndex index_;
  QueryEngine engine_;
  QueryEngine reference_engine_;
  std::string wal_path_;
  std::string compact_path_;
  std::unique_ptr<IndexUpdater> updater_;
  std::unique_ptr<SimRankServer> server_;
  std::thread serve_thread_;
  Status serve_status_;
};

TEST(ServerTest, PairMatchesDirectEngineBitwise) {
  ServerFixture fixture;
  auto client = LoopbackHttpClient::Connect(fixture.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (VertexId a = 0; a < fixture.graph().n(); a += 7) {
    for (VertexId b = 1; b < fixture.graph().n(); b += 11) {
      auto response = client->Get(
          StrFormat("/v1/pair?a=%u&b=%u", a, b));
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      ASSERT_EQ(response->status, 200) << response->body;
      const double served = FindJsonNumber(response->body, "score");
      auto direct = fixture.reference().Pair(a, b);
      ASSERT_TRUE(direct.ok());
      const double expected = *direct;
      EXPECT_EQ(std::memcmp(&served, &expected, sizeof(double)), 0)
          << "pair (" << a << ", " << b << "): served " << served
          << " direct " << expected;
    }
  }
}

TEST(ServerTest, SingleSourceRowMatchesBitwise) {
  ServerFixture fixture;
  auto client = LoopbackHttpClient::Connect(fixture.port());
  ASSERT_TRUE(client.ok());
  for (VertexId v : {0u, 17u, 59u}) {
    auto response = client->Get(StrFormat("/v1/single_source?v=%u", v));
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->status, 200) << response->body;
    auto direct = fixture.reference().SingleSource(v);
    ASSERT_TRUE(direct.ok());
    const std::vector<double>& expected = **direct;
    const std::vector<double> served =
        FindJsonNumberArray(response->body, "scores");
    ASSERT_EQ(served.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(std::memcmp(&served[i], &expected[i], sizeof(double)), 0)
          << "row " << v << " entry " << i;
    }
  }
}

TEST(ServerTest, TopKMatchesDirectEngineBitwise) {
  ServerFixture fixture;
  auto client = LoopbackHttpClient::Connect(fixture.port());
  ASSERT_TRUE(client.ok());
  for (VertexId v : {3u, 42u}) {
    auto response = client->Get(StrFormat("/v1/topk?v=%u&k=5", v));
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->status, 200) << response->body;
    auto direct = fixture.reference().TopK(v, 5);
    ASSERT_TRUE(direct.ok());
    size_t cursor = 0;
    for (const ScoredVertex& scored : *direct) {
      const double vertex =
          FindJsonNumber(response->body, "vertex", &cursor);
      const double served =
          FindJsonNumber(response->body, "score", &cursor);
      EXPECT_EQ(static_cast<VertexId>(vertex), scored.vertex);
      EXPECT_EQ(std::memcmp(&served, &scored.score, sizeof(double)), 0)
          << "topk of " << v << " at vertex " << scored.vertex;
    }
  }
}

TEST(ServerTest, ConcurrentClientsGetConsistentAnswers) {
  ServerOptions options;
  options.threads = 4;
  ServerFixture fixture(options);
  constexpr uint32_t kClients = 4;
  constexpr uint32_t kRequests = 40;
  std::vector<std::thread> clients;
  std::vector<int> failures(kClients, 0);
  for (uint32_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&fixture, &failures, c] {
      auto client = LoopbackHttpClient::Connect(fixture.port());
      if (!client.ok()) {
        failures[c] = 1;
        return;
      }
      for (uint32_t i = 0; i < kRequests; ++i) {
        const VertexId a = (c * 13 + i) % fixture.graph().n();
        const VertexId b = (c * 7 + i * 3) % fixture.graph().n();
        auto response =
            client->Get(StrFormat("/v1/pair?a=%u&b=%u", a, b));
        if (!response.ok() || response->status != 200) {
          failures[c] = 2;
          return;
        }
        const double served = FindJsonNumber(response->body, "score");
        auto direct = fixture.reference().Pair(a, b);
        const double expected = *direct;
        if (std::memcmp(&served, &expected, sizeof(double)) != 0) {
          failures[c] = 3;
          return;
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  for (uint32_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
  }
  const ServerStats stats = fixture.server().stats();
  EXPECT_GE(stats.responses_2xx, kClients * kRequests);
  EXPECT_EQ(stats.responses_5xx, 0u);
}

TEST(ServerTest, RejectsWith429OverInflightCap) {
  ServerOptions options;
  options.threads = 2;
  options.max_inflight = 1;
  options.handler_delay_ms = 300;
  options.retry_after_seconds = 7;
  ServerFixture fixture(options);

  auto slow = LoopbackHttpClient::Connect(fixture.port());
  ASSERT_TRUE(slow.ok());
  // Dispatch the first query; it holds the single in-flight slot for
  // handler_delay_ms.
  ASSERT_TRUE(
      slow->SendRaw("GET /v1/pair?a=0&b=1 HTTP/1.1\r\n\r\n").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  auto rejected = HttpGet(fixture.port(), "/v1/pair?a=2&b=3");
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected->status, 429) << rejected->body;
  ASSERT_NE(rejected->FindHeader("retry-after"), nullptr);
  EXPECT_EQ(*rejected->FindHeader("retry-after"), "7");

  // Inline endpoints still answer while the pool is saturated.
  auto health = HttpGet(fixture.port(), "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);

  // The admitted query completes normally.
  auto first = slow->ReadResponse();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->status, 200);

  const ServerStats stats = fixture.server().stats();
  EXPECT_EQ(stats.rejected_inflight, 1u);
  EXPECT_EQ(stats.rejected_endpoint, 0u);
}

TEST(ServerTest, RejectsWith503OverEndpointCap) {
  ServerOptions options;
  options.threads = 4;
  options.max_inflight = 16;
  options.max_endpoint_inflight = 1;
  options.handler_delay_ms = 300;
  ServerFixture fixture(options);

  auto slow = LoopbackHttpClient::Connect(fixture.port());
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(
      slow->SendRaw("GET /v1/pair?a=0&b=1 HTTP/1.1\r\n\r\n").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Same endpoint: over its cap -> 503.
  auto rejected = HttpGet(fixture.port(), "/v1/pair?a=2&b=3");
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected->status, 503) << rejected->body;
  EXPECT_NE(rejected->FindHeader("retry-after"), nullptr);

  // A different endpoint still has budget.
  auto other = HttpGet(fixture.port(), "/v1/topk?v=1&k=3");
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->status, 200) << other->body;

  auto first = slow->ReadResponse();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->status, 200);

  const ServerStats stats = fixture.server().stats();
  EXPECT_EQ(stats.rejected_endpoint, 1u);
}

TEST(ServerTest, BadParamsAndRoutes) {
  ServerFixture fixture;
  struct Case {
    const char* target;
    int expected_status;
  };
  const Case cases[] = {
      {"/v1/pair?a=0", 400},           // missing b
      {"/v1/pair?a=x&b=1", 400},       // non-numeric
      {"/v1/pair?a=0&b=1&c=2", 400},   // unknown parameter
      {"/v1/pair?a=0&a=1&b=2", 400},   // duplicate parameter
      {"/v1/pair?a=0&b=4294967296", 400},  // beyond uint32
      {"/v1/pair?a=0&b=999", 400},     // out of range for the index
      {"/v1/single_source", 400},      // missing v
      {"/v1/topk?v=1&k=zz", 400},      // malformed k
      {"/v1/nope?v=1", 404},           // unknown endpoint
      {"/", 404},
  };
  for (const Case& test_case : cases) {
    auto response = HttpGet(fixture.port(), test_case.target);
    ASSERT_TRUE(response.ok()) << test_case.target;
    EXPECT_EQ(response->status, test_case.expected_status)
        << test_case.target << " -> " << response->body;
    EXPECT_NE(response->body.find("\"error\""), std::string::npos)
        << test_case.target;
  }

  // Non-GET methods are 405 with Allow.
  auto client = LoopbackHttpClient::Connect(fixture.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendRaw("DELETE /v1/pair HTTP/1.1\r\n\r\n").ok());
  auto response = client->ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 405);
  ASSERT_NE(response->FindHeader("allow"), nullptr);
  EXPECT_EQ(*response->FindHeader("allow"), "GET");
}

TEST(ServerTest, MalformedRequestGets400AndClose) {
  ServerFixture fixture;
  auto client = LoopbackHttpClient::Connect(fixture.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendRaw("NOT-HTTP\r\n\r\n").ok());
  auto response = client->ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 400);
  ASSERT_NE(response->FindHeader("connection"), nullptr);
  EXPECT_EQ(*response->FindHeader("connection"), "close");
}

TEST(ServerTest, PipelinedRequestsAnswerInOrder) {
  ServerFixture fixture;
  auto client = LoopbackHttpClient::Connect(fixture.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client
                  ->SendRaw("GET /v1/pair?a=1&b=2 HTTP/1.1\r\n\r\n"
                            "GET /v1/pair?a=3&b=4 HTTP/1.1\r\n\r\n"
                            "GET /healthz HTTP/1.1\r\n\r\n")
                  .ok());
  auto first = client->ReadResponse();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->status, 200);
  EXPECT_NE(first->body.find("\"a\":1"), std::string::npos);
  auto second = client->ReadResponse();
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second->body.find("\"a\":3"), std::string::npos);
  auto third = client->ReadResponse();
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->body, "ok\n");
}

TEST(ServerTest, HalfCloseStillAnswersEveryBufferedRequest) {
  // The send-all/shutdown(SHUT_WR)/read-all client pattern: EOF must not
  // drop requests that were already on the wire.
  ServerFixture fixture;
  auto client = LoopbackHttpClient::Connect(fixture.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client
                  ->SendRaw("GET /v1/pair?a=1&b=2 HTTP/1.1\r\n\r\n"
                            "GET /v1/pair?a=3&b=4 HTTP/1.1\r\n\r\n")
                  .ok());
  ASSERT_TRUE(client->ShutdownWrite().ok());
  auto first = client->ReadResponse();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->status, 200);
  EXPECT_NE(first->body.find("\"a\":1"), std::string::npos);
  auto second = client->ReadResponse();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->status, 200);
  EXPECT_NE(second->body.find("\"a\":3"), std::string::npos);
  // Then the server closes: no third response.
  EXPECT_FALSE(client->ReadResponse().ok());
}

TEST(ServerTest, LongPipelineDrainsCompletely) {
  // Many inline-answered requests in one burst: exercises the resume
  // path where parsing pauses on the output-backlog cap and continues as
  // responses flush.
  ServerFixture fixture;
  auto client = LoopbackHttpClient::Connect(fixture.port());
  ASSERT_TRUE(client.ok());
  constexpr int kPipelined = 50;
  std::string burst;
  for (int i = 0; i < kPipelined; ++i) {
    burst += "GET /healthz HTTP/1.1\r\n\r\n";
  }
  ASSERT_TRUE(client->SendRaw(burst).ok());
  for (int i = 0; i < kPipelined; ++i) {
    auto response = client->ReadResponse();
    ASSERT_TRUE(response.ok()) << "response " << i;
    EXPECT_EQ(response->status, 200);
  }
}

TEST(ServerTest, StatsEndpointReportsCountersAndIndexInfo) {
  ServerFixture fixture;
  ASSERT_TRUE(HttpGet(fixture.port(), "/v1/pair?a=0&b=1").ok());
  ASSERT_TRUE(HttpGet(fixture.port(), "/v1/topk?v=0&k=3").ok());
  auto response = HttpGet(fixture.port(), "/v1/stats");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200);
  const std::string& body = response->body;
  EXPECT_EQ(FindJsonNumber(body, "pair"), 1.0);
  EXPECT_EQ(FindJsonNumber(body, "topk"), 1.0);
  EXPECT_EQ(FindJsonNumber(body, "vertices"),
            static_cast<double>(fixture.graph().n()));
  EXPECT_EQ(FindJsonNumber(body, "fingerprints"), 64.0);
  EXPECT_NE(body.find("\"backend\":\"in-memory\""), std::string::npos);
  EXPECT_NE(body.find("\"graph_fingerprint\":\""), std::string::npos);
  EXPECT_NE(body.find("\"cache\":{"), std::string::npos);
}

TEST(ServerTest, BatchPairMatchesDirectEngineBitwise) {
  ServerOptions options;
  options.max_batch_pairs = 16;
  ServerFixture fixture(options);
  std::vector<std::pair<VertexId, VertexId>> pairs;
  std::string body = "# batch\n";
  for (VertexId a = 0; a < 12; ++a) {
    pairs.emplace_back(a, (a * 5 + 2) % fixture.graph().n());
    body += StrFormat("%u %u\n", pairs.back().first, pairs.back().second);
  }
  auto response = HttpPost(fixture.port(), "/v1/batch_pair", body);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200) << response->body;
  const std::vector<double> served =
      FindJsonNumberArray(response->body, "scores");
  const auto expected = fixture.reference().BatchPair(pairs);
  ASSERT_EQ(served.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_TRUE(expected[i].ok());
    const double want = *expected[i];
    EXPECT_EQ(std::memcmp(&served[i], &want, sizeof(double)), 0)
        << "pair " << i;
  }

  // Error paths: empty body, malformed line, out-of-range id, over the
  // pair cap, GET instead of POST.
  EXPECT_EQ(HttpPost(fixture.port(), "/v1/batch_pair", "")->status, 400);
  EXPECT_EQ(HttpPost(fixture.port(), "/v1/batch_pair", "0\n")->status,
            400);
  EXPECT_EQ(
      HttpPost(fixture.port(), "/v1/batch_pair", "0 99999\n")->status,
      400);
  std::string oversized;
  for (int i = 0; i < 17; ++i) oversized += "0 1\n";
  EXPECT_EQ(HttpPost(fixture.port(), "/v1/batch_pair", oversized)->status,
            400);
  auto get_response = HttpGet(fixture.port(), "/v1/batch_pair");
  ASSERT_TRUE(get_response.ok());
  EXPECT_EQ(get_response->status, 405);
  EXPECT_EQ(*get_response->FindHeader("allow"), "POST");
}

TEST(ServerTest, UpdateEndpointPatchesTheLiveIndex) {
  ServerFixture fixture(ServerOptions{}, /*fingerprints=*/48,
                        /*with_updater=*/true);
  const Edge fresh = fixture.FreshEdge();

  // The row of the touched vertex, served before the update.
  auto before = HttpGet(fixture.port(),
                        StrFormat("/v1/single_source?v=%u", fresh.dst));
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->status, 200);

  auto response = HttpPost(fixture.port(), "/v1/update",
                           StrFormat("+ %u %u\n", fresh.src, fresh.dst));
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200) << response->body;
  EXPECT_EQ(FindJsonNumber(response->body, "applied"), 1.0);
  EXPECT_EQ(FindJsonNumber(response->body, "sequence"), 1.0);
  EXPECT_NE(response->body.find("\"graph_fingerprint\":\""),
            std::string::npos);

  // Post-update queries serve the patched index, bitwise equal to a
  // rebuild on the updated graph.
  auto rebuilt = WalkIndex::Build(fixture.updater()->CurrentGraph(),
                                  fixture.index().options());
  ASSERT_TRUE(rebuilt.ok());
  auto after = HttpGet(fixture.port(),
                       StrFormat("/v1/single_source?v=%u", fresh.dst));
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->status, 200);
  const std::vector<double> served =
      FindJsonNumberArray(after->body, "scores");
  const std::vector<double> expected =
      rebuilt->EstimateSingleSource(fresh.dst);
  ASSERT_EQ(served.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(std::memcmp(&served[i], &expected[i], sizeof(double)), 0)
        << "entry " << i;
  }

  // Stats gained the updates section.
  auto stats = HttpGet(fixture.port(), "/v1/stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(FindJsonNumber(stats->body, "batches_applied"), 1.0);
  EXPECT_EQ(FindJsonNumber(stats->body, "overlay_sequence"), 1.0);

  // Invalid bodies and invalid batches are 400s; the graph is unchanged.
  EXPECT_EQ(HttpPost(fixture.port(), "/v1/update", "nonsense")->status,
            400);
  EXPECT_EQ(HttpPost(fixture.port(), "/v1/update",
                     StrFormat("+ %u %u\n", fresh.src, fresh.dst))
                ->status,
            400);  // duplicate edge
  EXPECT_EQ(HttpPost(fixture.port(), "/v1/update", "+ 0 99999\n")->status,
            400);
  auto stats_after = HttpGet(fixture.port(), "/v1/stats");
  EXPECT_EQ(FindJsonNumber(stats_after->body, "batches_applied"), 1.0);
}

TEST(ServerTest, UpdateEndpointsDisabledWithoutUpdater) {
  ServerFixture fixture;
  auto update = HttpPost(fixture.port(), "/v1/update", "+ 0 1\n");
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(update->status, 503);
  EXPECT_NE(update->body.find("disabled"), std::string::npos);
  auto compact = HttpPost(fixture.port(), "/v1/compact", "");
  ASSERT_TRUE(compact.ok());
  EXPECT_EQ(compact->status, 503);
  // GET endpoints reject request bodies outright.
  auto client = LoopbackHttpClient::Connect(fixture.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client
                  ->SendRaw("GET /v1/pair?a=0&b=1 HTTP/1.1\r\n"
                            "Content-Length: 3\r\n\r\nabc")
                  .ok());
  auto response = client->ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 400);
}

TEST(ServerTest, CompactEndpointWritesByteIdenticalIndex) {
  ServerFixture fixture(ServerOptions{}, /*fingerprints=*/48,
                        /*with_updater=*/true);
  const Edge fresh = fixture.FreshEdge();
  ASSERT_EQ(HttpPost(fixture.port(), "/v1/update",
                     StrFormat("+ %u %u\n", fresh.src, fresh.dst))
                ->status,
            200);
  auto response = HttpPost(fixture.port(), "/v1/compact", "");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200) << response->body;
  EXPECT_NE(response->body.find(fixture.compact_path()),
            std::string::npos);

  // The written file is byte-identical to a fresh build on the updated
  // graph, and the WAL was reset (sequence stays, records are gone).
  auto rebuilt = WalkIndex::Build(fixture.updater()->CurrentGraph(),
                                  fixture.index().options());
  ASSERT_TRUE(rebuilt.ok());
  const std::string fresh_path = fixture.compact_path() + ".fresh";
  ASSERT_TRUE(rebuilt->Save(fresh_path).ok());
  auto read_bytes = [](const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    OIPSIM_CHECK(f != nullptr);
    std::string bytes;
    char chunk[4096];
    size_t got = 0;
    while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
      bytes.append(chunk, got);
    }
    std::fclose(f);
    return bytes;
  };
  EXPECT_EQ(read_bytes(fixture.compact_path()), read_bytes(fresh_path));
  EXPECT_EQ(fixture.updater()->stats().wal_records, 0u);
  // The updated graph was persisted alongside (binary format) and matches
  // the compacted index's fingerprint — the restart pair is complete.
  EXPECT_NE(response->body.find("\"graph_path\""), std::string::npos);
  auto emitted = ReadGraphAuto(fixture.compact_path() + ".graph.bin");
  ASSERT_TRUE(emitted.ok());
  auto compacted_index = WalkIndex::Load(fixture.compact_path());
  ASSERT_TRUE(compacted_index.ok());
  EXPECT_TRUE(compacted_index->ValidateGraph(*emitted).ok());
}

TEST(ServerTest, MetricsEndpointTwinsStats) {
  ServerFixture fixture;
  ASSERT_EQ(HttpGet(fixture.port(), "/v1/pair?a=0&b=1")->status, 200);
  ASSERT_EQ(HttpGet(fixture.port(), "/v1/topk?v=0&k=3")->status, 200);
  auto response = HttpGet(fixture.port(), "/metrics");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200);
  const std::string& body = response->body;
  EXPECT_NE(body.find("# TYPE simrank_requests_total counter"),
            std::string::npos);
  EXPECT_NE(body.find("simrank_requests_total{endpoint=\"pair\"} 1"),
            std::string::npos);
  EXPECT_NE(body.find("simrank_requests_total{endpoint=\"topk\"} 1"),
            std::string::npos);
  EXPECT_NE(body.find("simrank_responses_total{class=\"2xx\"}"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE simrank_request_duration_seconds histogram"),
            std::string::npos);
  EXPECT_NE(
      body.find(
          "simrank_request_duration_seconds_bucket{endpoint=\"pair\","
          "le=\"+Inf\"} 1"),
      std::string::npos);
  EXPECT_NE(body.find("simrank_request_duration_seconds_count{endpoint="
                      "\"pair\"} 1"),
            std::string::npos);
  EXPECT_NE(body.find("simrank_cache_hits_total"), std::string::npos);
  EXPECT_NE(body.find("simrank_index_vertices 60"), std::string::npos);
  // text/plain exposition, answered inline.
  ASSERT_NE(response->FindHeader("content-type"), nullptr);
  EXPECT_NE(response->FindHeader("content-type")->find("text/plain"),
            std::string::npos);
}

TEST(ServerTest, LatencyHistogramsSurfaceInStats) {
  ServerFixture fixture;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(HttpGet(fixture.port(),
                      StrFormat("/v1/pair?a=%d&b=9", i))
                  ->status,
              200);
  }
  auto response = HttpGet(fixture.port(), "/v1/stats");
  ASSERT_TRUE(response.ok());
  const std::string& body = response->body;
  ASSERT_NE(body.find("\"latency_us\":{"), std::string::npos);
  // The pair endpoint recorded every dispatch.
  const size_t pair_at = body.find("\"latency_us\"");
  size_t cursor = body.find("\"pair\"", pair_at);
  ASSERT_NE(cursor, std::string::npos);
  EXPECT_EQ(FindJsonNumber(body, "count", &cursor), 5.0);
  const LatencyHistogram::Snapshot snapshot =
      fixture.server().latency(ServerEndpoint::kPair);
  EXPECT_EQ(snapshot.count, 5u);
  uint64_t bucket_total = 0;
  for (uint32_t b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
    bucket_total += snapshot.buckets[b];
  }
  EXPECT_EQ(bucket_total, 5u);
  EXPECT_GT(snapshot.QuantileUpperMicros(0.5), 0u);
}

TEST(ServerTest, ConcurrentUpdatesAndQueriesOverHttp) {
  ServerOptions options;
  options.threads = 3;
  ServerFixture fixture(options, /*fingerprints=*/32,
                        /*with_updater=*/true);

  std::vector<std::thread> readers;
  std::atomic<bool> stop{false};
  for (int reader = 0; reader < 2; ++reader) {
    readers.emplace_back([&fixture, &stop, reader] {
      auto client = LoopbackHttpClient::Connect(fixture.port());
      ASSERT_TRUE(client.ok());
      uint32_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const VertexId v = (reader * 13 + i) % 60;
        auto response =
            client->Get(StrFormat("/v1/single_source?v=%u", v));
        ASSERT_TRUE(response.ok());
        ASSERT_EQ(response->status, 200);
        ++i;
      }
    });
  }

  auto update_client = LoopbackHttpClient::Connect(fixture.port());
  ASSERT_TRUE(update_client.ok());
  std::vector<Edge> inserted;
  for (int batch = 0; batch < 4; ++batch) {
    const Edge fresh = fixture.FreshEdge();
    inserted.push_back(fresh);
    auto response = update_client->Post(
        "/v1/update", StrFormat("+ %u %u\n", fresh.src, fresh.dst));
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->status, 200) << response->body;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  // Final state equals a rebuild on the updated graph.
  auto rebuilt = WalkIndex::Build(fixture.updater()->CurrentGraph(),
                                  fixture.index().options());
  ASSERT_TRUE(rebuilt.ok());
  for (const Edge& edge : inserted) {
    auto response = HttpGet(
        fixture.port(), StrFormat("/v1/pair?a=%u&b=%u", edge.src, edge.dst));
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->status, 200);
    const double served = FindJsonNumber(response->body, "score");
    const double expected = rebuilt->EstimatePair(edge.src, edge.dst);
    EXPECT_EQ(std::memcmp(&served, &expected, sizeof(double)), 0);
  }
}

TEST(ServerTest, CleanShutdownDrainsAndServeReturnsOk) {
  auto fixture = std::make_unique<ServerFixture>();
  const uint16_t port = fixture->port();
  ASSERT_EQ(HttpGet(port, "/healthz")->status, 200);
  fixture->StopAndJoin();
  EXPECT_TRUE(fixture->serve_status().ok())
      << fixture->serve_status().ToString();
  // The listener is gone: new connections are refused.
  auto after = LoopbackHttpClient::Connect(port);
  EXPECT_FALSE(after.ok());
}

TEST(ServerTest, ShutdownWaitsForInflightQueries) {
  ServerOptions options;
  options.threads = 2;
  options.handler_delay_ms = 200;
  auto fixture = std::make_unique<ServerFixture>(options);
  auto client = LoopbackHttpClient::Connect(fixture->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(
      client->SendRaw("GET /v1/pair?a=0&b=1 HTTP/1.1\r\n\r\n").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  fixture->server().Shutdown();
  // The in-flight query still completes and flushes before Serve returns.
  auto response = client->ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  fixture->StopAndJoin();
  EXPECT_TRUE(fixture->serve_status().ok());
}

TEST(ServerTraceTest, InlineTraceSplicesIntoEnvelope) {
  ServerFixture fixture;
  auto plain = HttpGet(fixture.port(), "/v1/pair?a=0&b=1");
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(plain->status, 200);
  auto traced = HttpGet(fixture.port(), "/v1/pair?a=0&b=1&trace=1");
  ASSERT_TRUE(traced.ok());
  ASSERT_EQ(traced->status, 200);
  // The traced envelope is the plain body with one ,"trace":{...} object
  // spliced before the closing brace — everything before it is unchanged.
  const std::string prefix = plain->body.substr(0, plain->body.size() - 1);
  EXPECT_EQ(traced->body.substr(0, prefix.size()), prefix);
  EXPECT_NE(traced->body.find(",\"trace\":{\"trace_id\":\""),
            std::string::npos);
  EXPECT_NE(traced->body.find("\"spans\":["), std::string::npos);
  EXPECT_NE(traced->body.find("\"stage\":\"request\""), std::string::npos);
  EXPECT_NE(traced->body.find("\"stage\":\"queue_wait\""),
            std::string::npos);
  EXPECT_NE(traced->body.find("\"stage\":\"serialize\""),
            std::string::npos);
  EXPECT_NE(traced->body.find("\"counters\":{"), std::string::npos);
  // The engine's cache instrumentation fed the trace: 0/1 was never
  // queried before, so the lookup missed.
  EXPECT_NE(traced->body.find("\"cache_misses\":"), std::string::npos);
  EXPECT_EQ(traced->body.back(), '}');

  // ?trace=0 is an explicit off; anything else is a client error.
  auto off = HttpGet(fixture.port(), "/v1/pair?a=0&b=1&trace=0");
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off->body, plain->body);
  auto bad = HttpGet(fixture.port(), "/v1/pair?a=0&b=1&trace=2");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 400);
}

TEST(ServerTraceTest, HeaderChannelLeavesBodyUntouched) {
  ServerFixture fixture;
  auto client = LoopbackHttpClient::Connect(fixture.port());
  ASSERT_TRUE(client.ok());
  auto plain = client->Get("/v1/topk?v=3&k=5");
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(plain->status, 200);
  auto traced =
      client->Get("/v1/topk?v=3&k=5", {{"X-Simrank-Trace", "abc123"}});
  ASSERT_TRUE(traced.ok());
  ASSERT_EQ(traced->status, 200);
  EXPECT_EQ(traced->body, plain->body)
      << "the header channel must never perturb a response body";
  const std::string* json = traced->FindHeader("x-simrank-trace-json");
  ASSERT_NE(json, nullptr);
  // The caller's trace id is echoed back, zero-padded to 16 digits.
  EXPECT_NE(json->find("\"trace_id\":\"0000000000abc123\""),
            std::string::npos);
  EXPECT_NE(json->find("\"stage\":\"request\""), std::string::npos);
  // A malformed trace id is ignored, not an error.
  auto ignored =
      client->Get("/v1/topk?v=3&k=5", {{"X-Simrank-Trace", "zzz"}});
  ASSERT_TRUE(ignored.ok());
  EXPECT_EQ(ignored->status, 200);
  EXPECT_EQ(ignored->FindHeader("x-simrank-trace-json"), nullptr);
}

TEST(ServerTraceTest, DisabledResponsesBitwiseIdenticalAcrossBackends) {
  // Four servers over the same saved index — {raw, compressed} x
  // {in-memory, mmap} — all with the tracing subsystem armed (sampling
  // on every request) plus the plain fixture as reference. Tracing must
  // not change one body byte on any backend.
  ServerFixture reference;
  const std::string base = ::testing::TempDir() + "trace-backends";
  struct Combo {
    std::string path;
    bool compress;
    bool mmap;
  };
  std::vector<Combo> combos = {{base + "-raw.widx", false, false},
                               {base + "-raw.widx", false, true},
                               {base + "-comp.widx", true, false},
                               {base + "-comp.widx", true, true}};
  WalkIndex::SaveOptions save;
  save.compress = false;
  ASSERT_TRUE(reference.index().Save(combos[0].path, save).ok());
  save.compress = true;
  ASSERT_TRUE(reference.index().Save(combos[2].path, save).ok());

  const std::vector<std::string> targets = {
      "/v1/pair?a=7&b=21", "/v1/single_source?v=9", "/v1/topk?v=4&k=6"};
  std::vector<std::string> expected;
  for (const std::string& target : targets) {
    auto response = HttpGet(reference.port(), target);
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->status, 200);
    expected.push_back(response->body);
  }

  for (const Combo& combo : combos) {
    WalkIndex::LoadOptions load;
    load.use_mmap = combo.mmap;
    auto index = WalkIndex::Load(combo.path, load);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    QueryEngine engine(*index);
    ServerOptions options;
    options.port = 0;
    options.trace_sample = 1.0;  // every request traced, nothing inline
    SimRankServer server(engine, options);
    ASSERT_TRUE(server.Bind().ok());
    std::thread serve([&server] { ASSERT_TRUE(server.Serve().ok()); });
    auto client = LoopbackHttpClient::Connect(server.port());
    ASSERT_TRUE(client.ok());
    for (size_t i = 0; i < targets.size(); ++i) {
      auto sampled = client->Get(targets[i]);
      ASSERT_TRUE(sampled.ok());
      ASSERT_EQ(sampled->status, 200);
      EXPECT_EQ(sampled->body, expected[i])
          << targets[i] << " differs on "
          << (combo.compress ? "compressed" : "raw") << "/"
          << (combo.mmap ? "mmap" : "in-memory");
      auto header_traced =
          client->Get(targets[i], {{"X-Simrank-Trace", "feed"}});
      ASSERT_TRUE(header_traced.ok());
      EXPECT_EQ(header_traced->body, expected[i]);
    }
    server.Shutdown();
    serve.join();
  }
  std::remove(combos[0].path.c_str());
  std::remove(combos[2].path.c_str());
}

TEST(ServerTraceTest, SlowQueryRingCapturesAndServes) {
  ServerOptions options;
  options.slow_query_us = 1;  // every real query is slower than 1us
  options.slow_ring_capacity = 4;
  ServerFixture fixture(options);
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(
        HttpGet(fixture.port(), StrFormat("/v1/pair?a=%d&b=9", i))->status,
        200);
  }
  auto slow = HttpGet(fixture.port(), "/v1/debug/slow");
  ASSERT_TRUE(slow.ok());
  ASSERT_EQ(slow->status, 200);
  const std::string& body = slow->body;
  size_t cursor = 0;
  EXPECT_EQ(FindJsonNumber(body, "capacity", &cursor), 4.0);
  cursor = 0;
  EXPECT_EQ(FindJsonNumber(body, "total_recorded", &cursor), 6.0);
  cursor = 0;
  EXPECT_EQ(FindJsonNumber(body, "threshold_us", &cursor), 1.0);
  // The ring kept the latest 4, each with its target and full trace.
  EXPECT_NE(body.find("\"target\":\"/v1/pair?a=5&b=9\""),
            std::string::npos);
  EXPECT_EQ(body.find("\"target\":\"/v1/pair?a=0&b=9\""), std::string::npos)
      << "oldest entries must be evicted";
  EXPECT_NE(body.find("\"trace\":{\"trace_id\":\""), std::string::npos);
  EXPECT_NE(body.find("\"stage\":\"request\""), std::string::npos);

  // The captures surface in stats, and every traced request fed the
  // per-stage histograms.
  auto stats = HttpGet(fixture.port(), "/v1/stats");
  ASSERT_TRUE(stats.ok());
  cursor = 0;
  EXPECT_EQ(FindJsonNumber(stats->body, "slow_captured", &cursor), 6.0);
  EXPECT_NE(stats->body.find("\"trace\":{"), std::string::npos);
  EXPECT_NE(stats->body.find("\"stages\":{"), std::string::npos);
  EXPECT_NE(stats->body.find("\"request\":{"), std::string::npos);
  auto metrics = HttpGet(fixture.port(), "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->body.find(
                "# TYPE simrank_stage_duration_seconds histogram"),
            std::string::npos);
  EXPECT_NE(metrics->body.find(
                "simrank_stage_duration_seconds_bucket{stage=\"request\","),
            std::string::npos);
  EXPECT_NE(metrics->body.find("simrank_slow_queries_total 6"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("simrank_traced_requests_total"),
            std::string::npos);
  EXPECT_NE(metrics->body.find(
                "simrank_stage_counter_total{counter=\"cache_misses\"}"),
            std::string::npos);
}

TEST(ServerTraceTest, AccessAndTraceLogsWriteJsonl) {
  const std::string access_path = ::testing::TempDir() + "access.jsonl";
  const std::string trace_path = ::testing::TempDir() + "trace.jsonl";
  std::remove(access_path.c_str());
  std::remove(trace_path.c_str());
  {
    ServerOptions options;
    options.access_log_path = access_path;
    options.trace_log_path = trace_path;
    options.slow_query_us = 1;
    ServerFixture fixture(options);
    ASSERT_EQ(HttpGet(fixture.port(), "/v1/pair?a=0&b=1")->status, 200);
    ASSERT_EQ(HttpGet(fixture.port(), "/healthz")->status, 200);
    ASSERT_EQ(HttpGet(fixture.port(), "/nope")->status, 404);
  }  // server destruction drains both sinks

  auto read_file = [](const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    OIPSIM_CHECK_MSG(f != nullptr, "missing log %s", path.c_str());
    std::string content;
    char chunk[4096];
    size_t got = 0;
    while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
      content.append(chunk, got);
    }
    std::fclose(f);
    return content;
  };
  const std::string access = read_file(access_path);
  // One line per request — query, healthz and the 404 all flow through
  // the same response path.
  EXPECT_NE(access.find("\"method\":\"GET\",\"path\":\"/v1/pair\","
                        "\"status\":200"),
            std::string::npos);
  EXPECT_NE(access.find("\"path\":\"/healthz\",\"status\":200"),
            std::string::npos);
  EXPECT_NE(access.find("\"path\":\"/nope\",\"status\":404"),
            std::string::npos);
  EXPECT_NE(access.find("\"unix_micros\":"), std::string::npos);
  EXPECT_NE(access.find("\"micros\":"), std::string::npos);
  // The dispatched query was traced (slow capture), so its access line
  // carries the trace id for correlation with the trace log.
  EXPECT_NE(access.find("\"trace_id\":\""), std::string::npos);

  const std::string trace = read_file(trace_path);
  EXPECT_NE(trace.find("\"target\":\"/v1/pair?a=0&b=1\""),
            std::string::npos);
  EXPECT_NE(trace.find("\"trace\":{\"trace_id\":\""), std::string::npos);
  std::remove(access_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(ServerTraceTest, ValidateRejectsBadTraceOptions) {
  ServerOptions options;
  options.trace_sample = 1.5;
  EXPECT_FALSE(options.Validate().ok());
  options = ServerOptions();
  options.trace_sample = -0.1;
  EXPECT_FALSE(options.Validate().ok());
  options = ServerOptions();
  options.slow_ring_capacity = 1 << 20;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(ServerOptionsTest, ValidateRejectsZeroCaps) {
  ServerOptions options;
  options.max_inflight = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = ServerOptions();
  options.max_endpoint_inflight = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = ServerOptions();
  options.bind_address = "";
  EXPECT_FALSE(options.Validate().ok());
  EXPECT_TRUE(ServerOptions().Validate().ok());
}

}  // namespace
}  // namespace simrank
