// End-to-end tests of the epoll serving frontend: real sockets against a
// real QueryEngine, concurrent clients, admission control, shutdown.
#include "simrank/server/server.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "simrank/common/string_util.h"
#include "simrank/index/query_engine.h"
#include "simrank/index/walk_index.h"
#include "simrank/server/http_client.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

/// A server over a small deterministic graph, running on its own thread.
class ServerFixture {
 public:
  explicit ServerFixture(ServerOptions options = {},
                         uint32_t fingerprints = 64)
      : graph_(testing::RandomGraph(60, 240, 11)),
        index_(BuildIndex(graph_, fingerprints)),
        engine_(index_),
        reference_engine_(index_) {
    options.port = 0;  // every fixture gets its own free port
    server_ = std::make_unique<SimRankServer>(engine_, options);
    OIPSIM_CHECK(server_->Bind().ok());
    serve_thread_ = std::thread([this] { serve_status_ = server_->Serve(); });
  }

  ~ServerFixture() { StopAndJoin(); }

  void StopAndJoin() {
    if (serve_thread_.joinable()) {
      server_->Shutdown();
      serve_thread_.join();
    }
  }

  uint16_t port() const { return server_->port(); }
  SimRankServer& server() { return *server_; }
  const DiGraph& graph() const { return graph_; }
  /// A second engine over the same index: direct answers unperturbed by
  /// the served engine's cache state (they must agree bitwise anyway).
  QueryEngine& reference() { return reference_engine_; }
  const Status& serve_status() const { return serve_status_; }

 private:
  static WalkIndex BuildIndex(const DiGraph& graph, uint32_t fingerprints) {
    WalkIndexOptions options;
    options.num_fingerprints = fingerprints;
    auto index = WalkIndex::Build(graph, options);
    OIPSIM_CHECK(index.ok());
    return std::move(index).value();
  }

  DiGraph graph_;
  WalkIndex index_;
  QueryEngine engine_;
  QueryEngine reference_engine_;
  std::unique_ptr<SimRankServer> server_;
  std::thread serve_thread_;
  Status serve_status_;
};

TEST(ServerTest, PairMatchesDirectEngineBitwise) {
  ServerFixture fixture;
  auto client = LoopbackHttpClient::Connect(fixture.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (VertexId a = 0; a < fixture.graph().n(); a += 7) {
    for (VertexId b = 1; b < fixture.graph().n(); b += 11) {
      auto response = client->Get(
          StrFormat("/v1/pair?a=%u&b=%u", a, b));
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      ASSERT_EQ(response->status, 200) << response->body;
      const double served = FindJsonNumber(response->body, "score");
      auto direct = fixture.reference().Pair(a, b);
      ASSERT_TRUE(direct.ok());
      const double expected = *direct;
      EXPECT_EQ(std::memcmp(&served, &expected, sizeof(double)), 0)
          << "pair (" << a << ", " << b << "): served " << served
          << " direct " << expected;
    }
  }
}

TEST(ServerTest, SingleSourceRowMatchesBitwise) {
  ServerFixture fixture;
  auto client = LoopbackHttpClient::Connect(fixture.port());
  ASSERT_TRUE(client.ok());
  for (VertexId v : {0u, 17u, 59u}) {
    auto response = client->Get(StrFormat("/v1/single_source?v=%u", v));
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->status, 200) << response->body;
    auto direct = fixture.reference().SingleSource(v);
    ASSERT_TRUE(direct.ok());
    const std::vector<double>& expected = **direct;
    const std::vector<double> served =
        FindJsonNumberArray(response->body, "scores");
    ASSERT_EQ(served.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(std::memcmp(&served[i], &expected[i], sizeof(double)), 0)
          << "row " << v << " entry " << i;
    }
  }
}

TEST(ServerTest, TopKMatchesDirectEngineBitwise) {
  ServerFixture fixture;
  auto client = LoopbackHttpClient::Connect(fixture.port());
  ASSERT_TRUE(client.ok());
  for (VertexId v : {3u, 42u}) {
    auto response = client->Get(StrFormat("/v1/topk?v=%u&k=5", v));
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->status, 200) << response->body;
    auto direct = fixture.reference().TopK(v, 5);
    ASSERT_TRUE(direct.ok());
    size_t cursor = 0;
    for (const ScoredVertex& scored : *direct) {
      const double vertex =
          FindJsonNumber(response->body, "vertex", &cursor);
      const double served =
          FindJsonNumber(response->body, "score", &cursor);
      EXPECT_EQ(static_cast<VertexId>(vertex), scored.vertex);
      EXPECT_EQ(std::memcmp(&served, &scored.score, sizeof(double)), 0)
          << "topk of " << v << " at vertex " << scored.vertex;
    }
  }
}

TEST(ServerTest, ConcurrentClientsGetConsistentAnswers) {
  ServerOptions options;
  options.threads = 4;
  ServerFixture fixture(options);
  constexpr uint32_t kClients = 4;
  constexpr uint32_t kRequests = 40;
  std::vector<std::thread> clients;
  std::vector<int> failures(kClients, 0);
  for (uint32_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&fixture, &failures, c] {
      auto client = LoopbackHttpClient::Connect(fixture.port());
      if (!client.ok()) {
        failures[c] = 1;
        return;
      }
      for (uint32_t i = 0; i < kRequests; ++i) {
        const VertexId a = (c * 13 + i) % fixture.graph().n();
        const VertexId b = (c * 7 + i * 3) % fixture.graph().n();
        auto response =
            client->Get(StrFormat("/v1/pair?a=%u&b=%u", a, b));
        if (!response.ok() || response->status != 200) {
          failures[c] = 2;
          return;
        }
        const double served = FindJsonNumber(response->body, "score");
        auto direct = fixture.reference().Pair(a, b);
        const double expected = *direct;
        if (std::memcmp(&served, &expected, sizeof(double)) != 0) {
          failures[c] = 3;
          return;
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  for (uint32_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
  }
  const ServerStats stats = fixture.server().stats();
  EXPECT_GE(stats.responses_2xx, kClients * kRequests);
  EXPECT_EQ(stats.responses_5xx, 0u);
}

TEST(ServerTest, RejectsWith429OverInflightCap) {
  ServerOptions options;
  options.threads = 2;
  options.max_inflight = 1;
  options.handler_delay_ms = 300;
  options.retry_after_seconds = 7;
  ServerFixture fixture(options);

  auto slow = LoopbackHttpClient::Connect(fixture.port());
  ASSERT_TRUE(slow.ok());
  // Dispatch the first query; it holds the single in-flight slot for
  // handler_delay_ms.
  ASSERT_TRUE(
      slow->SendRaw("GET /v1/pair?a=0&b=1 HTTP/1.1\r\n\r\n").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  auto rejected = HttpGet(fixture.port(), "/v1/pair?a=2&b=3");
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected->status, 429) << rejected->body;
  ASSERT_NE(rejected->FindHeader("retry-after"), nullptr);
  EXPECT_EQ(*rejected->FindHeader("retry-after"), "7");

  // Inline endpoints still answer while the pool is saturated.
  auto health = HttpGet(fixture.port(), "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);

  // The admitted query completes normally.
  auto first = slow->ReadResponse();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->status, 200);

  const ServerStats stats = fixture.server().stats();
  EXPECT_EQ(stats.rejected_inflight, 1u);
  EXPECT_EQ(stats.rejected_endpoint, 0u);
}

TEST(ServerTest, RejectsWith503OverEndpointCap) {
  ServerOptions options;
  options.threads = 4;
  options.max_inflight = 16;
  options.max_endpoint_inflight = 1;
  options.handler_delay_ms = 300;
  ServerFixture fixture(options);

  auto slow = LoopbackHttpClient::Connect(fixture.port());
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(
      slow->SendRaw("GET /v1/pair?a=0&b=1 HTTP/1.1\r\n\r\n").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Same endpoint: over its cap -> 503.
  auto rejected = HttpGet(fixture.port(), "/v1/pair?a=2&b=3");
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected->status, 503) << rejected->body;
  EXPECT_NE(rejected->FindHeader("retry-after"), nullptr);

  // A different endpoint still has budget.
  auto other = HttpGet(fixture.port(), "/v1/topk?v=1&k=3");
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->status, 200) << other->body;

  auto first = slow->ReadResponse();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->status, 200);

  const ServerStats stats = fixture.server().stats();
  EXPECT_EQ(stats.rejected_endpoint, 1u);
}

TEST(ServerTest, BadParamsAndRoutes) {
  ServerFixture fixture;
  struct Case {
    const char* target;
    int expected_status;
  };
  const Case cases[] = {
      {"/v1/pair?a=0", 400},           // missing b
      {"/v1/pair?a=x&b=1", 400},       // non-numeric
      {"/v1/pair?a=0&b=1&c=2", 400},   // unknown parameter
      {"/v1/pair?a=0&a=1&b=2", 400},   // duplicate parameter
      {"/v1/pair?a=0&b=4294967296", 400},  // beyond uint32
      {"/v1/pair?a=0&b=999", 400},     // out of range for the index
      {"/v1/single_source", 400},      // missing v
      {"/v1/topk?v=1&k=zz", 400},      // malformed k
      {"/v1/nope?v=1", 404},           // unknown endpoint
      {"/", 404},
  };
  for (const Case& test_case : cases) {
    auto response = HttpGet(fixture.port(), test_case.target);
    ASSERT_TRUE(response.ok()) << test_case.target;
    EXPECT_EQ(response->status, test_case.expected_status)
        << test_case.target << " -> " << response->body;
    EXPECT_NE(response->body.find("\"error\""), std::string::npos)
        << test_case.target;
  }

  // Non-GET methods are 405 with Allow.
  auto client = LoopbackHttpClient::Connect(fixture.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendRaw("DELETE /v1/pair HTTP/1.1\r\n\r\n").ok());
  auto response = client->ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 405);
  ASSERT_NE(response->FindHeader("allow"), nullptr);
  EXPECT_EQ(*response->FindHeader("allow"), "GET");
}

TEST(ServerTest, MalformedRequestGets400AndClose) {
  ServerFixture fixture;
  auto client = LoopbackHttpClient::Connect(fixture.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendRaw("NOT-HTTP\r\n\r\n").ok());
  auto response = client->ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 400);
  ASSERT_NE(response->FindHeader("connection"), nullptr);
  EXPECT_EQ(*response->FindHeader("connection"), "close");
}

TEST(ServerTest, PipelinedRequestsAnswerInOrder) {
  ServerFixture fixture;
  auto client = LoopbackHttpClient::Connect(fixture.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client
                  ->SendRaw("GET /v1/pair?a=1&b=2 HTTP/1.1\r\n\r\n"
                            "GET /v1/pair?a=3&b=4 HTTP/1.1\r\n\r\n"
                            "GET /healthz HTTP/1.1\r\n\r\n")
                  .ok());
  auto first = client->ReadResponse();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->status, 200);
  EXPECT_NE(first->body.find("\"a\":1"), std::string::npos);
  auto second = client->ReadResponse();
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second->body.find("\"a\":3"), std::string::npos);
  auto third = client->ReadResponse();
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->body, "ok\n");
}

TEST(ServerTest, HalfCloseStillAnswersEveryBufferedRequest) {
  // The send-all/shutdown(SHUT_WR)/read-all client pattern: EOF must not
  // drop requests that were already on the wire.
  ServerFixture fixture;
  auto client = LoopbackHttpClient::Connect(fixture.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client
                  ->SendRaw("GET /v1/pair?a=1&b=2 HTTP/1.1\r\n\r\n"
                            "GET /v1/pair?a=3&b=4 HTTP/1.1\r\n\r\n")
                  .ok());
  ASSERT_TRUE(client->ShutdownWrite().ok());
  auto first = client->ReadResponse();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->status, 200);
  EXPECT_NE(first->body.find("\"a\":1"), std::string::npos);
  auto second = client->ReadResponse();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->status, 200);
  EXPECT_NE(second->body.find("\"a\":3"), std::string::npos);
  // Then the server closes: no third response.
  EXPECT_FALSE(client->ReadResponse().ok());
}

TEST(ServerTest, LongPipelineDrainsCompletely) {
  // Many inline-answered requests in one burst: exercises the resume
  // path where parsing pauses on the output-backlog cap and continues as
  // responses flush.
  ServerFixture fixture;
  auto client = LoopbackHttpClient::Connect(fixture.port());
  ASSERT_TRUE(client.ok());
  constexpr int kPipelined = 50;
  std::string burst;
  for (int i = 0; i < kPipelined; ++i) {
    burst += "GET /healthz HTTP/1.1\r\n\r\n";
  }
  ASSERT_TRUE(client->SendRaw(burst).ok());
  for (int i = 0; i < kPipelined; ++i) {
    auto response = client->ReadResponse();
    ASSERT_TRUE(response.ok()) << "response " << i;
    EXPECT_EQ(response->status, 200);
  }
}

TEST(ServerTest, StatsEndpointReportsCountersAndIndexInfo) {
  ServerFixture fixture;
  ASSERT_TRUE(HttpGet(fixture.port(), "/v1/pair?a=0&b=1").ok());
  ASSERT_TRUE(HttpGet(fixture.port(), "/v1/topk?v=0&k=3").ok());
  auto response = HttpGet(fixture.port(), "/v1/stats");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200);
  const std::string& body = response->body;
  EXPECT_EQ(FindJsonNumber(body, "pair"), 1.0);
  EXPECT_EQ(FindJsonNumber(body, "topk"), 1.0);
  EXPECT_EQ(FindJsonNumber(body, "vertices"),
            static_cast<double>(fixture.graph().n()));
  EXPECT_EQ(FindJsonNumber(body, "fingerprints"), 64.0);
  EXPECT_NE(body.find("\"backend\":\"in-memory\""), std::string::npos);
  EXPECT_NE(body.find("\"graph_fingerprint\":\""), std::string::npos);
  EXPECT_NE(body.find("\"cache\":{"), std::string::npos);
}

TEST(ServerTest, CleanShutdownDrainsAndServeReturnsOk) {
  auto fixture = std::make_unique<ServerFixture>();
  const uint16_t port = fixture->port();
  ASSERT_EQ(HttpGet(port, "/healthz")->status, 200);
  fixture->StopAndJoin();
  EXPECT_TRUE(fixture->serve_status().ok())
      << fixture->serve_status().ToString();
  // The listener is gone: new connections are refused.
  auto after = LoopbackHttpClient::Connect(port);
  EXPECT_FALSE(after.ok());
}

TEST(ServerTest, ShutdownWaitsForInflightQueries) {
  ServerOptions options;
  options.threads = 2;
  options.handler_delay_ms = 200;
  auto fixture = std::make_unique<ServerFixture>(options);
  auto client = LoopbackHttpClient::Connect(fixture->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(
      client->SendRaw("GET /v1/pair?a=0&b=1 HTTP/1.1\r\n\r\n").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  fixture->server().Shutdown();
  // The in-flight query still completes and flushes before Serve returns.
  auto response = client->ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  fixture->StopAndJoin();
  EXPECT_TRUE(fixture->serve_status().ok());
}

TEST(ServerOptionsTest, ValidateRejectsZeroCaps) {
  ServerOptions options;
  options.max_inflight = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = ServerOptions();
  options.max_endpoint_inflight = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = ServerOptions();
  options.bind_address = "";
  EXPECT_FALSE(options.Validate().ok());
  EXPECT_TRUE(ServerOptions().Validate().ok());
}

}  // namespace
}  // namespace simrank
