#include "simrank/server/http.h"

#include <string>

#include <gtest/gtest.h>

namespace simrank {
namespace {

HttpParseStatus Parse(std::string_view input, HttpRequest* request,
                      const HttpLimits& limits = HttpLimits()) {
  return ParseHttpRequest(input, limits, request);
}

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpRequest request;
  const std::string input =
      "GET /v1/pair?a=1&b=2 HTTP/1.1\r\nHost: localhost\r\n\r\n";
  const HttpParseStatus parsed = Parse(input, &request);
  ASSERT_EQ(parsed.outcome, HttpParseStatus::kComplete);
  EXPECT_EQ(parsed.consumed, input.size());
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/v1/pair");
  ASSERT_EQ(request.params.size(), 2u);
  EXPECT_EQ(request.params[0].first, "a");
  EXPECT_EQ(request.params[0].second, "1");
  EXPECT_EQ(request.params[1].first, "b");
  EXPECT_EQ(request.params[1].second, "2");
  EXPECT_TRUE(request.keep_alive);
  ASSERT_NE(request.FindParam("a"), nullptr);
  EXPECT_EQ(*request.FindParam("a"), "1");
  EXPECT_EQ(request.FindParam("zz"), nullptr);
}

TEST(HttpParserTest, TruncatedRequestNeedsMore) {
  HttpRequest request;
  const std::string full =
      "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  // Every proper prefix must come back kNeedMore, never an error.
  for (size_t length = 0; length < full.size(); ++length) {
    const HttpParseStatus parsed =
        Parse(std::string_view(full).substr(0, length), &request);
    EXPECT_EQ(parsed.outcome, HttpParseStatus::kNeedMore)
        << "prefix length " << length;
  }
  EXPECT_EQ(Parse(full, &request).outcome, HttpParseStatus::kComplete);
}

TEST(HttpParserTest, PipelinedRequestsConsumeExactly) {
  HttpRequest request;
  const std::string first = "GET /v1/pair?a=1&b=2 HTTP/1.1\r\n\r\n";
  const std::string second = "GET /healthz HTTP/1.1\r\n\r\n";
  const std::string input = first + second;
  HttpParseStatus parsed = Parse(input, &request);
  ASSERT_EQ(parsed.outcome, HttpParseStatus::kComplete);
  EXPECT_EQ(parsed.consumed, first.size());
  EXPECT_EQ(request.path, "/v1/pair");
  parsed = Parse(std::string_view(input).substr(parsed.consumed), &request);
  ASSERT_EQ(parsed.outcome, HttpParseStatus::kComplete);
  EXPECT_EQ(parsed.consumed, second.size());
  EXPECT_EQ(request.path, "/healthz");
}

TEST(HttpParserTest, PercentDecodingInPathAndQuery) {
  HttpRequest request;
  const HttpParseStatus parsed = Parse(
      "GET /v1%2Fx?key%20a=va%6Cue+1&flag HTTP/1.1\r\n\r\n", &request);
  ASSERT_EQ(parsed.outcome, HttpParseStatus::kComplete);
  EXPECT_EQ(request.path, "/v1/x");
  ASSERT_EQ(request.params.size(), 2u);
  EXPECT_EQ(request.params[0].first, "key a");
  EXPECT_EQ(request.params[0].second, "value 1");
  EXPECT_EQ(request.params[1].first, "flag");
  EXPECT_EQ(request.params[1].second, "");
}

TEST(HttpParserTest, PlusStaysLiteralInPath) {
  HttpRequest request;
  const HttpParseStatus parsed =
      Parse("GET /a+b HTTP/1.1\r\n\r\n", &request);
  ASSERT_EQ(parsed.outcome, HttpParseStatus::kComplete);
  EXPECT_EQ(request.path, "/a+b");
}

TEST(HttpParserTest, MalformedPercentEscapeIs400) {
  HttpRequest request;
  for (const char* target : {"/v1/pair?a=%zz", "/v1/pair?a=%1", "/%"}) {
    const HttpParseStatus parsed = Parse(
        std::string("GET ") + target + " HTTP/1.1\r\n\r\n", &request);
    EXPECT_EQ(parsed.outcome, HttpParseStatus::kError) << target;
    EXPECT_EQ(parsed.error_status, 400) << target;
  }
}

TEST(HttpParserTest, MalformedRequestLineIs400) {
  HttpRequest request;
  for (const char* input :
       {"GET/healthz HTTP/1.1\r\n\r\n", "GET /x HTTP/1.1 extra\r\n\r\n",
        "GET relative HTTP/1.1\r\n\r\n", " / HTTP/1.1\r\n\r\n"}) {
    const HttpParseStatus parsed = Parse(input, &request);
    EXPECT_EQ(parsed.outcome, HttpParseStatus::kError) << input;
    EXPECT_EQ(parsed.error_status, 400) << input;
  }
}

TEST(HttpParserTest, UnsupportedVersionIs505) {
  HttpRequest request;
  const HttpParseStatus parsed =
      Parse("GET / HTTP/2.0\r\n\r\n", &request);
  ASSERT_EQ(parsed.outcome, HttpParseStatus::kError);
  EXPECT_EQ(parsed.error_status, 505);
}

TEST(HttpParserTest, OversizedHeadIs431BeforeTermination) {
  HttpLimits limits;
  limits.max_request_bytes = 128;
  HttpRequest request;
  // No terminator yet, but already over budget: must reject now, not
  // buffer forever.
  const std::string drip =
      "GET / HTTP/1.1\r\nX-Pad: " + std::string(200, 'a');
  const HttpParseStatus parsed = Parse(drip, &request, limits);
  ASSERT_EQ(parsed.outcome, HttpParseStatus::kError);
  EXPECT_EQ(parsed.error_status, 431);
}

TEST(HttpParserTest, OversizedTargetIs414) {
  HttpLimits limits;
  limits.max_target_bytes = 32;
  HttpRequest request;
  const std::string input =
      "GET /v1/pair?a=" + std::string(64, '1') + " HTTP/1.1\r\n\r\n";
  const HttpParseStatus parsed = Parse(input, &request, limits);
  ASSERT_EQ(parsed.outcome, HttpParseStatus::kError);
  EXPECT_EQ(parsed.error_status, 414);
}

TEST(HttpParserTest, TooManyHeadersIs431) {
  HttpLimits limits;
  limits.max_headers = 4;
  std::string input = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 6; ++i) {
    input += "X-H" + std::to_string(i) + ": v\r\n";
  }
  input += "\r\n";
  HttpRequest request;
  const HttpParseStatus parsed = Parse(input, &request, limits);
  ASSERT_EQ(parsed.outcome, HttpParseStatus::kError);
  EXPECT_EQ(parsed.error_status, 431);
}

TEST(HttpParserTest, ContentLengthBodiesParse) {
  HttpRequest request;
  HttpParseStatus parsed = Parse(
      "POST /v1/update HTTP/1.1\r\nContent-Length: 8\r\n\r\n+ 0 1\n- ",
      &request);
  ASSERT_EQ(parsed.outcome, HttpParseStatus::kComplete);
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.body, "+ 0 1\n- ");
  EXPECT_EQ(parsed.consumed,
            std::string("POST /v1/update HTTP/1.1\r\nContent-Length: "
                        "8\r\n\r\n+ 0 1\n- ")
                .size());

  // An explicit zero-length body is accepted and leaves body empty.
  parsed = Parse("GET / HTTP/1.1\r\nContent-Length: 0\r\n\r\n", &request);
  ASSERT_EQ(parsed.outcome, HttpParseStatus::kComplete);
  EXPECT_TRUE(request.body.empty());
}

TEST(HttpParserTest, IncompleteBodyNeedsMore) {
  HttpRequest request;
  // Head complete, body short by one byte: not parseable yet.
  const std::string input =
      "POST /v1/update HTTP/1.1\r\nContent-Length: 6\r\n\r\n+ 0 1";
  EXPECT_EQ(Parse(input, &request).outcome, HttpParseStatus::kNeedMore);
  // The final byte completes it; a pipelined successor stays untouched.
  const HttpParseStatus parsed = Parse(
      input + "\nGET /healthz HTTP/1.1\r\n\r\n", &request);
  ASSERT_EQ(parsed.outcome, HttpParseStatus::kComplete);
  EXPECT_EQ(request.body, "+ 0 1\n");
  EXPECT_EQ(parsed.consumed, input.size() + 1);
}

TEST(HttpParserTest, BodyLimitsAndTransferEncoding) {
  HttpLimits limits;
  limits.max_body_bytes = 16;
  HttpRequest request;
  // Over-limit bodies are rejected from the header alone — no body byte
  // is ever buffered.
  HttpParseStatus parsed = Parse(
      "POST /v1/update HTTP/1.1\r\nContent-Length: 17\r\n\r\n", &request,
      limits);
  ASSERT_EQ(parsed.outcome, HttpParseStatus::kError);
  EXPECT_EQ(parsed.error_status, 413);

  parsed = Parse(
      "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", &request);
  ASSERT_EQ(parsed.outcome, HttpParseStatus::kError);
  EXPECT_EQ(parsed.error_status, 501);

  parsed = Parse(
      "POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\n",
      &request);
  ASSERT_EQ(parsed.outcome, HttpParseStatus::kError);
  EXPECT_EQ(parsed.error_status, 400);
}

TEST(HttpParserTest, EmbeddedNulBytesAreRejected) {
  HttpRequest request;
  // strchr-based token checks famously accept '\0' (it matches the
  // literal's terminator); both the method and header-name paths must
  // reject it explicitly.
  const std::string nul_method("GE\0T / HTTP/1.1\r\n\r\n", 19);
  HttpParseStatus parsed = Parse(nul_method, &request);
  ASSERT_EQ(parsed.outcome, HttpParseStatus::kError);
  EXPECT_EQ(parsed.error_status, 400);

  const std::string nul_header("GET / HTTP/1.1\r\nX\0Y: v\r\n\r\n", 26);
  parsed = Parse(nul_header, &request);
  ASSERT_EQ(parsed.outcome, HttpParseStatus::kError);
  EXPECT_EQ(parsed.error_status, 400);
}

TEST(HttpParserTest, MalformedHeaderFieldIs400) {
  HttpRequest request;
  for (const char* input :
       {"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
        "GET / HTTP/1.1\r\n: empty-name\r\n\r\n",
        "GET / HTTP/1.1\r\nBad Name: v\r\n\r\n"}) {
    const HttpParseStatus parsed = Parse(input, &request);
    EXPECT_EQ(parsed.outcome, HttpParseStatus::kError) << input;
    EXPECT_EQ(parsed.error_status, 400) << input;
  }
}

TEST(HttpParserTest, KeepAliveSemantics) {
  HttpRequest request;
  ASSERT_EQ(Parse("GET / HTTP/1.1\r\n\r\n", &request).outcome,
            HttpParseStatus::kComplete);
  EXPECT_TRUE(request.keep_alive);

  ASSERT_EQ(
      Parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n", &request)
          .outcome,
      HttpParseStatus::kComplete);
  EXPECT_FALSE(request.keep_alive);

  ASSERT_EQ(Parse("GET / HTTP/1.0\r\n\r\n", &request).outcome,
            HttpParseStatus::kComplete);
  EXPECT_FALSE(request.keep_alive);
  EXPECT_EQ(request.minor_version, 0);

  ASSERT_EQ(
      Parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", &request)
          .outcome,
      HttpParseStatus::kComplete);
  EXPECT_TRUE(request.keep_alive);

  // Token list form.
  ASSERT_EQ(Parse("GET / HTTP/1.1\r\nConnection: foo, Close\r\n\r\n",
                  &request)
                .outcome,
            HttpParseStatus::kComplete);
  EXPECT_FALSE(request.keep_alive);
}

TEST(HttpParserTest, EmptyAndDuplicateQueryPieces) {
  HttpRequest request;
  const HttpParseStatus parsed =
      Parse("GET /x?a=1&&a=2&b= HTTP/1.1\r\n\r\n", &request);
  ASSERT_EQ(parsed.outcome, HttpParseStatus::kComplete);
  ASSERT_EQ(request.params.size(), 3u);
  EXPECT_EQ(*request.FindParam("a"), "1");  // first wins
  EXPECT_EQ(*request.FindParam("b"), "");
}

TEST(HttpResponseTest, SerializesStatusHeadersAndBody) {
  HttpResponseOptions options;
  options.keep_alive = true;
  options.extra_headers = {{"Retry-After", "1"}};
  const std::string response =
      BuildHttpResponse(429, "{\"error\":1}", options);
  EXPECT_EQ(response,
            "HTTP/1.1 429 Too Many Requests\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: 11\r\n"
            "Connection: keep-alive\r\n"
            "Retry-After: 1\r\n"
            "\r\n"
            "{\"error\":1}");
}

TEST(HttpResponseTest, CloseConnectionHeader) {
  HttpResponseOptions options;
  options.keep_alive = false;
  options.content_type = "text/plain";
  const std::string response = BuildHttpResponse(200, "ok\n", options);
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain\r\n"),
            std::string::npos);
}

TEST(PercentDecodeTest, Basics) {
  std::string out;
  EXPECT_TRUE(PercentDecode("a%2Bb", false, &out));
  EXPECT_EQ(out, "a+b");
  EXPECT_TRUE(PercentDecode("a+b", true, &out));
  EXPECT_EQ(out, "a b");
  EXPECT_TRUE(PercentDecode("a+b", false, &out));
  EXPECT_EQ(out, "a+b");
  EXPECT_FALSE(PercentDecode("%", false, &out));
  EXPECT_FALSE(PercentDecode("%4", false, &out));
  EXPECT_FALSE(PercentDecode("%gg", false, &out));
}

}  // namespace
}  // namespace simrank
