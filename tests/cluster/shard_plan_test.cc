// ShardPlan: text format round-trip, structural validation, EvenSplit and
// owner lookup.
#include "simrank/cluster/shard_plan.h"

#include <string>

#include <gtest/gtest.h>

namespace simrank {
namespace {

ShardPlan TwoShardPlan() {
  ShardPlan plan;
  plan.epoch = 3;
  plan.graph_fingerprint = 0x00c5a2f19e30bd74ull;
  plan.n = 10;
  plan.shards = {ShardRange{0, 0, 6}, ShardRange{1, 6, 10}};
  return plan;
}

TEST(ShardPlanTest, FormatParseRoundTripIsExact) {
  const ShardPlan plan = TwoShardPlan();
  const std::string text = plan.Format();
  auto parsed = ShardPlan::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, plan);
  // Byte-deterministic: formatting the parse reproduces the text.
  EXPECT_EQ(parsed->Format(), text);
}

TEST(ShardPlanTest, FormatIsTheDocumentedShape) {
  const std::string text = TwoShardPlan().Format();
  EXPECT_NE(text.find("simrank-shard-plan v1\n"), std::string::npos);
  EXPECT_NE(text.find("epoch 3\n"), std::string::npos);
  EXPECT_NE(text.find("graph_fingerprint 00c5a2f19e30bd74\n"),
            std::string::npos);
  EXPECT_NE(text.find("n 10\n"), std::string::npos);
  EXPECT_NE(text.find("shards 2\n"), std::string::npos);
  EXPECT_NE(text.find("shard 0 0 6\n"), std::string::npos);
  EXPECT_NE(text.find("shard 1 6 10\n"), std::string::npos);
}

TEST(ShardPlanTest, ParseToleratesCommentsAndBlankLines) {
  auto parsed = ShardPlan::Parse(
      "# a plan\n"
      "simrank-shard-plan v1\n"
      "\n"
      "epoch 1\n"
      "graph_fingerprint 0000000000000001\n"
      "n 4\n"
      "shards 2\n"
      "# the split\n"
      "shard 0 0 2\n"
      "shard 1 2 4\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->shards.size(), 2u);
}

TEST(ShardPlanTest, ValidateRejectsStructuralErrors) {
  // A gap between ranges.
  ShardPlan plan = TwoShardPlan();
  plan.shards[1].begin = 7;
  EXPECT_FALSE(plan.Validate().ok());

  // Overlapping ranges.
  plan = TwoShardPlan();
  plan.shards[1].begin = 5;
  EXPECT_FALSE(plan.Validate().ok());

  // Not covering [0, n).
  plan = TwoShardPlan();
  plan.shards[1].end = 9;
  EXPECT_FALSE(plan.Validate().ok());

  // Not starting at 0.
  plan = TwoShardPlan();
  plan.shards[0].begin = 1;
  EXPECT_FALSE(plan.Validate().ok());

  // Shard ids out of order.
  plan = TwoShardPlan();
  plan.shards[0].shard_id = 1;
  plan.shards[1].shard_id = 0;
  EXPECT_FALSE(plan.Validate().ok());

  // An empty range.
  plan = TwoShardPlan();
  plan.shards[0].end = 0;
  EXPECT_FALSE(plan.Validate().ok());

  // No shards / n == 0.
  plan = TwoShardPlan();
  plan.shards.clear();
  EXPECT_FALSE(plan.Validate().ok());
  plan = TwoShardPlan();
  plan.n = 0;
  plan.shards.clear();
  EXPECT_FALSE(plan.Validate().ok());

  EXPECT_TRUE(TwoShardPlan().Validate().ok());
}

TEST(ShardPlanTest, ParseRejectsMalformedText) {
  // Wrong magic.
  EXPECT_FALSE(ShardPlan::Parse("simrank-shard-plan v2\n").ok());
  // Truncated (declared 2 shards, one given).
  EXPECT_FALSE(ShardPlan::Parse(
                   "simrank-shard-plan v1\n"
                   "epoch 1\n"
                   "graph_fingerprint 0000000000000001\n"
                   "n 4\n"
                   "shards 2\n"
                   "shard 0 0 2\n")
                   .ok());
  // Invalid plan (gap) fails Parse via Validate.
  EXPECT_FALSE(ShardPlan::Parse(
                   "simrank-shard-plan v1\n"
                   "epoch 1\n"
                   "graph_fingerprint 0000000000000001\n"
                   "n 4\n"
                   "shards 2\n"
                   "shard 0 0 1\n"
                   "shard 1 2 4\n")
                   .ok());
  EXPECT_FALSE(ShardPlan::Parse("").ok());
}

TEST(ShardPlanTest, SaveAndLoadFileRoundTrip) {
  const ShardPlan plan = TwoShardPlan();
  const std::string path = ::testing::TempDir() + "shard-plan-rt.txt";
  ASSERT_TRUE(plan.SaveFile(path).ok());
  auto loaded = ShardPlan::LoadFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, plan);
  EXPECT_FALSE(ShardPlan::LoadFile(path + ".missing").ok());
}

TEST(ShardPlanTest, EvenSplitDistributesTheRemainderFirst) {
  // 10 vertices over 3 shards: 4 + 3 + 3.
  auto plan = ShardPlan::EvenSplit(10, 0x42, 3, /*epoch=*/7);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(plan->Validate().ok());
  EXPECT_EQ(plan->epoch, 7u);
  EXPECT_EQ(plan->graph_fingerprint, 0x42u);
  ASSERT_EQ(plan->shards.size(), 3u);
  EXPECT_EQ(plan->shards[0], (ShardRange{0, 0, 4}));
  EXPECT_EQ(plan->shards[1], (ShardRange{1, 4, 7}));
  EXPECT_EQ(plan->shards[2], (ShardRange{2, 7, 10}));

  // Exact division.
  auto even = ShardPlan::EvenSplit(8, 0x42, 4);
  ASSERT_TRUE(even.ok());
  for (const ShardRange& range : even->shards) {
    EXPECT_EQ(range.end - range.begin, 2u);
  }

  // One shard = the whole range.
  auto single = ShardPlan::EvenSplit(5, 0x42, 1);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->shards.size(), 1u);
  EXPECT_EQ(single->shards[0], (ShardRange{0, 0, 5}));

  // More shards than vertices / zero shards are rejected.
  EXPECT_FALSE(ShardPlan::EvenSplit(3, 0x42, 4).ok());
  EXPECT_FALSE(ShardPlan::EvenSplit(3, 0x42, 0).ok());
}

TEST(ShardPlanTest, OwnerOfAgreesWithRangeContainment) {
  auto plan = ShardPlan::EvenSplit(101, 0x1, 7);
  ASSERT_TRUE(plan.ok());
  for (VertexId v = 0; v < plan->n; ++v) {
    const uint32_t owner = plan->OwnerOf(v);
    ASSERT_LT(owner, plan->shards.size());
    EXPECT_TRUE(plan->shards[owner].Contains(v)) << "vertex " << v;
  }
}

}  // namespace
}  // namespace simrank
