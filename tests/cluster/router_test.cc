// End-to-end tests of the sharded cluster: real shard servers (each over
// a WriteShardIndex file), a real scatter-gather router, a single-node
// comparison server over the full index — responses must match bitwise —
// plus WAL-shipping replication and read failover.
#include "simrank/cluster/router.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "simrank/cluster/shard_plan.h"
#include "simrank/cluster/shard_split.h"
#include "simrank/cluster/wal_tailer.h"
#include "simrank/common/string_util.h"
#include "simrank/graph/graph_io.h"
#include "simrank/index/index_updater.h"
#include "simrank/index/query_engine.h"
#include "simrank/index/walk_index.h"
#include "simrank/server/http_client.h"
#include "simrank/server/server.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

std::atomic<uint32_t> g_fixture_counter{0};

WalkIndex BuildIndex(const DiGraph& graph, uint32_t fingerprints) {
  WalkIndexOptions options;
  options.num_fingerprints = fingerprints;
  options.walk_length = 8;
  auto index = WalkIndex::Build(graph, options);
  OIPSIM_CHECK(index.ok());
  return std::move(index).value();
}

/// One running server process-equivalent: an index loaded from a shard (or
/// full) file, an engine, a WAL-backed updater and a SimRankServer on its
/// own thread.
struct ServerNode {
  ServerNode(const std::string& index_path, const DiGraph& graph,
             ServerOptions options, const std::string& wal_path)
      : index(LoadIndex(index_path)), engine(index) {
    std::remove(wal_path.c_str());
    IndexUpdaterOptions updater_options;
    updater_options.wal_path = wal_path;
    if (options.sharded) {
      const ShardRange& range = options.shard_plan.shards[options.shard_id];
      updater_options.vertex_begin = range.begin;
      updater_options.vertex_end = range.end;
    }
    auto opened = IndexUpdater::Open(index, graph, updater_options);
    OIPSIM_CHECK(opened.ok());
    updater = std::move(*opened);
    options.port = 0;
    server = std::make_unique<SimRankServer>(engine, options, updater.get());
    OIPSIM_CHECK(server->Bind().ok());
    serve_thread = std::thread([this] { server->Serve(); });
  }

  ~ServerNode() { Stop(); }

  void Stop() {
    if (serve_thread.joinable()) {
      server->Shutdown();
      serve_thread.join();
    }
  }

  uint16_t port() const { return server->port(); }

  static WalkIndex LoadIndex(const std::string& path) {
    auto index = WalkIndex::Load(path);
    OIPSIM_CHECK(index.ok());
    return std::move(index).value();
  }

  WalkIndex index;
  QueryEngine engine;
  std::unique_ptr<IndexUpdater> updater;
  std::unique_ptr<SimRankServer> server;
  std::thread serve_thread;
};

/// A full 2..k-shard cluster with a router, next to a single-node server
/// over the same (full) index — the bitwise reference for every response.
class ClusterFixture {
 public:
  explicit ClusterFixture(DiGraph graph, uint32_t num_shards = 2,
                          bool with_replica0 = false,
                          uint32_t fingerprints = 48)
      : tag_(StrFormat("cluster-%u", g_fixture_counter.fetch_add(1))),
        graph_(std::move(graph)) {
    const WalkIndex full = BuildIndex(graph_, fingerprints);
    full_path_ = TempPath("full.widx");
    OIPSIM_CHECK(full.Save(full_path_).ok());
    auto plan = ShardPlan::EvenSplit(full.n(), full.graph_fingerprint(),
                                     num_shards);
    OIPSIM_CHECK(plan.ok());
    plan_ = std::move(*plan);

    // The single-node reference server (and a direct reference engine).
    single_ = std::make_unique<ServerNode>(full_path_, graph_,
                                           ServerOptions{},
                                           TempPath("single.wal"));

    // The shards.
    RouterOptions router_options;
    router_options.plan = plan_;
    for (const ShardRange& range : plan_.shards) {
      const std::string shard_path =
          TempPath(StrFormat("shard-%u.widx", range.shard_id));
      OIPSIM_CHECK(WriteShardIndex(full.store(), range, shard_path, false)
                       .ok());
      ServerOptions options;
      options.sharded = true;
      options.shard_plan = plan_;
      options.shard_id = range.shard_id;
      shards_.push_back(std::make_unique<ServerNode>(
          shard_path, graph_, options,
          TempPath(StrFormat("shard-%u.wal", range.shard_id))));
      router_options.shards.push_back(
          RouterShard{range.shard_id, shards_.back()->port(), 0});
    }

    // Optionally a replica of shard 0, tailing its primary's WAL.
    if (with_replica0) {
      ServerOptions options;
      options.sharded = true;
      options.shard_plan = plan_;
      options.shard_id = 0;
      options.replica = true;
      replica_ = std::make_unique<ServerNode>(TempPath("shard-0.widx"),
                                              graph_, options,
                                              TempPath("replica-0.wal"));
      WalTailerOptions tailer_options;
      tailer_options.source_port = shards_[0]->port();
      tailer_options.poll_interval_ms = 10;
      tailer_ = std::make_unique<WalTailer>(replica_->engine,
                                            *replica_->updater,
                                            tailer_options);
      OIPSIM_CHECK(tailer_->Start().ok());
      router_options.shards[0].replica_port = replica_->port();
    }

    router_ = std::make_unique<SimRankRouter>(std::move(router_options));
    OIPSIM_CHECK(router_->Bind().ok());
    OIPSIM_CHECK(router_->Start().ok());
  }

  ~ClusterFixture() {
    router_->Shutdown();
    if (tailer_ != nullptr) tailer_->Stop();
  }

  std::string TempPath(const std::string& name) const {
    return ::testing::TempDir() + tag_ + "-" + name;
  }

  uint16_t router_port() const { return router_->port(); }
  uint16_t single_port() const { return single_->port(); }
  SimRankRouter& router() { return *router_; }
  const ShardPlan& plan() const { return plan_; }
  const DiGraph& graph() const { return graph_; }
  ServerNode& shard(size_t i) { return *shards_[i]; }
  ServerNode* replica() { return replica_.get(); }
  WalTailer* tailer() { return tailer_.get(); }
  QueryEngine& reference() { return single_->engine; }

  /// Asserts the router's response to `target` is bitwise identical (status
  /// and body) to the single-node server's.
  void ExpectSameAsSingleNode(const std::string& target) {
    auto routed = HttpGet(router_port(), target);
    auto direct = HttpGet(single_port(), target);
    ASSERT_TRUE(routed.ok()) << target << ": " << routed.status().ToString();
    ASSERT_TRUE(direct.ok()) << target;
    EXPECT_EQ(routed->status, direct->status) << target;
    EXPECT_EQ(routed->body, direct->body) << target;
  }

  /// An edge absent from the base graph.
  Edge FreshEdge() const {
    for (VertexId src = 0; src < graph_.n(); ++src) {
      for (VertexId dst = 0; dst < graph_.n(); ++dst) {
        if (src != dst && !graph_.HasEdge(src, dst)) return Edge{src, dst};
      }
    }
    OIPSIM_CHECK_MSG(false, "no fresh edge");
    return Edge{};
  }

 private:
  std::string tag_;
  DiGraph graph_;
  std::string full_path_;
  ShardPlan plan_;
  std::unique_ptr<ServerNode> single_;
  std::vector<std::unique_ptr<ServerNode>> shards_;
  std::unique_ptr<ServerNode> replica_;
  std::unique_ptr<WalTailer> tailer_;
  std::unique_ptr<SimRankRouter> router_;
};

/// Hub 0 points at leaves 1..9; 10 and 11 are isolated (dead walks). Every
/// leaf pair meets at the hub on step 1, so all leaf-leaf scores tie
/// exactly — cross-shard tie-breaking has to reproduce the single-node
/// (score desc, vertex asc) order or the mismatch is visible.
DiGraph TieGraph() {
  DiGraph::Builder builder(12);
  for (VertexId leaf = 1; leaf <= 9; ++leaf) builder.AddEdge(0, leaf);
  return std::move(builder).Build();
}

TEST(MergeTopKTest, MergesUnderTheSingleNodeTotalOrder) {
  const std::vector<std::vector<ScoredVertex>> parts = {
      {{5, 0.5}, {1, 0.25}},
      {{2, 0.5}, {7, 0.25}, {8, 0.125}},
  };
  const std::vector<ScoredVertex> merged = MergeTopK(parts, 4);
  ASSERT_EQ(merged.size(), 4u);
  // Ties break by ascending vertex, across parts.
  EXPECT_EQ(merged[0].vertex, 2u);
  EXPECT_EQ(merged[1].vertex, 5u);
  EXPECT_EQ(merged[2].vertex, 1u);
  EXPECT_EQ(merged[3].vertex, 7u);

  // k beyond the union returns everything, still ordered.
  const std::vector<ScoredVertex> all = MergeTopK(parts, 100);
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[4].vertex, 8u);

  // Empty parts are fine.
  EXPECT_TRUE(MergeTopK({}, 3).empty());
  EXPECT_TRUE(MergeTopK({{}, {}}, 3).empty());
}

TEST(RouterTest, PairMatchesSingleNodeBitwise) {
  ClusterFixture cluster(testing::RandomGraph(60, 240, 11));
  const uint32_t boundary = cluster.plan().shards[0].end;
  // Same-shard, cross-shard, boundary-straddling and diagonal pairs.
  const std::pair<VertexId, VertexId> pairs[] = {
      {0, 1},
      {boundary, boundary + 1},
      {boundary - 1, boundary},
      {3, boundary + 7},
      {boundary + 5, 2},
      {boundary, boundary},
      {4, 4},
  };
  for (const auto& [a, b] : pairs) {
    cluster.ExpectSameAsSingleNode(StrFormat("/v1/pair?a=%u&b=%u", a, b));
  }
}

TEST(RouterTest, SingleSourceAndTopKMatchSingleNodeBitwise) {
  ClusterFixture cluster(testing::OverlappyGraph(60, 4, 9));
  const uint32_t boundary = cluster.plan().shards[0].end;
  for (const VertexId v : {0u, 17u, boundary - 1, boundary, 59u}) {
    cluster.ExpectSameAsSingleNode(StrFormat("/v1/single_source?v=%u", v));
    cluster.ExpectSameAsSingleNode(StrFormat("/v1/topk?v=%u&k=7", v));
    cluster.ExpectSameAsSingleNode(
        StrFormat("/v1/topk?v=%u&k=%u", v, cluster.graph().n()));
  }
}

TEST(RouterTest, TopKTieOrderSpansShardsLikeSingleNode) {
  // 12 vertices, 2 shards of 6: leaves 2..5 live on shard 0 and 6..9 on
  // shard 1, all with bit-equal scores from leaf 1's viewpoint.
  ClusterFixture cluster(TieGraph(), /*num_shards=*/2);
  ASSERT_EQ(cluster.plan().shards[0].end, 6u);

  // k = 5 cuts the tie group mid-boundary: 2, 3, 4, 5 from shard 0 and 6
  // from shard 1 — ascending vertex order among the tied, like TopKFromRow.
  auto response = HttpGet(cluster.router_port(), "/v1/topk?v=1&k=5");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200) << response->body;
  auto expected = cluster.reference().TopK(1, 5);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(expected->size(), 5u);
  size_t cursor = 0;
  for (size_t i = 0; i < expected->size(); ++i) {
    EXPECT_EQ((*expected)[i].vertex, i + 2) << "reference order";
    const double vertex = FindJsonNumber(response->body, "vertex", &cursor);
    const double score = FindJsonNumber(response->body, "score", &cursor);
    EXPECT_EQ(static_cast<VertexId>(vertex), (*expected)[i].vertex);
    EXPECT_EQ(std::memcmp(&score, &(*expected)[i].score, sizeof(double)), 0);
  }

  // Whole-body comparisons, including dead-walk queries (isolated 10, 11)
  // and k covering every vertex.
  for (const char* target :
       {"/v1/topk?v=1&k=5", "/v1/topk?v=1&k=12", "/v1/topk?v=10&k=4",
        "/v1/topk?v=11&k=12", "/v1/topk?v=0&k=6",
        "/v1/single_source?v=10"}) {
    cluster.ExpectSameAsSingleNode(target);
  }
}

TEST(RouterTest, BatchPairMatchesSingleNodeBitwise) {
  ClusterFixture cluster(testing::RandomGraph(60, 240, 11));
  const uint32_t boundary = cluster.plan().shards[0].end;
  std::string body;
  for (VertexId a = 0; a < 20; a += 3) {
    body += StrFormat("%u %u\n", a, (a * 7 + boundary) % cluster.graph().n());
  }
  auto routed = HttpPost(cluster.router_port(), "/v1/batch_pair", body);
  auto direct = HttpPost(cluster.single_port(), "/v1/batch_pair", body);
  ASSERT_TRUE(routed.ok());
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(routed->status, 200) << routed->body;
  EXPECT_EQ(routed->body, direct->body);
}

TEST(RouterTest, ErrorPathsMirrorTheSingleNodeSurface) {
  ClusterFixture cluster(testing::RandomGraph(40, 160, 3));
  // Out-of-range and malformed parameters are 400 at the router — they
  // never reach a shard.
  EXPECT_EQ(HttpGet(cluster.router_port(), "/v1/pair?a=0&b=999")->status,
            400);
  EXPECT_EQ(HttpGet(cluster.router_port(), "/v1/pair?a=0")->status, 400);
  EXPECT_EQ(HttpGet(cluster.router_port(), "/v1/single_source?v=x")->status,
            400);
  EXPECT_EQ(HttpGet(cluster.router_port(), "/v1/nope")->status, 404);
  EXPECT_EQ(HttpPost(cluster.router_port(), "/v1/batch_pair", "")->status,
            400);
  // Method mismatches.
  EXPECT_EQ(HttpPost(cluster.router_port(), "/v1/pair?a=0&b=1", "x")->status,
            405);
  EXPECT_EQ(HttpGet(cluster.router_port(), "/v1/batch_pair")->status, 405);
}

TEST(RouterTest, ShardRejectsOutOfRangeQueriesWith421) {
  ClusterFixture cluster(testing::RandomGraph(40, 160, 3));
  const uint16_t shard0 = cluster.shard(0).port();
  const uint32_t boundary = cluster.plan().shards[0].end;
  // In-range pair answers; anything touching the other shard's range is
  // 421 Misdirected Request.
  EXPECT_EQ(HttpGet(shard0, "/v1/pair?a=0&b=1")->status, 200);
  EXPECT_EQ(
      HttpGet(shard0, StrFormat("/v1/pair?a=0&b=%u", boundary))->status,
      421);
  // Global-answer endpoints are misdirected outright on a partial shard.
  EXPECT_EQ(HttpGet(shard0, "/v1/single_source?v=0")->status, 421);
  EXPECT_EQ(HttpGet(shard0, "/v1/topk?v=0&k=3")->status, 421);

  // The shard's stats expose its role, range, epoch and the rejections.
  auto stats = HttpGet(shard0, "/v1/stats");
  ASSERT_TRUE(stats.ok());
  const std::string& body = stats->body;
  EXPECT_NE(body.find("\"cluster\":{"), std::string::npos);
  EXPECT_NE(body.find("\"role\":\"primary\""), std::string::npos);
  EXPECT_EQ(FindJsonNumber(body, "shard_id"), 0.0);
  EXPECT_EQ(FindJsonNumber(body, "vertex_begin"), 0.0);
  EXPECT_EQ(FindJsonNumber(body, "vertex_end"),
            static_cast<double>(boundary));
  EXPECT_EQ(FindJsonNumber(body, "plan_epoch"), 1.0);
  EXPECT_EQ(FindJsonNumber(body, "rejected_misdirected"), 3.0);

  auto metrics = HttpGet(shard0, "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->body.find(
                "simrank_rejected_total{reason=\"misdirected\"} 3"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("simrank_shard_id 0"), std::string::npos);
  EXPECT_NE(metrics->body.find("simrank_shard_plan_epoch 1"),
            std::string::npos);
}

TEST(RouterTest, UpdateBroadcastKeepsEveryAnswerBitwise) {
  ClusterFixture cluster(testing::RandomGraph(50, 200, 7));
  const Edge fresh = cluster.FreshEdge();
  const std::string body = StrFormat("+ %u %u\n", fresh.src, fresh.dst);

  // The same batch through the router (broadcast to every shard primary)
  // and directly into the single-node server.
  auto routed = HttpPost(cluster.router_port(), "/v1/update", body);
  auto direct = HttpPost(cluster.single_port(), "/v1/update", body);
  ASSERT_TRUE(routed.ok());
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(routed->status, 200) << routed->body;
  ASSERT_EQ(direct->status, 200) << direct->body;
  EXPECT_EQ(FindJsonNumber(routed->body, "applied"), 1.0);
  EXPECT_EQ(FindJsonNumber(routed->body, "sequence"), 1.0);
  EXPECT_EQ(FindJsonNumber(routed->body, "wal_records"), 1.0);
  // Same post-update fingerprint as the single node.
  EXPECT_EQ(FindJsonNumber(routed->body, "sequence"),
            FindJsonNumber(direct->body, "sequence"));
  const size_t fp_at = routed->body.find("\"graph_fingerprint\"");
  ASSERT_NE(fp_at, std::string::npos);
  EXPECT_NE(direct->body.find(routed->body.substr(fp_at, 40)),
            std::string::npos);

  // Every shard applied and logged the batch.
  for (size_t s = 0; s < cluster.plan().shards.size(); ++s) {
    const IndexUpdateStats stats = cluster.shard(s).updater->stats();
    EXPECT_EQ(stats.batches_applied, 1u) << "shard " << s;
    EXPECT_EQ(stats.wal_records, 1u) << "shard " << s;
  }

  // Post-update reads stay bitwise equal to the single node.
  const uint32_t boundary = cluster.plan().shards[0].end;
  cluster.ExpectSameAsSingleNode(
      StrFormat("/v1/pair?a=%u&b=%u", fresh.src, fresh.dst));
  cluster.ExpectSameAsSingleNode(
      StrFormat("/v1/single_source?v=%u", fresh.dst));
  cluster.ExpectSameAsSingleNode(StrFormat("/v1/topk?v=%u&k=9", fresh.dst));
  cluster.ExpectSameAsSingleNode(
      StrFormat("/v1/single_source?v=%u", boundary));

  // A bad batch (duplicate edge) is rejected everywhere; nothing advances.
  auto rejected = HttpPost(cluster.router_port(), "/v1/update", body);
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected->status, 400) << rejected->body;
  for (size_t s = 0; s < cluster.plan().shards.size(); ++s) {
    EXPECT_EQ(cluster.shard(s).updater->stats().batches_applied, 1u);
  }
}

TEST(RouterTest, ReplicaTailsWalAndServesFailoverReads) {
  ClusterFixture cluster(testing::RandomGraph(50, 200, 7),
                         /*num_shards=*/2, /*with_replica0=*/true);
  // Replicas refuse direct writes.
  EXPECT_EQ(
      HttpPost(cluster.replica()->port(), "/v1/update", "+ 0 1\n")->status,
      403);
  auto replica_stats = HttpGet(cluster.replica()->port(), "/v1/stats");
  ASSERT_TRUE(replica_stats.ok());
  EXPECT_NE(replica_stats->body.find("\"role\":\"replica\""),
            std::string::npos);

  // An update through the router lands on the shard-0 primary and ships
  // to the replica through its WAL tail. The single-node reference gets
  // the same batch so post-update comparisons stay meaningful.
  const Edge fresh = cluster.FreshEdge();
  const std::string batch = StrFormat("+ %u %u\n", fresh.src, fresh.dst);
  auto update = HttpPost(cluster.router_port(), "/v1/update", batch);
  ASSERT_TRUE(update.ok());
  ASSERT_EQ(update->status, 200) << update->body;
  ASSERT_EQ(HttpPost(cluster.single_port(), "/v1/update", batch)->status,
            200);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (cluster.replica()->updater->stats().batches_applied < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "replica never caught up: "
        << cluster.tailer()->stats().last_error;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(cluster.tailer()->stats().halted);
  EXPECT_EQ(cluster.replica()->updater->stats().current_graph_fingerprint,
            cluster.shard(0).updater->stats().current_graph_fingerprint);

  // Kill the shard-0 primary: reads touching its range fail over to the
  // replica and still answer bitwise-identically (updated state included).
  cluster.shard(0).Stop();
  cluster.ExpectSameAsSingleNode("/v1/pair?a=0&b=1");
  cluster.ExpectSameAsSingleNode(
      StrFormat("/v1/single_source?v=%u", fresh.dst));
  cluster.ExpectSameAsSingleNode("/v1/topk?v=2&k=8");
  const RouterStats stats = cluster.router().stats();
  EXPECT_GE(stats.failovers, 3u);
  EXPECT_GE(stats.shard_errors, 3u);

  // The router's stats and metrics reflect the failovers.
  auto router_stats = HttpGet(cluster.router_port(), "/v1/stats");
  ASSERT_TRUE(router_stats.ok());
  EXPECT_GE(FindJsonNumber(router_stats->body, "failovers"), 3.0);
  auto metrics = HttpGet(cluster.router_port(), "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->body.find("simrank_router_failovers_total"),
            std::string::npos);

  // Writes never fail over: with a primary down the update degrades.
  auto blocked = HttpPost(cluster.router_port(), "/v1/update", "+ 1 0\n");
  ASSERT_TRUE(blocked.ok());
  EXPECT_EQ(blocked->status, 503) << blocked->body;
  ASSERT_NE(blocked->FindHeader("retry-after"), nullptr);
}

TEST(RouterTest, StatsAndMetricsDescribeTheCluster) {
  ClusterFixture cluster(testing::RandomGraph(40, 160, 3));
  ASSERT_EQ(HttpGet(cluster.router_port(), "/healthz")->status, 200);
  ASSERT_EQ(HttpGet(cluster.router_port(), "/v1/pair?a=0&b=39")->status,
            200);
  auto stats = HttpGet(cluster.router_port(), "/v1/stats");
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->status, 200);
  const std::string& body = stats->body;
  EXPECT_NE(body.find("\"role\":\"router\""), std::string::npos);
  EXPECT_EQ(FindJsonNumber(body, "plan_epoch"), 1.0);
  EXPECT_EQ(FindJsonNumber(body, "plan_shards"), 2.0);
  EXPECT_EQ(FindJsonNumber(body, "n"), 40.0);
  EXPECT_EQ(FindJsonNumber(body, "pair"), 1.0);
  EXPECT_EQ(FindJsonNumber(body, "healthz"), 1.0);

  auto metrics = HttpGet(cluster.router_port(), "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->body.find(
                "simrank_router_requests_total{endpoint=\"pair\"} 1"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("simrank_router_shards 2"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("simrank_router_plan_epoch 1"),
            std::string::npos);
}

TEST(RouterTest, ThreeShardClusterStaysBitwise) {
  ClusterFixture cluster(testing::OverlappyGraph(45, 3, 13),
                         /*num_shards=*/3);
  for (const VertexId v : {0u, 14u, 15u, 29u, 30u, 44u}) {
    cluster.ExpectSameAsSingleNode(StrFormat("/v1/single_source?v=%u", v));
    cluster.ExpectSameAsSingleNode(StrFormat("/v1/topk?v=%u&k=11", v));
  }
  cluster.ExpectSameAsSingleNode("/v1/pair?a=1&b=44");
  cluster.ExpectSameAsSingleNode("/v1/pair?a=16&b=31");
}

TEST(RouterOptionsTest, ValidateRejectsInconsistentTopologies) {
  auto plan = ShardPlan::EvenSplit(10, 0x1, 2);
  ASSERT_TRUE(plan.ok());
  RouterOptions options;
  options.plan = *plan;
  options.shards = {RouterShard{0, 9001, 0}, RouterShard{1, 9002, 0}};
  EXPECT_TRUE(options.Validate().ok());

  // Shard count mismatch.
  options.shards.pop_back();
  EXPECT_FALSE(options.Validate().ok());

  // Out-of-order / wrong ids.
  options.shards = {RouterShard{1, 9001, 0}, RouterShard{0, 9002, 0}};
  EXPECT_FALSE(options.Validate().ok());

  // A shard without a primary.
  options.shards = {RouterShard{0, 9001, 0}, RouterShard{1, 0, 0}};
  EXPECT_FALSE(options.Validate().ok());

  // Zero timeout.
  options.shards = {RouterShard{0, 9001, 0}, RouterShard{1, 9002, 0}};
  options.timeout_ms = 0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(RouterTraceTest, RoutedTraceMergesShardSubTraces) {
  ClusterFixture cluster(testing::RandomGraph(60, 240, 11));
  const VertexId v = cluster.plan().shards[0].end;  // owned by shard 1
  auto plain =
      HttpGet(cluster.router_port(), StrFormat("/v1/single_source?v=%u", v));
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(plain->status, 200);
  auto traced = HttpGet(cluster.router_port(),
                        StrFormat("/v1/single_source?v=%u&trace=1", v));
  ASSERT_TRUE(traced.ok());
  ASSERT_EQ(traced->status, 200);
  const std::string& body = traced->body;
  // The routed envelope is the plain body plus one spliced trace object.
  const std::string prefix = plain->body.substr(0, plain->body.size() - 1);
  ASSERT_EQ(body.substr(0, prefix.size()), prefix);
  ASSERT_NE(body.find(",\"trace\":{\"trace_id\":\""), std::string::npos);

  // Router-side stages: the row fetch from v's owner, one exchange span
  // per shard (timed on the fan-out threads), and the merge.
  EXPECT_NE(body.find("\"stage\":\"row_fetch\""), std::string::npos);
  EXPECT_NE(body.find("\"stage\":\"merge\""), std::string::npos);
  size_t cursor = body.find("\"stage\":\"request\"");
  ASSERT_NE(cursor, std::string::npos);
  const double root_duration = FindJsonNumber(body, "duration_ns", &cursor);
  EXPECT_GT(root_duration, 0.0);
  for (const char* detail : {"\"detail\":\"shard=0\"",
                             "\"detail\":\"shard=1\""}) {
    size_t at = body.find("\"stage\":\"shard_exchange\"");
    ASSERT_NE(at, std::string::npos);
    ASSERT_NE(body.find(detail), std::string::npos);
  }
  // Every shard exchange fits inside the routed request.
  size_t at = 0;
  int exchanges = 0;
  while ((at = body.find("\"stage\":\"shard_exchange\"", at)) !=
         std::string::npos) {
    size_t span_cursor = at;
    const double duration =
        FindJsonNumber(body, "duration_ns", &span_cursor);
    EXPECT_GT(duration, 0.0);
    EXPECT_LE(duration, root_duration);
    ++exchanges;
    ++at;
  }
  EXPECT_EQ(exchanges, 2);

  // The row fetch plus both fanned exchanges each contacted a shard and
  // brought back that shard's own trace as a child document.
  cursor = body.find("\"counters\":{");
  ASSERT_NE(cursor, std::string::npos);
  EXPECT_EQ(FindJsonNumber(body, "shards_contacted", &cursor), 3.0);
  const size_t children_at = body.find("\"children\":[");
  ASSERT_NE(children_at, std::string::npos);
  int children = 0;
  at = children_at;
  while ((at = body.find("{\"trace_id\":\"", at)) != std::string::npos) {
    ++children;
    ++at;
  }
  EXPECT_EQ(children, 3);
  // Shard sub-traces carry shard-side stages the router never records.
  EXPECT_NE(body.find("\"stage\":\"queue_wait\"", children_at),
            std::string::npos);
}

TEST(RouterTraceTest, HeaderChannelKeepsRoutedBodyIdentical) {
  ClusterFixture cluster(testing::RandomGraph(60, 240, 11));
  const uint32_t boundary = cluster.plan().shards[0].end;
  // A cross-shard pair: a on shard 0, b on shard 1.
  const std::string target =
      StrFormat("/v1/pair?a=%u&b=%u", boundary - 1, boundary);
  auto client = LoopbackHttpClient::Connect(cluster.router_port());
  ASSERT_TRUE(client.ok());
  auto plain = client->Get(target);
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(plain->status, 200);
  auto traced = client->Get(target, {{"X-Simrank-Trace", "1234abcd"}});
  ASSERT_TRUE(traced.ok());
  ASSERT_EQ(traced->status, 200);
  EXPECT_EQ(traced->body, plain->body)
      << "the header channel must never perturb a routed body";
  const std::string* json = traced->FindHeader("x-simrank-trace-json");
  ASSERT_NE(json, nullptr);
  EXPECT_NE(json->find("\"trace_id\":\"000000001234abcd\""),
            std::string::npos);
  EXPECT_NE(json->find("\"stage\":\"row_fetch\""), std::string::npos);
  EXPECT_NE(json->find("\"stage\":\"shard_exchange\""), std::string::npos);
  EXPECT_NE(json->find("\"children\":["), std::string::npos);

  // Traced requests surface in the router's stats and metrics.
  auto stats = HttpGet(cluster.router_port(), "/v1/stats");
  ASSERT_TRUE(stats.ok());
  size_t cursor = stats->body.find("\"trace\":{");
  ASSERT_NE(cursor, std::string::npos);
  EXPECT_GE(FindJsonNumber(stats->body, "traced_requests", &cursor), 1.0);
  auto metrics = HttpGet(cluster.router_port(), "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->body.find("simrank_router_traced_requests_total"),
            std::string::npos);
}

}  // namespace
}  // namespace simrank
