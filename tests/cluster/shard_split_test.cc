// WriteShardIndex: byte-determinism and the bitwise-slice property the
// scatter-gather merge rests on.
#include "simrank/cluster/shard_split.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "simrank/cluster/shard_plan.h"
#include "simrank/common/string_util.h"
#include "simrank/graph/graph_io.h"
#include "simrank/index/walk_index.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  OIPSIM_CHECK(f != nullptr);
  std::string bytes;
  char chunk[4096];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.append(chunk, got);
  }
  std::fclose(f);
  return bytes;
}

WalkIndex BuildSmallIndex(const DiGraph& graph) {
  WalkIndexOptions options;
  options.num_fingerprints = 48;
  options.walk_length = 8;
  auto index = WalkIndex::Build(graph, options);
  OIPSIM_CHECK(index.ok());
  return std::move(index).value();
}

TEST(ShardSplitTest, OutputBytesAreDeterministic) {
  const DiGraph graph = testing::RandomGraph(40, 160, 5);
  const WalkIndex index = BuildSmallIndex(graph);
  const ShardRange range{0, 10, 25};
  const std::string a = TempPath("split-det-a.widx");
  const std::string b = TempPath("split-det-b.widx");
  for (const bool compress : {false, true}) {
    ASSERT_TRUE(WriteShardIndex(index.store(), range, a, compress).ok());
    ASSERT_TRUE(WriteShardIndex(index.store(), range, b, compress).ok());
    EXPECT_EQ(ReadFileBytes(a), ReadFileBytes(b))
        << "compress=" << compress;
  }
}

TEST(ShardSplitTest, ShardIndexOpensWithGlobalMeta) {
  const DiGraph graph = testing::RandomGraph(40, 160, 5);
  const WalkIndex index = BuildSmallIndex(graph);
  const ShardRange range{1, 20, 40};
  const std::string path = TempPath("split-meta.widx");
  ASSERT_TRUE(WriteShardIndex(index.store(), range, path, false).ok());
  auto shard = WalkIndex::Load(path);
  ASSERT_TRUE(shard.ok()) << shard.status().ToString();
  // Global vertex count and the base graph's fingerprint: existing tools
  // (and a WAL bound to the full index) open the shard file unchanged.
  EXPECT_EQ(shard->n(), index.n());
  EXPECT_EQ(shard->graph_fingerprint(), index.graph_fingerprint());
  EXPECT_EQ(shard->options().num_fingerprints,
            index.options().num_fingerprints);
  EXPECT_EQ(shard->options().walk_length, index.options().walk_length);
  EXPECT_TRUE(shard->ValidateGraph(graph).ok());
}

TEST(ShardSplitTest, SingleSourceSliceIsBitwiseEqualToFullIndex) {
  const DiGraph graph = testing::OverlappyGraph(60, 4, 9);
  const WalkIndex index = BuildSmallIndex(graph);
  auto plan = ShardPlan::EvenSplit(index.n(), index.graph_fingerprint(), 3);
  ASSERT_TRUE(plan.ok());

  std::vector<WalkIndex> shards;
  for (const ShardRange& range : plan->shards) {
    const std::string path =
        TempPath(StrFormat("split-slice-%u.widx", range.shard_id));
    ASSERT_TRUE(WriteShardIndex(index.store(), range, path, false).ok());
    auto shard = WalkIndex::Load(path);
    ASSERT_TRUE(shard.ok());
    shards.push_back(std::move(shard).value());
  }

  for (VertexId v = 0; v < index.n(); v += 7) {
    const std::vector<double> full = index.EstimateSingleSource(v);
    // The owner ships v's materialized row; every shard scores its own
    // range from it. Concatenating the slices reproduces the full row.
    const uint32_t owner = plan->OwnerOf(v);
    const std::vector<uint32_t> row =
        shards[owner].MaterializeRow(v, nullptr);
    std::vector<double> stitched(index.n(), 0.0);
    for (size_t s = 0; s < shards.size(); ++s) {
      const ShardRange& range = plan->shards[s];
      const std::vector<double> partial =
          shards[s].EstimateSingleSourceWithRow(v, row, nullptr);
      ASSERT_EQ(partial.size(), full.size());
      std::memcpy(stitched.data() + range.begin, partial.data() + range.begin,
                  (range.end - range.begin) * sizeof(double));
    }
    ASSERT_EQ(std::memcmp(stitched.data(), full.data(),
                          full.size() * sizeof(double)),
              0)
        << "stitched row of " << v << " diverges from the full index";
  }
}

TEST(ShardSplitTest, InRangePairIsBitwiseEqualToFullIndex) {
  const DiGraph graph = testing::RandomGraph(50, 220, 21);
  const WalkIndex index = BuildSmallIndex(graph);
  const ShardRange range{0, 0, 25};
  const std::string path = TempPath("split-pair.widx");
  ASSERT_TRUE(WriteShardIndex(index.store(), range, path, false).ok());
  auto shard = WalkIndex::Load(path);
  ASSERT_TRUE(shard.ok());
  for (VertexId a = range.begin; a < range.end; a += 3) {
    for (VertexId b = range.begin; b < range.end; b += 5) {
      const double local = shard->EstimatePair(a, b);
      const double full = index.EstimatePair(a, b);
      EXPECT_EQ(std::memcmp(&local, &full, sizeof(double)), 0)
          << "pair (" << a << ", " << b << ")";
    }
  }
}

TEST(ShardSplitTest, CrossShardPairViaRowExchangeIsBitwise) {
  const DiGraph graph = testing::RandomGraph(50, 220, 21);
  const WalkIndex index = BuildSmallIndex(graph);
  const ShardRange left{0, 0, 25};
  const ShardRange right{1, 25, 50};
  const std::string left_path = TempPath("split-xpair-l.widx");
  const std::string right_path = TempPath("split-xpair-r.widx");
  ASSERT_TRUE(WriteShardIndex(index.store(), left, left_path, false).ok());
  ASSERT_TRUE(WriteShardIndex(index.store(), right, right_path, false).ok());
  auto shard_l = WalkIndex::Load(left_path);
  auto shard_r = WalkIndex::Load(right_path);
  ASSERT_TRUE(shard_l.ok());
  ASSERT_TRUE(shard_r.ok());
  for (VertexId a = left.begin; a < left.end; a += 4) {
    for (VertexId b = right.begin; b < right.end; b += 6) {
      // a's owner materializes the row; b's owner scores it.
      const std::vector<uint32_t> row = shard_l->MaterializeRow(a, nullptr);
      const double scored = shard_r->EstimatePairWithRow(row, b, nullptr);
      const double full = index.EstimatePair(a, b);
      EXPECT_EQ(std::memcmp(&scored, &full, sizeof(double)), 0)
          << "cross-shard pair (" << a << ", " << b << ")";
    }
  }
}

TEST(ShardSplitTest, RejectsARangeOutsideTheStore) {
  const DiGraph graph = testing::RandomGraph(20, 60, 3);
  const WalkIndex index = BuildSmallIndex(graph);
  const std::string path = TempPath("split-bad.widx");
  EXPECT_FALSE(
      WriteShardIndex(index.store(), ShardRange{0, 10, 25}, path, false)
          .ok());
  EXPECT_FALSE(
      WriteShardIndex(index.store(), ShardRange{0, 5, 5}, path, false).ok());
}

}  // namespace
}  // namespace simrank
