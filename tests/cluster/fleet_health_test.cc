// End-to-end tests of fleet-wide observability: the router scrapes every
// shard's /metrics, serves /v1/cluster/health, and re-exports the fleet's
// samples with shard/role labels injected. A killed shard must show up
// unhealthy within a scrape interval.
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "simrank/cluster/router.h"
#include "simrank/cluster/shard_plan.h"
#include "simrank/cluster/shard_split.h"
#include "simrank/common/string_util.h"
#include "simrank/index/query_engine.h"
#include "simrank/index/walk_index.h"
#include "simrank/server/http_client.h"
#include "simrank/server/server.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

std::atomic<uint32_t> g_fixture_counter{0};

/// One shard server over a WriteShardIndex file, on its own thread. No
/// updater: fleet scraping only needs /metrics and /v1/stats.
struct ShardNode {
  ShardNode(const std::string& index_path, ServerOptions options)
      : index(LoadIndex(index_path)), engine(index) {
    options.port = 0;
    server = std::make_unique<SimRankServer>(engine, options, nullptr);
    OIPSIM_CHECK(server->Bind().ok());
    serve_thread = std::thread([this] { server->Serve(); });
  }

  ~ShardNode() { Stop(); }

  void Stop() {
    if (serve_thread.joinable()) {
      server->Shutdown();
      serve_thread.join();
    }
  }

  uint16_t port() const { return server->port(); }

  static WalkIndex LoadIndex(const std::string& path) {
    auto index = WalkIndex::Load(path);
    OIPSIM_CHECK(index.ok());
    return std::move(index).value();
  }

  WalkIndex index;
  QueryEngine engine;
  std::unique_ptr<SimRankServer> server;
  std::thread serve_thread;
};

/// A 2-shard cluster with a scraping router (no replicas, no reference
/// node — this suite only exercises the observability surface).
class FleetFixture {
 public:
  explicit FleetFixture(uint32_t scrape_interval_ms) {
    const std::string tag =
        StrFormat("fleet-%u", g_fixture_counter.fetch_add(1));
    const DiGraph graph = testing::RandomGraph(60, 240, 11);
    WalkIndexOptions index_options;
    index_options.num_fingerprints = 48;
    index_options.walk_length = 8;
    auto full = WalkIndex::Build(graph, index_options);
    OIPSIM_CHECK(full.ok());
    auto plan = ShardPlan::EvenSplit(full->n(), full->graph_fingerprint(),
                                     /*num_shards=*/2);
    OIPSIM_CHECK(plan.ok());

    RouterOptions router_options;
    router_options.plan = *plan;
    router_options.scrape_interval_ms = scrape_interval_ms;
    router_options.scrape_timeout_ms = 250;
    for (const ShardRange& range : plan->shards) {
      const std::string shard_path =
          ::testing::TempDir() +
          StrFormat("%s-shard-%u.widx", tag.c_str(), range.shard_id);
      OIPSIM_CHECK(
          WriteShardIndex(full->store(), range, shard_path, false).ok());
      ServerOptions options;
      options.sharded = true;
      options.shard_plan = *plan;
      options.shard_id = range.shard_id;
      shards_.push_back(std::make_unique<ShardNode>(shard_path, options));
      router_options.shards.push_back(
          RouterShard{range.shard_id, shards_.back()->port(), 0});
    }
    router_ = std::make_unique<SimRankRouter>(std::move(router_options));
    OIPSIM_CHECK(router_->Bind().ok());
    OIPSIM_CHECK(router_->Start().ok());
  }

  ~FleetFixture() { router_->Shutdown(); }

  uint16_t router_port() const { return router_->port(); }
  ShardNode& shard(size_t i) { return *shards_[i]; }

  std::string Health() {
    auto response = HttpGet(router_port(), "/v1/cluster/health");
    OIPSIM_CHECK(response.ok() && response->status == 200);
    return response->body;
  }

  /// Polls /v1/cluster/health until `predicate(body)` holds (or 10 s).
  template <typename Predicate>
  std::string WaitForHealth(Predicate predicate) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    std::string body = Health();
    while (!predicate(body) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      body = Health();
    }
    return body;
  }

 private:
  std::vector<std::unique_ptr<ShardNode>> shards_;
  std::unique_ptr<SimRankRouter> router_;
};

bool ScrapedAllTargets(const std::string& health) {
  // Every target scraped at least once: no target stuck unhealthy and
  // both shards report an uptime from their scraped /v1/stats.
  return health.find("\"healthy\":false") == std::string::npos &&
         FindJsonNumber(health, "scrape_rounds") >= 2;
}

TEST(FleetHealthTest, HealthyFleetReportsEveryTarget) {
  FleetFixture fixture(/*scrape_interval_ms=*/50);
  const std::string health = fixture.WaitForHealth(ScrapedAllTargets);
  EXPECT_EQ(health.find("\"healthy\":false"), std::string::npos) << health;
  EXPECT_NE(health.find("\"healthy\":true"), std::string::npos) << health;
  EXPECT_NE(health.find("\"scraping\":true"), std::string::npos);
  EXPECT_NE(health.find("\"shard_id\":0"), std::string::npos);
  EXPECT_NE(health.find("\"shard_id\":1"), std::string::npos);
  EXPECT_NE(health.find("\"role\":\"primary\""), std::string::npos);
  EXPECT_NE(health.find("\"uptime_seconds\""), std::string::npos);
  EXPECT_NE(health.find("\"loop_lag_seconds\""), std::string::npos);
}

TEST(FleetHealthTest, KilledShardTurnsUnhealthyWithinScrapeInterval) {
  FleetFixture fixture(/*scrape_interval_ms=*/50);
  fixture.WaitForHealth(ScrapedAllTargets);

  fixture.shard(1).Stop();
  const std::string degraded = fixture.WaitForHealth([](const std::string& h) {
    return h.find("\"healthy\":false") != std::string::npos;
  });
  EXPECT_NE(degraded.find("\"healthy\":false"), std::string::npos)
      << degraded;
  // The dead shard carries the failure, with an error string; shard 0 is
  // still healthy (the overall flag is the AND over targets).
  const size_t shard1 = degraded.find("\"shard_id\":1");
  ASSERT_NE(shard1, std::string::npos);
  EXPECT_NE(degraded.find("\"healthy\":false", shard1), std::string::npos);
  EXPECT_NE(degraded.find("\"error\""), std::string::npos) << degraded;
  const size_t shard0 = degraded.find("\"shard_id\":0");
  ASSERT_NE(shard0, std::string::npos);
  EXPECT_NE(degraded.find("\"healthy\":true", shard0), std::string::npos);
}

TEST(FleetHealthTest, RouterMetricsAggregateShardSamples) {
  FleetFixture fixture(/*scrape_interval_ms=*/50);
  fixture.WaitForHealth(ScrapedAllTargets);

  auto response = HttpGet(fixture.router_port(), "/metrics");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200);
  const std::string& metrics = response->body;
  // Router-native fleet gauges.
  EXPECT_NE(metrics.find("simrank_fleet_scrape_rounds_total"),
            std::string::npos);
  EXPECT_NE(metrics.find(
                "simrank_fleet_target_healthy{shard=\"0\",role=\"primary\"}"
                " 1"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find(
                "simrank_fleet_target_healthy{shard=\"1\",role=\"primary\"}"
                " 1"),
            std::string::npos);
  // Aggregated shard samples re-exported with injected labels: both
  // shards' uptime gauges appear under one family declaration.
  EXPECT_NE(
      metrics.find("simrank_uptime_seconds{shard=\"0\",role=\"primary\"}"),
      std::string::npos)
      << metrics;
  EXPECT_NE(
      metrics.find("simrank_uptime_seconds{shard=\"1\",role=\"primary\"}"),
      std::string::npos);
  // A labelled shard sample keeps its own labels after injection.
  EXPECT_NE(metrics.find("shard=\"0\",role=\"primary\",endpoint="),
            std::string::npos)
      << metrics;
  // The router's own build info is exported alongside the fleet's.
  EXPECT_NE(metrics.find("simrank_build_info{"), std::string::npos);
  EXPECT_NE(metrics.find("role=\"router\""), std::string::npos);
  EXPECT_NE(metrics.find("simrank_router_uptime_seconds"),
            std::string::npos);
}

TEST(FleetHealthTest, DisabledScrapingIsReportedNotAssumedHealthy) {
  FleetFixture fixture(/*scrape_interval_ms=*/0);
  const std::string health = fixture.Health();
  EXPECT_NE(health.find("\"scraping\":false"), std::string::npos) << health;
  // With no scraper the router cannot vouch for the fleet.
  EXPECT_NE(health.find("\"healthy\":false"), std::string::npos);

  auto response = HttpGet(fixture.router_port(), "/metrics");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->body.find("simrank_fleet_target_healthy"),
            std::string::npos);
}

}  // namespace
}  // namespace simrank
