// Shared test fixtures.
//
// PaperExampleGraph() is the citation network of Fig. 1a of the paper,
// whose in-neighbour table (Fig. 2a), transition costs (Fig. 2b), MST
// (Fig. 2c/2d), partitions (Fig. 3a) and outer-sum table (Fig. 4) are all
// worked out in the text — making it the highest-value correctness fixture
// available.
#ifndef OIPSIM_TESTS_TESTING_FIXTURES_H_
#define OIPSIM_TESTS_TESTING_FIXTURES_H_

#include <vector>

#include "simrank/common/rng.h"
#include "simrank/gen/generators.h"
#include "simrank/graph/digraph.h"

namespace simrank::testing {

/// Vertex labels of the paper example, in id order.
enum PaperVertex : VertexId {
  kA = 0,
  kB = 1,
  kC = 2,
  kD = 3,
  kE = 4,
  kF = 5,
  kG = 6,
  kH = 7,
  kI = 8,
};

/// The Fig. 1a graph. In-neighbour sets (Fig. 2a):
///   I(a)={b,g} I(e)={f,g} I(h)={b,d} I(c)={b,d,g}
///   I(b)={e,f,g,i} I(d)={a,e,f,i}; f, g, i have no in-neighbours.
inline DiGraph PaperExampleGraph() {
  DiGraph::Builder builder(9);
  // I(a) = {b, g}
  builder.AddEdge(kB, kA);
  builder.AddEdge(kG, kA);
  // I(e) = {f, g}
  builder.AddEdge(kF, kE);
  builder.AddEdge(kG, kE);
  // I(h) = {b, d}
  builder.AddEdge(kB, kH);
  builder.AddEdge(kD, kH);
  // I(c) = {b, d, g}
  builder.AddEdge(kB, kC);
  builder.AddEdge(kD, kC);
  builder.AddEdge(kG, kC);
  // I(b) = {e, f, g, i}
  builder.AddEdge(kE, kB);
  builder.AddEdge(kF, kB);
  builder.AddEdge(kG, kB);
  builder.AddEdge(kI, kB);
  // I(d) = {a, e, f, i}
  builder.AddEdge(kA, kD);
  builder.AddEdge(kE, kD);
  builder.AddEdge(kF, kD);
  builder.AddEdge(kI, kD);
  return std::move(builder).Build();
}

/// Small deterministic random digraph for property sweeps.
inline DiGraph RandomGraph(uint32_t n, uint64_t m, uint64_t seed) {
  gen::ErdosRenyiParams params;
  params.n = n;
  params.m = m;
  params.seed = seed;
  Result<DiGraph> graph = gen::ErdosRenyi(params);
  OIPSIM_CHECK(graph.ok());
  return std::move(graph).value();
}

/// A graph with heavy in-neighbour overlap (copying model) — the regime
/// where OIP's sharing dominates.
inline DiGraph OverlappyGraph(uint32_t n, uint32_t degree, uint64_t seed) {
  gen::WebGraphParams params;
  params.n = n;
  params.out_degree = degree;
  params.copy_prob = 0.8;
  params.seed = seed;
  Result<DiGraph> graph = gen::WebGraph(params);
  OIPSIM_CHECK(graph.ok());
  return std::move(graph).value();
}

}  // namespace simrank::testing

#endif  // OIPSIM_TESTS_TESTING_FIXTURES_H_
