#include "simrank/graph/graph_io.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "testing/fixtures.h"

namespace simrank {
namespace {

TEST(GraphIoTest, ParseEdgeListBasic) {
  auto graph = ParseEdgeList("0 1\n1 2\n2 0\n");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->n(), 3u);
  EXPECT_EQ(graph->m(), 3u);
  EXPECT_TRUE(graph->HasEdge(2, 0));
}

TEST(GraphIoTest, SkipsCommentsAndBlankLines) {
  auto graph = ParseEdgeList("# snap header\n\n% matrix market\n0 1\n");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->m(), 1u);
}

TEST(GraphIoTest, CompactIdsRelabelDensely) {
  auto graph = ParseEdgeList("1000 2000\n2000 5\n");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->n(), 3u);  // 1000 -> 0, 2000 -> 1, 5 -> 2
  EXPECT_TRUE(graph->HasEdge(0, 1));
  EXPECT_TRUE(graph->HasEdge(1, 2));
}

TEST(GraphIoTest, RawIdsPreserved) {
  auto graph = ParseEdgeList("0 4\n", /*compact_ids=*/false);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->n(), 5u);
  EXPECT_TRUE(graph->HasEdge(0, 4));
}

TEST(GraphIoTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseEdgeList("0\n").ok());
  EXPECT_FALSE(ParseEdgeList("0 1 2\n").ok());
  EXPECT_FALSE(ParseEdgeList("a b\n").ok());
  EXPECT_FALSE(ParseEdgeList("0 -1\n").ok());
}

TEST(GraphIoTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadEdgeList("/no/such/file.txt").ok());
  EXPECT_FALSE(ReadBinary("/no/such/file.bin").ok());
}

TEST(GraphIoTest, EdgeListFileRoundTrip) {
  DiGraph graph = testing::PaperExampleGraph();
  const std::string path = ::testing::TempDir() + "/oipsim_graph.txt";
  ASSERT_TRUE(WriteEdgeList(graph, path).ok());
  auto loaded = ReadEdgeList(path, /*compact_ids=*/false);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, graph);
}

TEST(GraphIoTest, BinaryRoundTrip) {
  DiGraph graph = testing::RandomGraph(60, 240, 14);
  const std::string path = ::testing::TempDir() + "/oipsim_graph.bin";
  ASSERT_TRUE(WriteBinary(graph, path).ok());
  auto loaded = ReadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, graph);
}

TEST(GraphIoTest, BinaryRoundTripGeneratedGraphs) {
  // WriteBinary -> ReadBinary must be the identity across structurally
  // different generator families, not just uniform random graphs.
  std::vector<std::pair<std::string, DiGraph>> graphs;
  graphs.emplace_back("webgraph", testing::OverlappyGraph(300, 5, 41));
  graphs.emplace_back("erdos_renyi", testing::RandomGraph(500, 2500, 42));
  {
    gen::RmatParams rmat;
    rmat.scale = 8;
    rmat.m_target = 2000;
    rmat.seed = 43;
    auto graph = gen::Rmat(rmat);
    ASSERT_TRUE(graph.ok());
    graphs.emplace_back("rmat", std::move(graph).value());
  }
  {
    gen::CitationGraphParams citation;
    citation.n = 400;
    citation.seed = 44;
    auto graph = gen::CitationGraph(citation);
    ASSERT_TRUE(graph.ok());
    graphs.emplace_back("citation", std::move(graph).value());
  }
  for (const auto& [name, graph] : graphs) {
    const std::string path =
        ::testing::TempDir() + "/oipsim_" + name + ".bin";
    ASSERT_TRUE(WriteBinary(graph, path).ok()) << name;
    auto loaded = ReadBinary(path);
    ASSERT_TRUE(loaded.ok()) << name;
    EXPECT_EQ(*loaded, graph) << name;
  }
}

TEST(GraphIoTest, BinaryRoundTripDegenerateGraphs) {
  const std::string path = ::testing::TempDir() + "/oipsim_degenerate.bin";
  // Empty graph.
  DiGraph empty;
  ASSERT_TRUE(WriteBinary(empty, path).ok());
  auto loaded_empty = ReadBinary(path);
  ASSERT_TRUE(loaded_empty.ok());
  EXPECT_EQ(*loaded_empty, empty);
  // Isolated vertices, zero edges.
  DiGraph isolated = std::move(DiGraph::Builder(7)).Build();
  ASSERT_TRUE(WriteBinary(isolated, path).ok());
  auto loaded_isolated = ReadBinary(path);
  ASSERT_TRUE(loaded_isolated.ok());
  EXPECT_EQ(*loaded_isolated, isolated);
}

TEST(GraphIoTest, GraphFingerprintIsStructural) {
  DiGraph graph = testing::PaperExampleGraph();
  // Deterministic and equal for equal graphs.
  EXPECT_EQ(GraphFingerprint(graph),
            GraphFingerprint(testing::PaperExampleGraph()));
  // Sensitive to edges (same n) and to vertex count (same edges).
  DiGraph::Builder builder(graph.n());
  builder.AddEdge(0, 1);
  EXPECT_NE(GraphFingerprint(graph),
            GraphFingerprint(std::move(builder).Build()));
  EXPECT_NE(GraphFingerprint(std::move(DiGraph::Builder(3)).Build()),
            GraphFingerprint(std::move(DiGraph::Builder(4)).Build()));
  // Survives a serialization round trip.
  const std::string path = ::testing::TempDir() + "/oipsim_fp.bin";
  ASSERT_TRUE(WriteBinary(graph, path).ok());
  auto loaded = ReadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(GraphFingerprint(*loaded), GraphFingerprint(graph));
}

TEST(GraphIoTest, BinaryRejectsCorruptHeader) {
  const std::string path = ::testing::TempDir() + "/oipsim_bad.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char garbage[] = "not a graph";
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);
  EXPECT_FALSE(ReadBinary(path).ok());
}

TEST(GraphIoTest, BinaryRejectsTruncatedBody) {
  DiGraph graph = testing::RandomGraph(20, 60, 2);
  const std::string path = ::testing::TempDir() + "/oipsim_trunc.bin";
  ASSERT_TRUE(WriteBinary(graph, path).ok());
  // Truncate the file in the middle of the edge array.
  std::FILE* f = std::fopen(path.c_str(), "r+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(ftruncate(fileno(f), 24), 0);
  std::fclose(f);
  EXPECT_FALSE(ReadBinary(path).ok());
}

}  // namespace
}  // namespace simrank
