#include "simrank/graph/graph_io.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace simrank {
namespace {

TEST(GraphIoTest, ParseEdgeListBasic) {
  auto graph = ParseEdgeList("0 1\n1 2\n2 0\n");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->n(), 3u);
  EXPECT_EQ(graph->m(), 3u);
  EXPECT_TRUE(graph->HasEdge(2, 0));
}

TEST(GraphIoTest, SkipsCommentsAndBlankLines) {
  auto graph = ParseEdgeList("# snap header\n\n% matrix market\n0 1\n");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->m(), 1u);
}

TEST(GraphIoTest, CompactIdsRelabelDensely) {
  auto graph = ParseEdgeList("1000 2000\n2000 5\n");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->n(), 3u);  // 1000 -> 0, 2000 -> 1, 5 -> 2
  EXPECT_TRUE(graph->HasEdge(0, 1));
  EXPECT_TRUE(graph->HasEdge(1, 2));
}

TEST(GraphIoTest, RawIdsPreserved) {
  auto graph = ParseEdgeList("0 4\n", /*compact_ids=*/false);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->n(), 5u);
  EXPECT_TRUE(graph->HasEdge(0, 4));
}

TEST(GraphIoTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseEdgeList("0\n").ok());
  EXPECT_FALSE(ParseEdgeList("0 1 2\n").ok());
  EXPECT_FALSE(ParseEdgeList("a b\n").ok());
  EXPECT_FALSE(ParseEdgeList("0 -1\n").ok());
}

TEST(GraphIoTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadEdgeList("/no/such/file.txt").ok());
  EXPECT_FALSE(ReadBinary("/no/such/file.bin").ok());
}

TEST(GraphIoTest, EdgeListFileRoundTrip) {
  DiGraph graph = testing::PaperExampleGraph();
  const std::string path = ::testing::TempDir() + "/oipsim_graph.txt";
  ASSERT_TRUE(WriteEdgeList(graph, path).ok());
  auto loaded = ReadEdgeList(path, /*compact_ids=*/false);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, graph);
}

TEST(GraphIoTest, BinaryRoundTrip) {
  DiGraph graph = testing::RandomGraph(60, 240, 14);
  const std::string path = ::testing::TempDir() + "/oipsim_graph.bin";
  ASSERT_TRUE(WriteBinary(graph, path).ok());
  auto loaded = ReadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, graph);
}

TEST(GraphIoTest, BinaryRejectsCorruptHeader) {
  const std::string path = ::testing::TempDir() + "/oipsim_bad.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char garbage[] = "not a graph";
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);
  EXPECT_FALSE(ReadBinary(path).ok());
}

TEST(GraphIoTest, BinaryRejectsTruncatedBody) {
  DiGraph graph = testing::RandomGraph(20, 60, 2);
  const std::string path = ::testing::TempDir() + "/oipsim_trunc.bin";
  ASSERT_TRUE(WriteBinary(graph, path).ok());
  // Truncate the file in the middle of the edge array.
  std::FILE* f = std::fopen(path.c_str(), "r+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(ftruncate(fileno(f), 24), 0);
  std::fclose(f);
  EXPECT_FALSE(ReadBinary(path).ok());
}

}  // namespace
}  // namespace simrank
