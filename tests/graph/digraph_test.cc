#include "simrank/graph/digraph.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace simrank {
namespace {

TEST(DiGraphTest, EmptyGraph) {
  DiGraph graph;
  EXPECT_EQ(graph.n(), 0u);
  EXPECT_EQ(graph.m(), 0u);
  EXPECT_DOUBLE_EQ(graph.AverageInDegree(), 0.0);
}

TEST(DiGraphTest, BuilderProducesSortedAdjacency) {
  DiGraph::Builder builder(5);
  builder.AddEdge(3, 1);
  builder.AddEdge(0, 1);
  builder.AddEdge(4, 1);
  builder.AddEdge(1, 0);
  DiGraph graph = std::move(builder).Build();
  auto in = graph.InNeighbors(1);
  ASSERT_EQ(in.size(), 3u);
  EXPECT_EQ(in[0], 0u);
  EXPECT_EQ(in[1], 3u);
  EXPECT_EQ(in[2], 4u);
  EXPECT_EQ(graph.InDegree(1), 3u);
  EXPECT_EQ(graph.OutDegree(1), 1u);
}

TEST(DiGraphTest, ParallelEdgesCollapseByDefault) {
  DiGraph::Builder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  DiGraph graph = std::move(builder).Build();
  EXPECT_EQ(graph.m(), 1u);
  EXPECT_EQ(graph.InDegree(1), 1u);
}

TEST(DiGraphTest, ParallelEdgesKeptWhenRequested) {
  DiGraph::Builder builder(3);
  builder.set_dedupe_parallel_edges(false);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  DiGraph graph = std::move(builder).Build();
  EXPECT_EQ(graph.m(), 2u);
}

TEST(DiGraphTest, SelfLoopsAllowed) {
  DiGraph::Builder builder(2);
  builder.AddEdge(0, 0);
  DiGraph graph = std::move(builder).Build();
  EXPECT_TRUE(graph.HasEdge(0, 0));
  EXPECT_EQ(graph.InDegree(0), 1u);
  EXPECT_EQ(graph.OutDegree(0), 1u);
}

TEST(DiGraphTest, HasEdge) {
  DiGraph graph = testing::PaperExampleGraph();
  EXPECT_TRUE(graph.HasEdge(testing::kB, testing::kA));
  EXPECT_FALSE(graph.HasEdge(testing::kA, testing::kB));
}

TEST(DiGraphTest, EdgesRoundTrip) {
  DiGraph graph = testing::PaperExampleGraph();
  std::vector<Edge> edges = graph.Edges();
  EXPECT_EQ(edges.size(), graph.m());
  DiGraph::Builder builder(graph.n());
  builder.AddEdges(edges);
  DiGraph rebuilt = std::move(builder).Build();
  EXPECT_EQ(graph, rebuilt);
}

TEST(DiGraphTest, InOutConsistency) {
  DiGraph graph = testing::RandomGraph(50, 300, 5);
  uint64_t in_total = 0, out_total = 0;
  for (VertexId v = 0; v < graph.n(); ++v) {
    in_total += graph.InDegree(v);
    out_total += graph.OutDegree(v);
    for (VertexId u : graph.OutNeighbors(v)) {
      auto in = graph.InNeighbors(u);
      EXPECT_TRUE(std::binary_search(in.begin(), in.end(), v));
    }
  }
  EXPECT_EQ(in_total, graph.m());
  EXPECT_EQ(out_total, graph.m());
}

TEST(DiGraphTest, AverageInDegree) {
  DiGraph graph = testing::RandomGraph(100, 400, 8);
  EXPECT_DOUBLE_EQ(graph.AverageInDegree(), 4.0);
}

}  // namespace
}  // namespace simrank
