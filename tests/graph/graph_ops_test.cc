#include "simrank/graph/graph_ops.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace simrank {
namespace {

TEST(GraphOpsTest, TransposeFlipsEveryEdge) {
  DiGraph graph = testing::RandomGraph(40, 160, 4);
  DiGraph reversed = Transpose(graph);
  EXPECT_EQ(reversed.m(), graph.m());
  for (VertexId v = 0; v < graph.n(); ++v) {
    for (VertexId u : graph.OutNeighbors(v)) {
      EXPECT_TRUE(reversed.HasEdge(u, v));
    }
  }
  // Double transpose round-trips.
  EXPECT_EQ(Transpose(reversed), graph);
}

TEST(GraphOpsTest, InducedSubgraphKeepsInternalEdges) {
  DiGraph graph = testing::PaperExampleGraph();
  // Keep {a, b, g}: edges g->a, b->a, g->b survive (relabelled).
  DiGraph sub = InducedSubgraph(
      graph, {testing::kA, testing::kB, testing::kG});
  EXPECT_EQ(sub.n(), 3u);
  EXPECT_EQ(sub.m(), 3u);
  EXPECT_TRUE(sub.HasEdge(1, 0));  // b->a
  EXPECT_TRUE(sub.HasEdge(2, 0));  // g->a
  EXPECT_TRUE(sub.HasEdge(2, 1));  // g->b
}

TEST(GraphOpsTest, RelabelIsStructurePreserving) {
  DiGraph graph = testing::RandomGraph(20, 60, 6);
  std::vector<VertexId> perm(graph.n());
  for (VertexId v = 0; v < graph.n(); ++v) {
    perm[v] = (v + 7) % graph.n();
  }
  auto relabeled = RelabelVertices(graph, perm);
  ASSERT_TRUE(relabeled.ok());
  EXPECT_EQ(relabeled->m(), graph.m());
  for (VertexId v = 0; v < graph.n(); ++v) {
    EXPECT_EQ(relabeled->InDegree(perm[v]), graph.InDegree(v));
    EXPECT_EQ(relabeled->OutDegree(perm[v]), graph.OutDegree(v));
  }
}

TEST(GraphOpsTest, RelabelRejectsNonPermutations) {
  DiGraph graph = testing::RandomGraph(10, 20, 1);
  EXPECT_FALSE(RelabelVertices(graph, {0, 1}).ok());  // wrong size
  std::vector<VertexId> dup(graph.n(), 0);
  EXPECT_FALSE(RelabelVertices(graph, dup).ok());  // duplicates
}

TEST(GraphOpsTest, RemoveSelfLoops) {
  DiGraph::Builder builder(3);
  builder.AddEdge(0, 0);
  builder.AddEdge(0, 1);
  builder.AddEdge(2, 2);
  DiGraph graph = std::move(builder).Build();
  DiGraph cleaned = RemoveSelfLoops(graph);
  EXPECT_EQ(cleaned.m(), 1u);
  EXPECT_FALSE(cleaned.HasEdge(0, 0));
  EXPECT_TRUE(cleaned.HasEdge(0, 1));
}

TEST(GraphOpsTest, SymmetrizeAddsReverseEdges) {
  DiGraph::Builder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  DiGraph graph = std::move(builder).Build();
  DiGraph sym = Symmetrize(graph);
  EXPECT_EQ(sym.m(), 4u);
  EXPECT_TRUE(sym.HasEdge(1, 0));
  EXPECT_TRUE(sym.HasEdge(2, 1));
}

}  // namespace
}  // namespace simrank
