#include "simrank/graph/graph_stats.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace simrank {
namespace {

TEST(GraphStatsTest, DegreeStatsOnPaperExample) {
  DiGraph graph = testing::PaperExampleGraph();
  DegreeStats stats = ComputeDegreeStats(graph);
  EXPECT_EQ(stats.n, 9u);
  EXPECT_EQ(stats.m, 17u);
  EXPECT_EQ(stats.max_in_degree, 4u);  // I(b) and I(d)
  EXPECT_EQ(stats.num_sources, 3u);    // f, g, i
  EXPECT_NEAR(stats.avg_in_degree, 17.0 / 9.0, 1e-12);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(GraphStatsTest, OverlapStatsInternallyConsistent) {
  DiGraph graph = testing::OverlappyGraph(400, 6, 3);
  OverlapStats stats = EstimateOverlap(graph, 4000, 1);
  ASSERT_GT(stats.pairs_sampled, 0u);
  // E[|A ⊖ B|] = E[|A| + |B|] - 2 E[|A ∩ B|] >= 0, and Jaccard in [0,1].
  EXPECT_GE(stats.avg_symmetric_difference, 0.0);
  EXPECT_GE(stats.avg_intersection, 0.0);
  EXPECT_GE(stats.avg_jaccard, 0.0);
  EXPECT_LE(stats.avg_jaccard, 1.0);
  // Copying graphs have some overlapping pairs.
  EXPECT_GT(stats.avg_intersection, 0.0);
}

TEST(GraphStatsTest, OverlapDeterministicGivenSeed) {
  DiGraph graph = testing::RandomGraph(100, 500, 9);
  OverlapStats a = EstimateOverlap(graph, 500, 77);
  OverlapStats b = EstimateOverlap(graph, 500, 77);
  EXPECT_EQ(a.pairs_sampled, b.pairs_sampled);
  EXPECT_DOUBLE_EQ(a.avg_jaccard, b.avg_jaccard);
}

TEST(GraphStatsTest, DistinctInNeighborSets) {
  DiGraph graph = testing::PaperExampleGraph();
  EXPECT_EQ(CountDistinctInNeighborSets(graph), 6u);

  // Duplicate sets collapse.
  DiGraph::Builder builder(4);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  builder.AddEdge(0, 3);
  builder.AddEdge(1, 3);
  EXPECT_EQ(CountDistinctInNeighborSets(std::move(builder).Build()), 1u);
}

TEST(GraphStatsTest, EmptyGraphEdgeCases) {
  DiGraph graph;
  DegreeStats stats = ComputeDegreeStats(graph);
  EXPECT_EQ(stats.n, 0u);
  OverlapStats overlap = EstimateOverlap(graph, 100, 1);
  EXPECT_EQ(overlap.pairs_sampled, 0u);
  EXPECT_EQ(CountDistinctInNeighborSets(graph), 0u);
}

}  // namespace
}  // namespace simrank
