#include "simrank/graph/set_ops.h"

#include <gtest/gtest.h>

#include "simrank/common/rng.h"

namespace simrank {
namespace {

std::vector<VertexId> SortedRandomSet(Rng* rng, uint32_t universe,
                                      uint32_t k) {
  auto sample = rng->SampleWithoutReplacement(universe, k);
  std::sort(sample.begin(), sample.end());
  return sample;
}

TEST(SetOpsTest, IntersectionSizeBasics) {
  std::vector<VertexId> a{1, 3, 5, 7};
  std::vector<VertexId> b{3, 4, 5, 9};
  EXPECT_EQ(IntersectionSize(a, b), 2u);
  EXPECT_EQ(IntersectionSize(a, a), 4u);
  EXPECT_EQ(IntersectionSize(a, {}), 0u);
}

TEST(SetOpsTest, SymmetricDifferencePaperExample) {
  // Footnote 4: I(b) = {g,e,f,i}, I(d) = {e,f,i,a} -> |⊖| = |{g,a}| = 2.
  std::vector<VertexId> ib{4, 5, 6, 8};  // e,f,g,i as ids
  std::vector<VertexId> id{0, 4, 5, 8};  // a,e,f,i
  EXPECT_EQ(SymmetricDifferenceSize(ib, id), 2u);
}

TEST(SetOpsTest, CappedVariantAgreesBelowCap) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    auto a = SortedRandomSet(&rng, 60, 10);
    auto b = SortedRandomSet(&rng, 60, 12);
    const uint64_t exact = SymmetricDifferenceSize(a, b);
    const uint64_t capped = SymmetricDifferenceSizeCapped(a, b, 1000);
    EXPECT_EQ(exact, capped);
  }
}

TEST(SetOpsTest, CappedVariantStopsEarly) {
  std::vector<VertexId> a{1, 2, 3, 4, 5};
  std::vector<VertexId> b{6, 7, 8, 9, 10};
  EXPECT_GE(SymmetricDifferenceSizeCapped(a, b, 3), 3u);
}

TEST(SetOpsTest, SetDifferencesPartitionTheSymmetricDifference) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    auto a = SortedRandomSet(&rng, 80, 15);
    auto b = SortedRandomSet(&rng, 80, 9);
    std::vector<VertexId> a_minus_b, b_minus_a;
    SetDifferences(a, b, &a_minus_b, &b_minus_a);
    EXPECT_EQ(a_minus_b.size() + b_minus_a.size(),
              SymmetricDifferenceSize(a, b));
    // A\B and B\A are disjoint from the intersection and from each other.
    for (VertexId x : a_minus_b) {
      EXPECT_TRUE(std::binary_search(a.begin(), a.end(), x));
      EXPECT_FALSE(std::binary_search(b.begin(), b.end(), x));
    }
    for (VertexId x : b_minus_a) {
      EXPECT_TRUE(std::binary_search(b.begin(), b.end(), x));
      EXPECT_FALSE(std::binary_search(a.begin(), a.end(), x));
    }
  }
}

TEST(SetOpsTest, IntersectionMatchesDefinition) {
  std::vector<VertexId> a{2, 4, 6};
  std::vector<VertexId> b{4, 6, 8};
  EXPECT_EQ(Intersection(a, b), (std::vector<VertexId>{4, 6}));
}

TEST(SetOpsTest, SetsEqualBasics) {
  std::vector<VertexId> a{1, 2};
  std::vector<VertexId> b{1, 2};
  std::vector<VertexId> c{1, 3};
  EXPECT_TRUE(SetsEqual(a, b));
  EXPECT_FALSE(SetsEqual(a, c));
  EXPECT_FALSE(SetsEqual(a, {}));
}

}  // namespace
}  // namespace simrank
