// Cross-algorithm equivalence sweeps: every exact algorithm must produce
// identical scores on every graph family, damping factor and size we throw
// at it. Parameterised so each configuration shows up as its own test.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "simrank/core/engine.h"
#include "simrank/gen/generators.h"
#include "simrank/linalg/dense_matrix.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

enum class Family { kErdosRenyi, kWebCopying, kCitation, kCoauthor };

std::string FamilyName(Family family) {
  switch (family) {
    case Family::kErdosRenyi:
      return "ErdosRenyi";
    case Family::kWebCopying:
      return "WebCopying";
    case Family::kCitation:
      return "Citation";
    case Family::kCoauthor:
      return "Coauthor";
  }
  return "?";
}

DiGraph MakeGraph(Family family, uint32_t n, uint64_t seed) {
  switch (family) {
    case Family::kErdosRenyi:
      return testing::RandomGraph(n, 5ull * n, seed);
    case Family::kWebCopying:
      return testing::OverlappyGraph(n, 6, seed);
    case Family::kCitation: {
      gen::CitationGraphParams params;
      params.n = n;
      params.refs_per_node = 4;
      params.seed = seed;
      auto graph = gen::CitationGraph(params);
      OIPSIM_CHECK(graph.ok());
      return std::move(graph).value();
    }
    case Family::kCoauthor: {
      gen::CoauthorGraphParams params;
      params.num_authors = n;
      params.num_papers = n;
      params.seed = seed;
      auto graph = gen::CoauthorGraph(params);
      OIPSIM_CHECK(graph.ok());
      return std::move(graph).value();
    }
  }
  OIPSIM_CHECK(false);
  return DiGraph();
}

using EquivalenceParam = std::tuple<Family, uint32_t /*n*/, double /*C*/>;

class EquivalenceTest : public ::testing::TestWithParam<EquivalenceParam> {};

TEST_P(EquivalenceTest, ExactAlgorithmsAgree) {
  const auto [family, n, damping] = GetParam();
  DiGraph graph = MakeGraph(family, n, /*seed=*/n + 17);
  EngineOptions options;
  options.simrank.damping = damping;
  options.simrank.iterations = 6;

  options.algorithm = Algorithm::kPsum;
  auto reference = ComputeSimRank(graph, options);
  ASSERT_TRUE(reference.ok());
  for (Algorithm algorithm :
       {Algorithm::kNaive, Algorithm::kOip, Algorithm::kMatrix}) {
    options.algorithm = algorithm;
    auto run = ComputeSimRank(graph, options);
    ASSERT_TRUE(run.ok()) << AlgorithmName(algorithm);
    EXPECT_LT(DenseMatrix::MaxAbsDiff(reference->scores, run->scores), 1e-10)
        << AlgorithmName(algorithm);
  }
}

TEST_P(EquivalenceTest, DifferentialBackendsAgree) {
  const auto [family, n, damping] = GetParam();
  DiGraph graph = MakeGraph(family, n, /*seed=*/n + 4);
  EngineOptions options;
  options.simrank.damping = damping;
  options.simrank.iterations = 5;
  options.algorithm = Algorithm::kOipDsr;
  auto oip = ComputeSimRank(graph, options);
  options.algorithm = Algorithm::kPsumDsr;
  auto psum = ComputeSimRank(graph, options);
  ASSERT_TRUE(oip.ok() && psum.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(oip->scores, psum->scores), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EquivalenceTest,
    ::testing::Combine(
        ::testing::Values(Family::kErdosRenyi, Family::kWebCopying,
                          Family::kCitation, Family::kCoauthor),
        ::testing::Values(20u, 60u),
        ::testing::Values(0.4, 0.6, 0.8)),
    [](const ::testing::TestParamInfo<EquivalenceParam>& info) {
      return FamilyName(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_C" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 100));
    });

}  // namespace
}  // namespace simrank
