// Property-based invariants of SimRank, checked across graph families and
// algorithms:
//  * symmetry s(a,b) = s(b,a);
//  * diagonal pinned to 1 (conventional model);
//  * scores in [0, 1];
//  * iterates are monotone non-decreasing in k (s_0 = I and the recursion
//    is monotone);
//  * geometric error bound |s_k - s| <= C^{k+1} (Lizorkin et al.);
//  * vertices with empty in-neighbour sets have zero off-diagonal rows.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "simrank/core/bounds.h"
#include "simrank/core/engine.h"
#include "simrank/linalg/dense_matrix.h"
#include "testing/fixtures.h"

namespace simrank {
namespace {

using PropertyParam = std::tuple<Algorithm, uint64_t /*seed*/>;

class SimRankPropertyTest : public ::testing::TestWithParam<PropertyParam> {
 protected:
  DiGraph MakeGraph() const {
    return testing::OverlappyGraph(50, 5, std::get<1>(GetParam()));
  }
};

TEST_P(SimRankPropertyTest, SymmetryDiagonalAndRange) {
  DiGraph graph = MakeGraph();
  EngineOptions options;
  options.algorithm = std::get<0>(GetParam());
  options.simrank.damping = 0.7;
  options.simrank.iterations = 7;
  auto run = ComputeSimRank(graph, options);
  ASSERT_TRUE(run.ok());
  const DenseMatrix& s = run->scores;
  for (uint32_t i = 0; i < graph.n(); ++i) {
    EXPECT_DOUBLE_EQ(s(i, i), 1.0);
    for (uint32_t j = 0; j < graph.n(); ++j) {
      EXPECT_NEAR(s(i, j), s(j, i), 1e-10);
      EXPECT_GE(s(i, j), -1e-12);
      EXPECT_LE(s(i, j), 1.0 + 1e-12);
    }
  }
}

TEST_P(SimRankPropertyTest, IteratesMonotoneNonDecreasing) {
  DiGraph graph = MakeGraph();
  EngineOptions options;
  options.algorithm = std::get<0>(GetParam());
  options.simrank.damping = 0.7;
  DenseMatrix previous;
  for (uint32_t k = 1; k <= 5; ++k) {
    options.simrank.iterations = k;
    auto run = ComputeSimRank(graph, options);
    ASSERT_TRUE(run.ok());
    if (k > 1) {
      for (uint32_t i = 0; i < graph.n(); ++i) {
        for (uint32_t j = 0; j < graph.n(); ++j) {
          EXPECT_GE(run->scores(i, j), previous(i, j) - 1e-12)
              << "k=" << k << " (" << i << "," << j << ")";
        }
      }
    }
    previous = run->scores;
  }
}

TEST_P(SimRankPropertyTest, GeometricErrorBoundHolds) {
  DiGraph graph = MakeGraph();
  EngineOptions options;
  options.algorithm = std::get<0>(GetParam());
  options.simrank.damping = 0.8;
  options.simrank.iterations = 40;  // converged reference
  auto reference = ComputeSimRank(graph, options);
  ASSERT_TRUE(reference.ok());
  for (uint32_t k : {1u, 3u, 6u, 10u}) {
    options.simrank.iterations = k;
    auto truncated = ComputeSimRank(graph, options);
    ASSERT_TRUE(truncated.ok());
    EXPECT_LE(
        DenseMatrix::MaxAbsDiff(reference->scores, truncated->scores),
        ConventionalErrorBound(0.8, k) + 1e-10)
        << "k=" << k;
  }
}

TEST_P(SimRankPropertyTest, EmptyInNeighbourRowsAreZero) {
  DiGraph graph = MakeGraph();
  EngineOptions options;
  options.algorithm = std::get<0>(GetParam());
  options.simrank.iterations = 6;
  auto run = ComputeSimRank(graph, options);
  ASSERT_TRUE(run.ok());
  for (VertexId v = 0; v < graph.n(); ++v) {
    if (graph.InDegree(v) > 0) continue;
    for (uint32_t j = 0; j < graph.n(); ++j) {
      if (j == v) continue;
      EXPECT_DOUBLE_EQ(run->scores(v, j), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, SimRankPropertyTest,
    ::testing::Combine(::testing::Values(Algorithm::kNaive, Algorithm::kPsum,
                                         Algorithm::kOip, Algorithm::kMatrix),
                       ::testing::Values(11u, 29u)),
    [](const ::testing::TestParamInfo<PropertyParam>& info) {
      std::string name = AlgorithmName(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

// Differential-model properties: symmetry and boundedness hold, but the
// diagonal is NOT pinned, so it gets its own suite.
class DsrPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DsrPropertyTest, SymmetricBoundedAndDiagonalBelowOne) {
  DiGraph graph = testing::OverlappyGraph(50, 5, GetParam());
  EngineOptions options;
  options.algorithm = Algorithm::kOipDsr;
  options.simrank.damping = 0.7;
  options.simrank.iterations = 8;
  auto run = ComputeSimRank(graph, options);
  ASSERT_TRUE(run.ok());
  for (uint32_t i = 0; i < graph.n(); ++i) {
    EXPECT_LE(run->scores(i, i), 1.0 + 1e-12);
    EXPECT_GT(run->scores(i, i), 0.0);
    for (uint32_t j = 0; j < graph.n(); ++j) {
      EXPECT_NEAR(run->scores(i, j), run->scores(j, i), 1e-10);
      EXPECT_GE(run->scores(i, j), -1e-12);
      EXPECT_LE(run->scores(i, j), 1.0 + 1e-12);
    }
  }
}

TEST_P(DsrPropertyTest, PreservesRelativeOrderOfConventionalSimRank) {
  // The paper's Exp-4 claim, as a property: Spearman correlation between
  // differential and conventional scores against a query stays high.
  DiGraph graph = testing::OverlappyGraph(60, 6, GetParam());
  EngineOptions options;
  options.simrank.damping = 0.6;
  options.simrank.iterations = 12;
  options.algorithm = Algorithm::kOip;
  auto conventional = ComputeSimRank(graph, options);
  options.algorithm = Algorithm::kOipDsr;
  options.simrank.iterations = 8;
  auto differential = ComputeSimRank(graph, options);
  ASSERT_TRUE(conventional.ok() && differential.ok());
  // Count order agreements over sampled triples of one query row.
  const uint32_t query = 1;
  uint64_t agree = 0, total = 0;
  for (uint32_t i = 0; i < graph.n(); ++i) {
    for (uint32_t j = i + 1; j < graph.n(); ++j) {
      if (i == query || j == query) continue;
      const double dc = conventional->scores(query, i) -
                        conventional->scores(query, j);
      const double dd = differential->scores(query, i) -
                        differential->scores(query, j);
      if (dc == 0.0 && dd == 0.0) continue;
      ++total;
      if ((dc > 0) == (dd > 0)) ++agree;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DsrPropertyTest,
                         ::testing::Values(3u, 17u, 23u));

}  // namespace
}  // namespace simrank
