// simrank_server — HTTP serving frontend over a prebuilt walk index.
//
//   simrank_server serve --index=PATH [--mmap] [--port=8080]
//                        [--update-threads=T] [--overlay-budget=BYTES]
//                        [--auto-compact-fraction=F]
//                        [--bind=127.0.0.1] [--threads=T]
//                        [--max-inflight=N] [--endpoint-inflight=N]
//                        [--cache-shards=S] [--cache-capacity=C]
//                        [--warm=FILE] [--load-threads=T]
//                        [--graph=PATH --wal=PATH]
//                        [--compact-to=PATH] [--compact-graph-to=PATH]
//                        [--no-sync-wal] [--no-uring]
//                        [--trace-sample=F] [--slow-query-us=N]
//                        [--slow-ring=N] [--trace-log=PATH]
//                        [--access-log=PATH] [--profile-log=PATH]
//                        [--profile-log-hz=HZ] [--profile-log-period=S]
//                        [--watchdog-interval-ms=MS]
//                        [--watchdog-stall-us=US]
//                        [--metrics-history=S]
//                        [--metrics-history-interval-ms=MS]
//                        [--debug-stall-limit-ms=MS]
//
// Serves GET /v1/pair, /v1/single_source, /v1/topk, POST /v1/batch_pair,
// /v1/stats, /metrics and /healthz (see src/simrank/server/server.h for
// the endpoint and admission-control semantics). --port=0 lets the kernel
// pick a free port; the bound address is printed on stderr once the
// listener is up. --warm names a file of vertex ids (whitespace separated,
// '#' comments) whose storage pages are prefetched and whose rows are
// cached before the first request.
//
// --graph + --wal enable the live-update endpoints POST /v1/update and
// POST /v1/compact: the graph file must be the one the index was built
// from (fingerprint-checked), the WAL is created or replayed at startup —
// after a crash the server comes back serving every acknowledged batch.
// /v1/compact rewrites --compact-to (default: the served index path, via
// an atomic rename — an mmap backend keeps serving the old inode) with
// the base file's segment encoding, persists the updated graph to
// --compact-graph-to (default: <compact-to>.graph.bin; restart with
// --graph pointing there), and resets the WAL. SIGINT/SIGTERM
// shut down gracefully: in-flight queries finish and flush before the
// process exits 0.
#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "simrank/cluster/shard_plan.h"
#include "simrank/cluster/wal_tailer.h"
#include "simrank/common/status.h"
#include "simrank/common/string_util.h"
#include "simrank/graph/graph_io.h"
#include "simrank/index/index_updater.h"
#include "simrank/index/query_engine.h"
#include "simrank/index/segment_reader.h"
#include "simrank/index/walk_index.h"
#include "simrank/index/walk_store.h"
#include "simrank/server/server.h"

namespace {

struct ServerCliOptions {
  std::string index_path;
  bool use_mmap = false;
  uint32_t load_threads = 0;
  uint32_t cache_shards = 0;    // 0 = engine default
  uint32_t cache_capacity = 0;  // 0 = engine default
  std::string warm_path;
  std::string graph_path;
  std::string wal_path;
  bool sync_wal = true;
  bool group_commit = true;
  uint32_t group_commit_window_us = 0;  // 0 = updater default
  uint32_t update_threads = 1;          // 0 = hardware concurrency
  uint64_t overlay_budget = 0;          // 0 = unbounded
  double auto_compact_fraction = 0.0;   // 0 = heuristic off
  std::string shard_plan_path;
  /// Primary port to tail (replica mode); 0 = no tailing.
  uint32_t tail_from = 0;
  simrank::ServerOptions server;
};

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s serve --index=PATH [--mmap] [--port=8080]\n"
      "       [--bind=127.0.0.1] [--threads=T] [--max-inflight=N]\n"
      "       [--endpoint-inflight=N] [--cache-shards=S]\n"
      "       [--cache-capacity=C] [--warm=FILE] [--load-threads=T]\n"
      "       [--graph=GRAPH --wal=WAL] [--compact-to=PATH]\n"
      "       [--compact-graph-to=PATH] [--no-sync-wal]\n"
      "       [--no-group-commit] [--group-commit-window-us=U]\n"
      "       [--update-threads=T] [--overlay-budget=BYTES]\n"
      "       [--auto-compact-fraction=F]\n"
      "       [--shard-plan=PLAN --shard-id=N] [--replica]\n"
      "       [--tail-from=PORT] [--no-uring]\n"
      "       [--trace-sample=F] [--slow-query-us=N] [--slow-ring=N]\n"
      "       [--trace-log=PATH] [--access-log=PATH]\n"
      "       [--profile-log=PATH] [--profile-log-hz=HZ]\n"
      "       [--profile-log-period=S] [--watchdog-interval-ms=MS]\n"
      "       [--watchdog-stall-us=US] [--metrics-history=S]\n"
      "       [--metrics-history-interval-ms=MS]\n"
      "       [--debug-stall-limit-ms=MS]\n"
      "\nServes GET /v1/pair?a=&b=, /v1/single_source?v=, /v1/topk?v=&k=,\n"
      "POST /v1/batch_pair, /v1/stats, /metrics and /healthz over the\n"
      "given walk index. --port=0 picks a free port. Requests beyond\n"
      "--max-inflight get 429, beyond the per-endpoint cap 503, both with\n"
      "Retry-After. --graph + --wal additionally enable POST /v1/update\n"
      "and /v1/compact (live edge updates with WAL durability).\n"
      "--update-threads parallelizes walk patching and compaction (0 =\n"
      "hardware concurrency; answers are identical for any value).\n"
      "--overlay-budget bounds the overlay's resident bytes and\n"
      "--auto-compact-fraction its patched-walk share of n*R; crossing\n"
      "either triggers a background compaction into the /v1/compact\n"
      "targets without blocking serving.\n"
      "--shard-plan + --shard-id serve one shard of a cluster: public\n"
      "queries outside the shard's vertex range answer 421 and the\n"
      "/internal/* exchange endpoints come up (see simrank_router).\n"
      "--replica rejects public writes with 403; --tail-from=PORT keeps a\n"
      "replica current by tailing that primary's /v1/wal stream.\n"
      "--no-uring disables the io_uring batched cold-read path (plain\n"
      "preadv/fadvise fallback); SIMRANK_NO_URING=1 does the same.\n"
      "Observability: any query accepts ?trace=1 (per-stage spans inline\n"
      "in the response) or an X-Simrank-Trace header (trace returned in\n"
      "the X-Simrank-Trace-Json response header; body unchanged).\n"
      "--trace-sample=F traces a random fraction of requests;\n"
      "--slow-query-us=N traces everything and captures queries slower\n"
      "than N us in a ring served at GET /v1/debug/slow (--slow-ring=N\n"
      "entries, default 64). --trace-log appends captured traces as\n"
      "JSONL; --access-log appends one JSONL line per request.\n"
      "Self-diagnosis: GET /v1/debug/profile?seconds=N returns a\n"
      "collapsed-stack CPU profile; --profile-log additionally records\n"
      "continuous background profiles as JSONL (--profile-log-hz,\n"
      "default 19, one record every --profile-log-period seconds,\n"
      "default 60). The event-loop watchdog samples loop lag and queue\n"
      "depth every --watchdog-interval-ms (default 100; 0 disables) and\n"
      "logs a stack-annotated warning past --watchdog-stall-us (default\n"
      "1s). --metrics-history=S keeps S seconds of every /metrics gauge\n"
      "(default 900, sampled every --metrics-history-interval-ms,\n"
      "default 1000) served at GET /v1/debug/timeseries.\n"
      "--debug-stall-limit-ms arms the GET /v1/debug/stall test hook\n"
      "(deliberately blocks the event loop; leave off in production).\n",
      argv0);
}

bool ParseArgs(int argc, char** argv, ServerCliOptions* options) {
  if (argc < 2 || std::strcmp(argv[1], "serve") != 0) return false;
  for (int i = 2; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto value_of = [&arg](std::string_view prefix) {
      return std::string(arg.substr(prefix.size()));
    };
    uint64_t u = 0;
    if (simrank::StartsWith(arg, "--index=")) {
      options->index_path = value_of("--index=");
    } else if (arg == "--mmap") {
      options->use_mmap = true;
    } else if (simrank::StartsWith(arg, "--port=")) {
      if (!simrank::ParseUint64(value_of("--port="), &u) || u > 65535) {
        std::fprintf(stderr, "--port must be 0..65535\n");
        return false;
      }
      options->server.port = static_cast<uint16_t>(u);
    } else if (simrank::StartsWith(arg, "--bind=")) {
      options->server.bind_address = value_of("--bind=");
    } else if (simrank::StartsWith(arg, "--threads=")) {
      if (!simrank::ParseUint64(value_of("--threads="), &u)) return false;
      options->server.threads = static_cast<uint32_t>(u);
    } else if (simrank::StartsWith(arg, "--max-inflight=")) {
      if (!simrank::ParseUint64(value_of("--max-inflight="), &u)) {
        return false;
      }
      options->server.max_inflight = static_cast<uint32_t>(u);
    } else if (simrank::StartsWith(arg, "--endpoint-inflight=")) {
      if (!simrank::ParseUint64(value_of("--endpoint-inflight="), &u)) {
        return false;
      }
      options->server.max_endpoint_inflight = static_cast<uint32_t>(u);
    } else if (simrank::StartsWith(arg, "--cache-shards=")) {
      if (!simrank::ParseUint64(value_of("--cache-shards="), &u)) {
        return false;
      }
      options->cache_shards = static_cast<uint32_t>(u);
    } else if (simrank::StartsWith(arg, "--cache-capacity=")) {
      if (!simrank::ParseUint64(value_of("--cache-capacity="), &u)) {
        return false;
      }
      options->cache_capacity = static_cast<uint32_t>(u);
    } else if (simrank::StartsWith(arg, "--warm=")) {
      options->warm_path = value_of("--warm=");
    } else if (simrank::StartsWith(arg, "--load-threads=")) {
      if (!simrank::ParseUint64(value_of("--load-threads="), &u)) {
        return false;
      }
      options->load_threads = static_cast<uint32_t>(u);
    } else if (simrank::StartsWith(arg, "--graph=")) {
      options->graph_path = value_of("--graph=");
    } else if (simrank::StartsWith(arg, "--wal=")) {
      options->wal_path = value_of("--wal=");
    } else if (simrank::StartsWith(arg, "--compact-to=")) {
      options->server.compact_path = value_of("--compact-to=");
    } else if (simrank::StartsWith(arg, "--compact-graph-to=")) {
      options->server.compact_graph_path = value_of("--compact-graph-to=");
    } else if (arg == "--no-uring") {
      simrank::SegmentReader::SetIoUringEnabled(false);
    } else if (arg == "--no-sync-wal") {
      options->sync_wal = false;
    } else if (arg == "--no-group-commit") {
      options->group_commit = false;
    } else if (simrank::StartsWith(arg, "--group-commit-window-us=")) {
      if (!simrank::ParseUint64(value_of("--group-commit-window-us="), &u)) {
        return false;
      }
      options->group_commit_window_us = static_cast<uint32_t>(u);
    } else if (simrank::StartsWith(arg, "--update-threads=")) {
      if (!simrank::ParseUint64(value_of("--update-threads="), &u)) {
        return false;
      }
      options->update_threads = static_cast<uint32_t>(u);
    } else if (simrank::StartsWith(arg, "--overlay-budget=")) {
      if (!simrank::ParseUint64(value_of("--overlay-budget="), &u) ||
          u == 0) {
        std::fprintf(stderr, "--overlay-budget must be positive bytes\n");
        return false;
      }
      options->overlay_budget = u;
    } else if (simrank::StartsWith(arg, "--auto-compact-fraction=")) {
      double fraction = 0.0;
      if (!simrank::ParseDouble(value_of("--auto-compact-fraction="),
                                &fraction) ||
          fraction <= 0.0 || fraction >= 1.0) {
        std::fprintf(stderr, "--auto-compact-fraction must be in (0, 1)\n");
        return false;
      }
      options->auto_compact_fraction = fraction;
    } else if (simrank::StartsWith(arg, "--shard-plan=")) {
      options->shard_plan_path = value_of("--shard-plan=");
    } else if (simrank::StartsWith(arg, "--shard-id=")) {
      if (!simrank::ParseUint64(value_of("--shard-id="), &u)) return false;
      options->server.shard_id = static_cast<uint32_t>(u);
    } else if (arg == "--replica") {
      options->server.replica = true;
    } else if (simrank::StartsWith(arg, "--trace-sample=")) {
      double fraction = 0.0;
      if (!simrank::ParseDouble(value_of("--trace-sample="), &fraction) ||
          fraction < 0.0 || fraction > 1.0) {
        std::fprintf(stderr, "--trace-sample must be in [0, 1]\n");
        return false;
      }
      options->server.trace_sample = fraction;
    } else if (simrank::StartsWith(arg, "--slow-query-us=")) {
      if (!simrank::ParseUint64(value_of("--slow-query-us="), &u)) {
        return false;
      }
      options->server.slow_query_us = u;
    } else if (simrank::StartsWith(arg, "--slow-ring=")) {
      if (!simrank::ParseUint64(value_of("--slow-ring="), &u) || u == 0 ||
          u > 65536) {
        std::fprintf(stderr, "--slow-ring must be 1..65536\n");
        return false;
      }
      options->server.slow_ring_capacity = static_cast<uint32_t>(u);
    } else if (simrank::StartsWith(arg, "--trace-log=")) {
      options->server.trace_log_path = value_of("--trace-log=");
    } else if (simrank::StartsWith(arg, "--access-log=")) {
      options->server.access_log_path = value_of("--access-log=");
    } else if (simrank::StartsWith(arg, "--profile-log=")) {
      options->server.profile_log_path = value_of("--profile-log=");
    } else if (simrank::StartsWith(arg, "--profile-log-hz=")) {
      if (!simrank::ParseUint64(value_of("--profile-log-hz="), &u) ||
          u == 0 || u > 1000) {
        std::fprintf(stderr, "--profile-log-hz must be 1..1000\n");
        return false;
      }
      options->server.profile_log_hz = static_cast<uint32_t>(u);
    } else if (simrank::StartsWith(arg, "--profile-log-period=")) {
      if (!simrank::ParseUint64(value_of("--profile-log-period="), &u) ||
          u == 0) {
        std::fprintf(stderr, "--profile-log-period must be positive\n");
        return false;
      }
      options->server.profile_log_period_s = static_cast<uint32_t>(u);
    } else if (simrank::StartsWith(arg, "--watchdog-interval-ms=")) {
      if (!simrank::ParseUint64(value_of("--watchdog-interval-ms="), &u)) {
        return false;
      }
      options->server.watchdog_interval_ms = static_cast<uint32_t>(u);
    } else if (simrank::StartsWith(arg, "--watchdog-stall-us=")) {
      if (!simrank::ParseUint64(value_of("--watchdog-stall-us="), &u) ||
          u == 0) {
        std::fprintf(stderr, "--watchdog-stall-us must be positive\n");
        return false;
      }
      options->server.watchdog_stall_us = u;
    } else if (simrank::StartsWith(arg, "--metrics-history=")) {
      if (!simrank::ParseUint64(value_of("--metrics-history="), &u)) {
        return false;
      }
      options->server.metrics_history_window_s = static_cast<uint32_t>(u);
    } else if (simrank::StartsWith(arg,
                                   "--metrics-history-interval-ms=")) {
      if (!simrank::ParseUint64(value_of("--metrics-history-interval-ms="),
                                &u) ||
          u == 0) {
        std::fprintf(stderr,
                     "--metrics-history-interval-ms must be positive\n");
        return false;
      }
      options->server.metrics_history_interval_ms =
          static_cast<uint32_t>(u);
    } else if (simrank::StartsWith(arg, "--debug-stall-limit-ms=")) {
      if (!simrank::ParseUint64(value_of("--debug-stall-limit-ms="), &u)) {
        return false;
      }
      options->server.debug_stall_limit_ms = static_cast<uint32_t>(u);
    } else if (simrank::StartsWith(arg, "--tail-from=")) {
      if (!simrank::ParseUint64(value_of("--tail-from="), &u) || u == 0 ||
          u > 65535) {
        std::fprintf(stderr, "--tail-from must be 1..65535\n");
        return false;
      }
      options->tail_from = static_cast<uint32_t>(u);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  if (options->index_path.empty()) {
    std::fprintf(stderr, "serve requires --index=PATH\n");
    return false;
  }
  if (options->wal_path.empty() != options->graph_path.empty()) {
    std::fprintf(stderr,
                 "--graph and --wal enable live updates together: the "
                 "updater needs the base graph to re-simulate walks and "
                 "the WAL to make batches durable\n");
    return false;
  }
  if (options->wal_path.empty() &&
      (!options->server.compact_path.empty() ||
       !options->server.compact_graph_path.empty() || !options->sync_wal)) {
    std::fprintf(stderr,
                 "--compact-to/--compact-graph-to/--no-sync-wal require "
                 "--graph and --wal\n");
    return false;
  }
  if (options->wal_path.empty() &&
      (options->overlay_budget != 0 ||
       options->auto_compact_fraction != 0.0 ||
       options->update_threads != 1)) {
    std::fprintf(stderr,
                 "--overlay-budget/--auto-compact-fraction/--update-threads "
                 "require --graph and --wal\n");
    return false;
  }
  if (options->shard_plan_path.empty() && options->server.shard_id != 0) {
    std::fprintf(stderr, "--shard-id requires --shard-plan\n");
    return false;
  }
  if (options->tail_from != 0 && options->wal_path.empty()) {
    std::fprintf(stderr,
                 "--tail-from requires --graph and --wal: the replica "
                 "re-simulates shipped batches and logs them to its own "
                 "WAL\n");
    return false;
  }
  if (options->tail_from != 0 && !options->server.replica) {
    std::fprintf(stderr,
                 "--tail-from requires --replica: a server accepting both "
                 "public updates and a shipped WAL would fork its graph\n");
    return false;
  }
  return true;
}

/// Engine options from the CLI flags, validated through Status like the
/// query subcommand's.
simrank::Result<simrank::QueryEngineOptions> MakeEngineOptions(
    const ServerCliOptions& options) {
  simrank::QueryEngineOptions engine_options;
  engine_options.num_threads = 1;  // batch APIs unused; the server pools
  if (options.cache_shards > 0) {
    engine_options.cache_shards = options.cache_shards;
  }
  if (options.cache_capacity > 0) {
    engine_options.cache_capacity_per_shard = options.cache_capacity;
  }
  if (!engine_options.Valid()) {
    return simrank::Status::InvalidArgument(
        "--cache-shards and --cache-capacity must be positive");
  }
  return engine_options;
}

/// Reads a warm list: vertex ids separated by whitespace, '#' starts a
/// comment running to end of line.
simrank::Result<std::vector<simrank::VertexId>> ReadWarmList(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return simrank::Status::IoError("cannot open warm list: " + path);
  }
  std::string content;
  char chunk[4096];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    content.append(chunk, got);
  }
  std::fclose(f);
  std::vector<simrank::VertexId> vertices;
  for (std::string_view line : simrank::StrSplit(content, '\n')) {
    const size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    size_t at = 0;
    while (at < line.size()) {
      while (at < line.size() &&
             std::isspace(static_cast<unsigned char>(line[at]))) {
        ++at;
      }
      size_t end = at;
      while (end < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[end]))) {
        ++end;
      }
      if (end == at) break;
      const std::string_view token = line.substr(at, end - at);
      at = end;
      uint64_t value = 0;
      if (!simrank::ParseUint64(token, &value) || value > UINT32_MAX) {
        return simrank::Status::InvalidArgument(
            simrank::StrFormat("warm list %s: '%s' is not a vertex id",
                               path.c_str(), std::string(token).c_str()));
      }
      vertices.push_back(static_cast<simrank::VertexId>(value));
    }
  }
  return vertices;
}

simrank::SimRankServer* g_server = nullptr;

void HandleSignal(int) {
  // Shutdown is async-signal-safe: an atomic store plus an eventfd write.
  if (g_server != nullptr) g_server->Shutdown();
}

int RealMain(int argc, char** argv) {
  ServerCliOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage(argv[0]);
    return 2;
  }

  simrank::WalkIndex::LoadOptions load_options;
  load_options.use_mmap = options.use_mmap;
  load_options.num_threads = options.load_threads;
  auto index = simrank::WalkIndex::Load(options.index_path, load_options);
  if (!index.ok()) {
    std::fprintf(stderr, "cannot load index: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }

  auto engine_options = MakeEngineOptions(options);
  if (!engine_options.ok()) {
    std::fprintf(stderr, "%s\n",
                 engine_options.status().ToString().c_str());
    return 2;
  }
  simrank::QueryEngine engine(*index, *engine_options);

  if (!options.shard_plan_path.empty()) {
    auto plan = simrank::ShardPlan::LoadFile(options.shard_plan_path);
    if (!plan.ok()) {
      std::fprintf(stderr, "cannot load shard plan: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    if (options.server.shard_id >= plan->shards.size()) {
      std::fprintf(stderr, "--shard-id=%u but the plan has %zu shards\n",
                   options.server.shard_id, plan->shards.size());
      return 2;
    }
    options.server.sharded = true;
    options.server.shard_plan = std::move(*plan);
  }

  std::unique_ptr<simrank::IndexUpdater> updater;
  if (!options.wal_path.empty()) {
    auto graph = simrank::ReadGraphAuto(options.graph_path);
    if (!graph.ok()) {
      std::fprintf(stderr, "cannot load graph: %s\n",
                   graph.status().ToString().c_str());
      return 1;
    }
    if (options.server.compact_path.empty()) {
      options.server.compact_path = options.index_path;
    }
    if (options.server.compact_graph_path.empty()) {
      options.server.compact_graph_path =
          options.server.compact_path + ".graph.bin";
    }
    // Compacted files keep the served file's segment encoding, so a
    // compact-then-restart cycle stays byte-reproducible. A probe failure
    // here is fatal: silently defaulting to raw would flip a compressed
    // index's encoding on the next compaction.
    auto info = simrank::ReadWalkIndexInfo(options.index_path);
    if (!info.ok()) {
      std::fprintf(stderr, "cannot probe index encoding: %s\n",
                   info.status().ToString().c_str());
      return 1;
    }
    options.server.compact_compress = info->compressed;
    simrank::IndexUpdaterOptions updater_options;
    updater_options.wal_path = options.wal_path;
    updater_options.sync_wal = options.sync_wal;
    updater_options.group_commit = options.group_commit;
    if (options.group_commit_window_us > 0) {
      updater_options.group_commit_window_us =
          options.group_commit_window_us;
    }
    updater_options.num_threads = options.update_threads;
    if (options.overlay_budget != 0 ||
        options.auto_compact_fraction != 0.0) {
      // Auto-compaction reuses the manual /v1/compact targets (the
      // defaults above already point them at the served index), keeps
      // its segment encoding, and — because the graph is persisted too —
      // resets the WAL to the compacted state.
      updater_options.overlay_budget_bytes = options.overlay_budget;
      updater_options.auto_compact_patched_fraction =
          options.auto_compact_fraction;
      updater_options.auto_compact_path = options.server.compact_path;
      updater_options.auto_compact_compress =
          options.server.compact_compress;
      updater_options.auto_compact_graph_path =
          options.server.compact_graph_path;
    }
    if (options.server.sharded) {
      // A shard's index stores out-of-range vertices as dead rows; the
      // range filter keeps the updater from re-simulating (and thereby
      // reviving) walks this shard does not own.
      const simrank::ShardRange& range =
          options.server.shard_plan.shards[options.server.shard_id];
      updater_options.vertex_begin = range.begin;
      updater_options.vertex_end = range.end;
    }
    auto opened = simrank::IndexUpdater::Open(*index, std::move(*graph),
                                              updater_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot open updater: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    updater = std::move(*opened);
    const simrank::IndexUpdateStats stats = updater->stats();
    std::fprintf(stderr,
                 "update log %s: %llu batch(es) replayed, overlay "
                 "sequence %llu%s\n",
                 options.wal_path.c_str(),
                 static_cast<unsigned long long>(stats.batches_replayed),
                 static_cast<unsigned long long>(stats.overlay_sequence),
                 stats.wal_truncated_bytes > 0 ? " (torn tail dropped)"
                                               : "");
  }
  simrank::SimRankServer server(engine, options.server, updater.get());

  auto status = server.Bind();
  if (!status.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  if (!options.warm_path.empty()) {
    auto warm = ReadWarmList(options.warm_path);
    if (!warm.ok()) {
      std::fprintf(stderr, "%s\n", warm.status().ToString().c_str());
      return 1;
    }
    auto warmed = server.Warm(*warm);
    if (!warmed.ok()) {
      std::fprintf(stderr, "warmup failed: %s\n",
                   warmed.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "warmed %zu vertices from %s\n", warm->size(),
                 options.warm_path.c_str());
  }

  std::unique_ptr<simrank::WalTailer> tailer;
  if (options.tail_from != 0) {
    simrank::WalTailerOptions tailer_options;
    tailer_options.source_port = static_cast<uint16_t>(options.tail_from);
    tailer = std::make_unique<simrank::WalTailer>(engine, *updater,
                                                  tailer_options);
    auto started = tailer->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "cannot start WAL tailer: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "tailing WAL of 127.0.0.1:%u\n", options.tail_from);
  }

  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::fprintf(stderr,
               "simrank_server: index %s (n=%u, R=%u, L=%u, %s backend), "
               "listening on %s:%u\n",
               options.index_path.c_str(), index->n(),
               index->options().num_fingerprints,
               index->options().walk_length,
               index->store().backend_name(),
               options.server.bind_address.c_str(), server.port());

  status = server.Serve();
  g_server = nullptr;
  if (tailer != nullptr) {
    tailer->Stop();
    const simrank::WalTailerStats tail_stats = tailer->stats();
    if (tail_stats.halted) {
      std::fprintf(stderr, "WAL tailer halted: %s\n",
                   tail_stats.last_error.c_str());
    }
  }
  if (!status.ok()) {
    std::fprintf(stderr, "server failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const simrank::ServerStats stats = server.stats();
  std::fprintf(stderr,
               "simrank_server: shut down cleanly (%llu requests served, "
               "%llu rejected)\n",
               static_cast<unsigned long long>(
                   stats.responses_2xx + stats.responses_4xx +
                   stats.responses_5xx),
               static_cast<unsigned long long>(stats.rejected_inflight +
                                               stats.rejected_endpoint));
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return RealMain(argc, argv); }
