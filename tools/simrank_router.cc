// simrank_router — scatter-gather frontend for a sharded SimRank cluster.
//
//   simrank_router --plan=PLAN --shard 0=PORT[,REPLICA] --shard 1=...
//                  [--port=8080] [--bind=127.0.0.1] [--timeout-ms=2000]
//                  [--retries=1] [--retry-after=1] [--max-batch-pairs=N]
//                  [--scrape-interval-ms=1000] [--scrape-timeout-ms=500]
//                  [--metrics-history=S] [--profile-log=PATH]
//                  [--profile-log-hz=HZ] [--profile-log-period=S]
//
// Speaks the same public /v1/* dialect as a single-node simrank_server —
// /v1/pair, /v1/single_source, /v1/topk, /v1/batch_pair, /v1/update,
// /v1/stats, /metrics, /healthz — and answers bitwise-identically to one,
// fanning queries to the shard servers listed with --shard (each serving
// one range of the plan via simrank_server --shard-plan/--shard-id).
// Reads fail over to a shard's replica when the primary is unreachable;
// updates are broadcast to every primary with per-shard WAL durability
// before the router acks. See src/simrank/cluster/router.h for the
// merge-exactness and consistency story.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "simrank/cluster/router.h"
#include "simrank/cluster/shard_plan.h"
#include "simrank/common/string_util.h"

namespace {

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --plan=PLAN --shard 0=PORT[,REPLICA] [--shard 1=...]\n"
      "       [--port=8080] [--bind=127.0.0.1] [--timeout-ms=2000]\n"
      "       [--retries=1] [--retry-after=1] [--max-batch-pairs=N]\n"
      "       [--scrape-interval-ms=1000] [--scrape-timeout-ms=500]\n"
      "       [--metrics-history=S] [--profile-log=PATH]\n"
      "       [--profile-log-hz=HZ] [--profile-log-period=S]\n"
      "\nRoutes /v1/pair, /v1/single_source, /v1/topk, /v1/batch_pair and\n"
      "/v1/update across the shard servers of PLAN, answering bitwise-\n"
      "identically to a single-node simrank_server over the full index.\n"
      "Each --shard names a shard id and its primary port, optionally\n"
      "followed by a comma and a replica port reads fail over to.\n"
      "The router scrapes every target's /metrics each\n"
      "--scrape-interval-ms (0 disables), serves the fleet roll-up at\n"
      "GET /v1/cluster/health, and re-exports every shard sample with\n"
      "shard/role labels from its own /metrics. --metrics-history=S\n"
      "keeps S seconds of aggregated gauges at GET /v1/debug/timeseries\n"
      "(default 900; 0 disables); GET /v1/debug/profile?seconds=N\n"
      "profiles the router itself, and --profile-log records continuous\n"
      "background profiles as JSONL.\n",
      argv0);
}

/// Parses one "--shard ID=PRIMARY[,REPLICA]" value (the part after the
/// space or '=').
bool ParseShardSpec(std::string_view spec, simrank::RouterShard* out) {
  const size_t eq = spec.find('=');
  if (eq == std::string_view::npos) return false;
  uint64_t shard_id = 0;
  if (!simrank::ParseUint64(spec.substr(0, eq), &shard_id)) return false;
  std::string_view ports = spec.substr(eq + 1);
  const size_t comma = ports.find(',');
  uint64_t primary = 0;
  uint64_t replica = 0;
  if (!simrank::ParseUint64(ports.substr(0, comma), &primary) ||
      primary == 0 || primary > 65535) {
    return false;
  }
  if (comma != std::string_view::npos) {
    if (!simrank::ParseUint64(ports.substr(comma + 1), &replica) ||
        replica == 0 || replica > 65535) {
      return false;
    }
  }
  out->shard_id = static_cast<uint32_t>(shard_id);
  out->primary_port = static_cast<uint16_t>(primary);
  out->replica_port = static_cast<uint16_t>(replica);
  return true;
}

simrank::SimRankRouter* g_router = nullptr;

void HandleSignal(int) {
  // RequestStop is async-signal-safe (atomic store + shutdown(2)); the
  // main thread's pause() returns and runs the full join.
  if (g_router != nullptr) g_router->RequestStop();
}

int RealMain(int argc, char** argv) {
  simrank::RouterOptions options;
  std::string plan_path;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto value_of = [&arg](std::string_view prefix) {
      return std::string(arg.substr(prefix.size()));
    };
    uint64_t u = 0;
    if (simrank::StartsWith(arg, "--plan=")) {
      plan_path = value_of("--plan=");
    } else if (arg == "--shard" && i + 1 < argc) {
      simrank::RouterShard shard;
      if (!ParseShardSpec(argv[++i], &shard)) {
        std::fprintf(stderr, "malformed --shard spec: %s\n", argv[i]);
        return 2;
      }
      options.shards.push_back(shard);
    } else if (simrank::StartsWith(arg, "--shard=")) {
      simrank::RouterShard shard;
      if (!ParseShardSpec(value_of("--shard="), &shard)) {
        std::fprintf(stderr, "malformed --shard spec: %s\n", argv[i]);
        return 2;
      }
      options.shards.push_back(shard);
    } else if (simrank::StartsWith(arg, "--port=")) {
      if (!simrank::ParseUint64(value_of("--port="), &u) || u > 65535) {
        std::fprintf(stderr, "--port must be 0..65535\n");
        return 2;
      }
      options.port = static_cast<uint16_t>(u);
    } else if (simrank::StartsWith(arg, "--bind=")) {
      options.bind_address = value_of("--bind=");
    } else if (simrank::StartsWith(arg, "--timeout-ms=")) {
      if (!simrank::ParseUint64(value_of("--timeout-ms="), &u) || u == 0) {
        std::fprintf(stderr, "--timeout-ms must be positive\n");
        return 2;
      }
      options.timeout_ms = static_cast<uint32_t>(u);
    } else if (simrank::StartsWith(arg, "--retries=")) {
      if (!simrank::ParseUint64(value_of("--retries="), &u)) return 2;
      options.retries = static_cast<uint32_t>(u);
    } else if (simrank::StartsWith(arg, "--retry-after=")) {
      if (!simrank::ParseUint64(value_of("--retry-after="), &u)) return 2;
      options.retry_after_seconds = static_cast<uint32_t>(u);
    } else if (simrank::StartsWith(arg, "--max-batch-pairs=")) {
      if (!simrank::ParseUint64(value_of("--max-batch-pairs="), &u) ||
          u == 0) {
        return 2;
      }
      options.max_batch_pairs = static_cast<uint32_t>(u);
    } else if (simrank::StartsWith(arg, "--scrape-interval-ms=")) {
      if (!simrank::ParseUint64(value_of("--scrape-interval-ms="), &u)) {
        return 2;
      }
      options.scrape_interval_ms = static_cast<uint32_t>(u);
    } else if (simrank::StartsWith(arg, "--scrape-timeout-ms=")) {
      if (!simrank::ParseUint64(value_of("--scrape-timeout-ms="), &u) ||
          u == 0) {
        std::fprintf(stderr, "--scrape-timeout-ms must be positive\n");
        return 2;
      }
      options.scrape_timeout_ms = static_cast<uint32_t>(u);
    } else if (simrank::StartsWith(arg, "--metrics-history=")) {
      if (!simrank::ParseUint64(value_of("--metrics-history="), &u)) {
        return 2;
      }
      options.metrics_history_window_s = static_cast<uint32_t>(u);
    } else if (simrank::StartsWith(arg, "--profile-log=")) {
      options.profile_log_path = value_of("--profile-log=");
    } else if (simrank::StartsWith(arg, "--profile-log-hz=")) {
      if (!simrank::ParseUint64(value_of("--profile-log-hz="), &u) ||
          u == 0 || u > 1000) {
        std::fprintf(stderr, "--profile-log-hz must be 1..1000\n");
        return 2;
      }
      options.profile_log_hz = static_cast<uint32_t>(u);
    } else if (simrank::StartsWith(arg, "--profile-log-period=")) {
      if (!simrank::ParseUint64(value_of("--profile-log-period="), &u) ||
          u == 0) {
        std::fprintf(stderr, "--profile-log-period must be positive\n");
        return 2;
      }
      options.profile_log_period_s = static_cast<uint32_t>(u);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      PrintUsage(argv[0]);
      return 2;
    }
  }
  if (plan_path.empty() || options.shards.empty()) {
    PrintUsage(argv[0]);
    return 2;
  }
  auto plan = simrank::ShardPlan::LoadFile(plan_path);
  if (!plan.ok()) {
    std::fprintf(stderr, "cannot load shard plan: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  options.plan = std::move(*plan);

  simrank::SimRankRouter router(std::move(options));
  auto status = router.Bind();
  if (!status.ok()) {
    std::fprintf(stderr, "cannot start router: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  status = router.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "cannot start router: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  g_router = &router;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::fprintf(
      stderr,
      "simrank_router: plan %s (epoch %llu, n=%u, %zu shards), listening "
      "on %s:%u\n",
      plan_path.c_str(),
      static_cast<unsigned long long>(router.options().plan.epoch),
      router.options().plan.n, router.options().plan.shards.size(),
      router.options().bind_address.c_str(), router.port());

  // The accept loop runs on its own thread; park this one until a signal
  // requests a stop, then join everything.
  ::pause();
  router.Shutdown();
  g_router = nullptr;
  const simrank::RouterStats stats = router.stats();
  std::fprintf(stderr,
               "simrank_router: shut down cleanly (%llu requests, "
               "%llu failovers)\n",
               static_cast<unsigned long long>(stats.requests_total),
               static_cast<unsigned long long>(stats.failovers));
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return RealMain(argc, argv); }
