// simrank_cli — command-line SimRank over an edge-list file.
//
// All-pairs mode (the paper's engines; --algo values come from the
// algorithm registry in core/engine.h):
//   simrank_cli GRAPH.txt [--algo=oip|oip-dsr|psum|naive|matrix|mtx]
//                         [--damping=0.6] [--epsilon=1e-3] [--iters=K]
//                         [--seed=S] [--threads=T]
//                         [--query=VERTEX --topk=K] [--csv=OUT.csv]
//
// Index serving mode (the walk-index subsystem):
//   simrank_cli build-index GRAPH.txt --index=PATH
//               [--fingerprints=256] [--walk-length=12] [--eps=E]
//               [--damping=0.6] [--seed=S] [--threads=T]
//               [--format=v2] [--compress]
//   simrank_cli query GRAPH.txt --index=PATH [--mmap]
//               [--cache-shards=S] [--cache-capacity=C]
//               (--query=V [--topk=K] | --pair=A,B)
//   simrank_cli index-info INDEX
//
// Dynamic updates (see src/simrank/index/index_updater.h):
//   simrank_cli update GRAPH --index=PATH --wal=WAL --updates=FILE
//               [--mmap] [--write-graph=OUT.bin] [--no-sync-wal]
//   simrank_cli compact GRAPH --index=PATH --wal=WAL --out=NEW.widx
//               [--mmap] [--compress] [--reset-wal]
//
// Cluster serving (see src/simrank/cluster/):
//   simrank_cli shard-plan GRAPH --index=PATH --shards=N --out-dir=DIR
//               [--epoch=E] [--compress] [--mmap]
//
// `shard-plan` splits a v2 index into per-shard index files (one per
// contiguous vertex range), a shared binary graph copy and the plan file
// that binds them — byte-deterministic, so re-splitting reproduces the
// same shard files. simrank_server serves one shard with
// --shard-plan/--shard-id; simrank_router fans queries back out.
//
// `update` appends an edge batch ("+ SRC DST" / "- SRC DST" per line) to
// the WAL and reports the local patch it induces; GRAPH is the *base*
// graph the index was built from (any earlier WAL batches are replayed
// first). --write-graph emits the updated graph in the binary format,
// which round-trips ids exactly — `build-index` on it reproduces the
// compacted index byte for byte. `compact` replays the WAL and writes
// base+overlay as a fresh v2 file, byte-identical to `build-index` on the
// updated graph; --reset-wal then re-binds the WAL to the compacted
// index.
//
// GRAPH.txt is a whitespace edge list ("src dst" per line, '#'/'%'
// comments allowed, SNAP-style) or a binary graph written by
// --write-graph. Without --query, the all-pairs mode prints run
// statistics only; with --query, the top-k most similar vertices. With
// --csv, it writes the query row (or, if no query, the full score matrix
// for graphs up to 2000 vertices) as CSV.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "simrank/cluster/shard_plan.h"
#include "simrank/cluster/shard_split.h"
#include "simrank/common/csv_writer.h"
#include "simrank/common/string_util.h"
#include "simrank/common/table_printer.h"
#include "simrank/common/thread_pool.h"
#include "simrank/common/timer.h"
#include "simrank/core/engine.h"
#include "simrank/extra/topk.h"
#include "simrank/graph/graph_io.h"
#include "simrank/index/edge_update.h"
#include "simrank/index/index_updater.h"
#include "simrank/index/query_engine.h"
#include "simrank/index/walk_index.h"
#include "simrank/index/walk_store.h"

namespace {

struct CliOptions {
  /// "" (all-pairs), "build-index", "query", "index-info", "update" or
  /// "compact".
  std::string subcommand;
  std::string graph_path;
  simrank::EngineOptions engine;
  int64_t query = -1;
  uint32_t topk = 10;
  bool topk_set = false;
  std::string csv_path;
  // Index-mode flags.
  std::string index_path;
  uint32_t fingerprints = 256;
  uint32_t walk_length = 12;
  uint32_t threads = 0;
  double eps = 0.0;
  int64_t pair_a = -1;
  int64_t pair_b = -1;
  bool compress = false;
  bool use_mmap = false;
  uint32_t cache_shards = 0;    // 0 = QueryEngine default
  uint32_t cache_capacity = 0;  // 0 = QueryEngine default
  bool cache_shards_set = false;
  bool cache_capacity_set = false;
  // Dynamic-update flags.
  std::string wal_path;
  std::string updates_path;
  std::string out_path;
  std::string write_graph_path;
  bool sync_wal = true;
  bool reset_wal = false;
  // First flag seen from each mode-specific group, for validation: flags
  // the selected mode would silently ignore are errors, not no-ops.
  std::string index_only_flag;   // --index/--fingerprints/... (index modes)
  std::string engine_only_flag;  // --algo/--epsilon/--iters/--csv
  std::string build_only_flag;   // --fingerprints/--walk-length/--compress
  std::string query_only_flag;   // --mmap
  bool damping_set = false;
  bool seed_set = false;
  bool threads_set = false;
  bool eps_set = false;
  bool fingerprints_set = false;
  bool walk_length_set = false;
  bool any_flag_set = false;
};

void RecordFlag(std::string* slot, const char* flag) {
  if (slot->empty()) *slot = flag;
}

bool ParseAlgorithm(const std::string& name, simrank::Algorithm* out) {
  const simrank::AlgorithmInfo* info = simrank::FindAlgorithmByFlag(name);
  if (info == nullptr) {
    std::fprintf(stderr, "unknown algorithm '%s'; available: %s\n",
                 name.c_str(), simrank::AlgorithmFlagList().c_str());
    return false;
  }
  *out = info->algorithm;
  return true;
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  int i = 1;
  if (argc < 2) return false;
  if (std::strcmp(argv[1], "build-index") == 0 ||
      std::strcmp(argv[1], "query") == 0 ||
      std::strcmp(argv[1], "index-info") == 0 ||
      std::strcmp(argv[1], "update") == 0 ||
      std::strcmp(argv[1], "compact") == 0) {
    options->subcommand = argv[1];
    ++i;
  }
  if (i >= argc) return false;
  // index-info's positional argument is the index file itself; every
  // other mode starts from a graph.
  if (options->subcommand == "index-info") {
    options->index_path = argv[i++];
  } else {
    options->graph_path = argv[i++];
  }
  for (; i < argc; ++i) {
    std::string_view arg = argv[i];
    options->any_flag_set = true;
    auto value_of = [&arg](std::string_view prefix) {
      return std::string(arg.substr(prefix.size()));
    };
    double d = 0;
    uint64_t u = 0;
    if (simrank::StartsWith(arg, "--algo=")) {
      if (!ParseAlgorithm(value_of("--algo="),
                          &options->engine.algorithm)) {
        return false;
      }
      RecordFlag(&options->engine_only_flag, "--algo");
    } else if (simrank::StartsWith(arg, "--damping=")) {
      if (!simrank::ParseDouble(value_of("--damping="), &d)) return false;
      options->engine.simrank.damping = d;
      options->damping_set = true;
    } else if (simrank::StartsWith(arg, "--epsilon=")) {
      if (!simrank::ParseDouble(value_of("--epsilon="), &d)) return false;
      options->engine.simrank.epsilon = d;
      RecordFlag(&options->engine_only_flag, "--epsilon");
    } else if (simrank::StartsWith(arg, "--iters=")) {
      if (!simrank::ParseUint64(value_of("--iters="), &u)) return false;
      options->engine.simrank.iterations = static_cast<uint32_t>(u);
      RecordFlag(&options->engine_only_flag, "--iters");
    } else if (simrank::StartsWith(arg, "--seed=")) {
      if (!simrank::ParseUint64(value_of("--seed="), &u)) return false;
      options->engine.simrank.seed = u;
      options->engine.mtx.svd_seed = u;
      options->seed_set = true;
    } else if (simrank::StartsWith(arg, "--query=")) {
      if (!simrank::ParseUint64(value_of("--query="), &u)) return false;
      options->query = static_cast<int64_t>(u);
    } else if (simrank::StartsWith(arg, "--topk=")) {
      if (!simrank::ParseUint64(value_of("--topk="), &u)) return false;
      options->topk = static_cast<uint32_t>(u);
      options->topk_set = true;
    } else if (simrank::StartsWith(arg, "--csv=")) {
      options->csv_path = value_of("--csv=");
      RecordFlag(&options->engine_only_flag, "--csv");
    } else if (simrank::StartsWith(arg, "--index=")) {
      options->index_path = value_of("--index=");
      RecordFlag(&options->index_only_flag, "--index");
    } else if (simrank::StartsWith(arg, "--fingerprints=")) {
      if (!simrank::ParseUint64(value_of("--fingerprints="), &u)) return false;
      options->fingerprints = static_cast<uint32_t>(u);
      options->fingerprints_set = true;
      RecordFlag(&options->index_only_flag, "--fingerprints");
      RecordFlag(&options->build_only_flag, "--fingerprints");
    } else if (simrank::StartsWith(arg, "--walk-length=")) {
      if (!simrank::ParseUint64(value_of("--walk-length="), &u)) return false;
      options->walk_length = static_cast<uint32_t>(u);
      options->walk_length_set = true;
      RecordFlag(&options->index_only_flag, "--walk-length");
      RecordFlag(&options->build_only_flag, "--walk-length");
    } else if (simrank::StartsWith(arg, "--eps=")) {
      if (!simrank::ParseDouble(value_of("--eps="), &d)) return false;
      options->eps = d;
      options->eps_set = true;
      RecordFlag(&options->index_only_flag, "--eps");
      RecordFlag(&options->build_only_flag, "--eps");
    } else if (simrank::StartsWith(arg, "--format=")) {
      // v2 is the only writable format; the flag exists so scripts can pin
      // it and get a clear error if they ever ask for the retired v1.
      const std::string format = value_of("--format=");
      if (format != "v2") {
        std::fprintf(stderr,
                     "unknown index format '%s'; supported: v2 (v1 flat "
                     "indexes are write-obsolete, see README)\n",
                     format.c_str());
        return false;
      }
      RecordFlag(&options->index_only_flag, "--format");
      RecordFlag(&options->build_only_flag, "--format");
    } else if (arg == "--compress") {
      options->compress = true;
      RecordFlag(&options->index_only_flag, "--compress");
      RecordFlag(&options->build_only_flag, "--compress");
    } else if (arg == "--mmap") {
      options->use_mmap = true;
      RecordFlag(&options->index_only_flag, "--mmap");
      RecordFlag(&options->query_only_flag, "--mmap");
    } else if (simrank::StartsWith(arg, "--cache-shards=")) {
      if (!simrank::ParseUint64(value_of("--cache-shards="), &u)) {
        return false;
      }
      options->cache_shards = static_cast<uint32_t>(u);
      options->cache_shards_set = true;
      RecordFlag(&options->index_only_flag, "--cache-shards");
      RecordFlag(&options->query_only_flag, "--cache-shards");
    } else if (simrank::StartsWith(arg, "--cache-capacity=")) {
      if (!simrank::ParseUint64(value_of("--cache-capacity="), &u)) {
        return false;
      }
      options->cache_capacity = static_cast<uint32_t>(u);
      options->cache_capacity_set = true;
      RecordFlag(&options->index_only_flag, "--cache-capacity");
      RecordFlag(&options->query_only_flag, "--cache-capacity");
    } else if (simrank::StartsWith(arg, "--threads=")) {
      // Shared between the all-pairs engines (block-parallel propagation)
      // and index construction; only the query subcommand rejects it.
      if (!simrank::ParseUint64(value_of("--threads="), &u)) return false;
      options->threads = static_cast<uint32_t>(u);
      options->engine.simrank.threads = static_cast<uint32_t>(u);
      options->threads_set = true;
    } else if (simrank::StartsWith(arg, "--wal=")) {
      options->wal_path = value_of("--wal=");
      RecordFlag(&options->index_only_flag, "--wal");
    } else if (simrank::StartsWith(arg, "--updates=")) {
      options->updates_path = value_of("--updates=");
      RecordFlag(&options->index_only_flag, "--updates");
    } else if (simrank::StartsWith(arg, "--out=")) {
      options->out_path = value_of("--out=");
      RecordFlag(&options->index_only_flag, "--out");
    } else if (simrank::StartsWith(arg, "--write-graph=")) {
      options->write_graph_path = value_of("--write-graph=");
      RecordFlag(&options->index_only_flag, "--write-graph");
    } else if (arg == "--no-sync-wal") {
      options->sync_wal = false;
      RecordFlag(&options->index_only_flag, "--no-sync-wal");
    } else if (arg == "--reset-wal") {
      options->reset_wal = true;
      RecordFlag(&options->index_only_flag, "--reset-wal");
    } else if (simrank::StartsWith(arg, "--pair=")) {
      const std::string value = value_of("--pair=");
      const size_t comma = value.find(',');
      uint64_t a = 0, b = 0;
      if (comma == std::string::npos ||
          !simrank::ParseUint64(value.substr(0, comma), &a) ||
          !simrank::ParseUint64(value.substr(comma + 1), &b)) {
        return false;
      }
      options->pair_a = static_cast<int64_t>(a);
      options->pair_b = static_cast<int64_t>(b);
      RecordFlag(&options->index_only_flag, "--pair");
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s GRAPH.txt [--algo=%s]\n"
      "       [--damping=C] [--epsilon=EPS] [--iters=K] [--seed=S]\n"
      "       [--threads=T] [--query=V --topk=K] [--csv=OUT.csv]\n"
      "   or: %s build-index GRAPH.txt --index=PATH\n"
      "       [--fingerprints=N] [--walk-length=L] [--eps=E]\n"
      "       [--damping=C] [--seed=S] [--threads=T]\n"
      "       [--format=v2] [--compress]\n"
      "   or: %s query GRAPH.txt --index=PATH [--mmap]\n"
      "       [--cache-shards=S] [--cache-capacity=C]\n"
      "       (--query=V [--topk=K] | --pair=A,B)\n"
      "   or: %s index-info INDEX\n"
      "   or: %s update GRAPH --index=PATH --wal=WAL --updates=FILE\n"
      "       [--mmap] [--threads=T] [--write-graph=OUT.bin] [--no-sync-wal]\n"
      "   or: %s compact GRAPH --index=PATH --wal=WAL --out=NEW.widx\n"
      "       [--mmap] [--threads=T] [--compress] [--reset-wal]\n"
      "   or: %s shard-plan GRAPH --index=PATH --shards=N --out-dir=DIR\n"
      "       [--epoch=E] [--compress] [--mmap]\n"
      "\nalgorithms:\n",
      argv0, simrank::AlgorithmFlagList().c_str(), argv0, argv0, argv0,
      argv0, argv0, argv0);
  for (const simrank::AlgorithmInfo& info : simrank::AlgorithmRegistry()) {
    std::fprintf(stderr, "  %-8s %-10s %s%s\n", info.flag, info.name,
                 info.summary,
                 info.parallel ? "" : " (single-threaded)");
  }
}

/// Validates flag combinations that ParseArgs alone cannot check.
simrank::Status ValidateOptions(const CliOptions& options) {
  using simrank::Status;
  if (options.subcommand.empty()) {
    if (options.topk_set && options.query < 0) {
      return Status::InvalidArgument(
          "--topk requires --query: without a query vertex there is no "
          "ranking to truncate");
    }
    // Build-time knobs first, so their message names the one subcommand
    // that actually accepts them (--threads is shared with the all-pairs
    // engines and validated no further).
    if (!options.build_only_flag.empty()) {
      return Status::InvalidArgument(
          options.build_only_flag +
          " is only meaningful with the build-index subcommand");
    }
    if (!options.index_only_flag.empty()) {
      return Status::InvalidArgument(
          options.index_only_flag +
          " is only meaningful with the build-index/query subcommands");
    }
    return Status::OK();
  }
  if (options.subcommand == "index-info") {
    // The index file is the positional argument; every flag belongs to
    // another mode.
    if (options.any_flag_set) {
      return Status::InvalidArgument(
          "index-info takes no flags; it prints the header of the given "
          "index file");
    }
    return Status::OK();
  }
  if (options.index_path.empty()) {
    return Status::InvalidArgument("the " + options.subcommand +
                                   " subcommand requires --index=PATH");
  }
  if (!options.engine_only_flag.empty()) {
    return Status::InvalidArgument(
        options.engine_only_flag + " configures the all-pairs engines and "
        "is ignored by the " + options.subcommand + " subcommand");
  }
  const bool is_update_mode =
      options.subcommand == "update" || options.subcommand == "compact";
  if (!is_update_mode) {
    if (!options.wal_path.empty() || !options.updates_path.empty() ||
        !options.out_path.empty() || !options.write_graph_path.empty() ||
        !options.sync_wal || options.reset_wal) {
      return Status::InvalidArgument(
          "--wal/--updates/--out/--write-graph/--no-sync-wal/--reset-wal "
          "belong to the update/compact subcommands");
    }
  }
  if (is_update_mode) {
    if (options.wal_path.empty()) {
      return Status::InvalidArgument(
          "the " + options.subcommand +
          " subcommand requires --wal=PATH: updates are only accepted "
          "write-ahead");
    }
    if (options.query >= 0 || options.topk_set || options.pair_a >= 0) {
      return Status::InvalidArgument(
          "--query/--topk/--pair belong to the query subcommand");
    }
    if (options.cache_shards_set || options.cache_capacity_set) {
      return Status::InvalidArgument(
          "--cache-shards/--cache-capacity configure query serving, not " +
          options.subcommand);
    }
    // --threads stays legal here: it parallelizes walk patching and the
    // compaction merge, with output bitwise identical to serial.
    if (options.damping_set || options.seed_set || options.eps_set ||
        options.fingerprints_set || options.walk_length_set) {
      return Status::InvalidArgument(
          "model and build knobs are baked into the index; " +
          options.subcommand + " patches the existing one");
    }
    if (options.subcommand == "update") {
      if (options.updates_path.empty()) {
        return Status::InvalidArgument(
            "update requires --updates=FILE ('+ SRC DST' / '- SRC DST' "
            "per line)");
      }
      if (!options.out_path.empty() || options.reset_wal ||
          options.compress) {
        return Status::InvalidArgument(
            "--out/--reset-wal/--compress belong to the compact "
            "subcommand");
      }
    } else {
      if (options.out_path.empty()) {
        return Status::InvalidArgument(
            "compact requires --out=PATH for the merged index");
      }
      if (!options.updates_path.empty() ||
          !options.write_graph_path.empty() || !options.sync_wal) {
        return Status::InvalidArgument(
            "--updates/--write-graph/--no-sync-wal belong to the update "
            "subcommand");
      }
    }
    return Status::OK();
  }
  if (options.subcommand == "build-index") {
    if (options.query >= 0 || options.topk_set || options.pair_a >= 0) {
      return Status::InvalidArgument(
          "--query/--topk/--pair belong to the query subcommand, not "
          "build-index");
    }
    if (!options.query_only_flag.empty()) {
      return Status::InvalidArgument(
          options.query_only_flag +
          " selects the serving backend and belongs to the query "
          "subcommand");
    }
    if (options.eps_set &&
        (options.fingerprints_set || options.walk_length_set)) {
      return Status::InvalidArgument(
          "--eps derives --fingerprints and --walk-length from the accuracy "
          "target; give either --eps or the raw knobs, not both");
    }
  }
  if (options.subcommand == "query") {
    if (!options.build_only_flag.empty()) {
      return Status::InvalidArgument(
          options.build_only_flag +
          " is a build-index flag; the served values are baked into the "
          "index file");
    }
    if (options.damping_set || options.seed_set) {
      return Status::InvalidArgument(
          "--damping/--seed are baked into the index at build time and "
          "cannot be changed at query time");
    }
    if (options.threads_set) {
      return Status::InvalidArgument(
          "--threads configures the all-pairs engines and index "
          "construction; a single query is served on the calling thread");
    }
    const bool has_query = options.query >= 0;
    const bool has_pair = options.pair_a >= 0;
    if (has_query == has_pair) {
      return Status::InvalidArgument(
          "query needs exactly one of --query=V or --pair=A,B");
    }
    if (options.topk_set && !has_query) {
      return Status::InvalidArgument("--topk requires --query");
    }
    if (options.cache_shards_set && options.cache_shards == 0) {
      return Status::InvalidArgument(
          "--cache-shards must be positive: the row cache needs at least "
          "one shard");
    }
    if (options.cache_capacity_set && options.cache_capacity == 0) {
      return Status::InvalidArgument(
          "--cache-capacity must be positive: a zero-row cache cannot "
          "serve");
    }
  }
  return Status::OK();
}

simrank::Result<simrank::DiGraph> LoadGraph(const std::string& path) {
  // Sniffs the binary magic, so `update --write-graph` output feeds
  // straight back into any subcommand.
  auto graph = simrank::ReadGraphAuto(path);
  if (graph.ok()) {
    std::fprintf(stderr,
                 "graph: %u vertices, %llu edges, avg in-degree %.2f\n",
                 graph->n(), static_cast<unsigned long long>(graph->m()),
                 graph->AverageInDegree());
  } else {
    std::fprintf(stderr, "cannot load graph: %s\n",
                 graph.status().ToString().c_str());
  }
  return graph;
}

int RunBuildIndex(const CliOptions& options) {
  auto graph = LoadGraph(options.graph_path);
  if (!graph.ok()) return 1;
  // Damping and seed flow through the shared SimRank model options; with
  // --eps the fingerprint count and walk length are derived from the
  // accuracy target instead of taken as raw knobs.
  simrank::WalkIndexOptions index_options;
  if (options.eps_set) {
    index_options = simrank::WalkIndexOptions::FromAccuracy(
        options.eps, /*delta=*/0.01, options.engine.simrank);
    if (!index_options.Valid()) {
      std::fprintf(stderr, "--eps=%g is not a provisionable accuracy "
                   "target (need 0 < eps < 1, and the derived fingerprint "
                   "count and walk length must be representable)\n",
                   options.eps);
      return 1;
    }
    std::fprintf(stderr,
                 "accuracy target eps=%g (delta=0.01): %u fingerprints, "
                 "walk length %u\n",
                 options.eps, index_options.num_fingerprints,
                 index_options.walk_length);
  } else {
    index_options =
        simrank::WalkIndexOptions::FromSimRank(options.engine.simrank);
    index_options.num_fingerprints = options.fingerprints;
    index_options.walk_length = options.walk_length;
  }
  index_options.num_threads = options.threads;
  simrank::WallTimer timer;
  timer.Start();
  auto index = simrank::WalkIndex::Build(*graph, index_options);
  timer.Stop();
  if (!index.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  simrank::WalkIndex::SaveOptions save_options;
  save_options.compress = options.compress;
  auto status = index->Save(options.index_path, save_options);
  if (!status.ok()) {
    std::fprintf(stderr, "index save failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "built index: %u fingerprints x %u steps, %.1f MiB "
               "resident, %s build, wrote %s (v2%s)\n",
               index_options.num_fingerprints, index_options.walk_length,
               static_cast<double>(index->SizeBytes()) / (1024.0 * 1024.0),
               simrank::FormatDuration(timer.ElapsedSeconds()).c_str(),
               options.index_path.c_str(),
               options.compress ? ", compressed segments" : "");
  return 0;
}

int RunIndexInfo(const CliOptions& options) {
  auto info = simrank::ReadWalkIndexInfo(options.index_path);
  if (!info.ok()) {
    std::fprintf(stderr, "cannot read index header: %s\n",
                 info.status().ToString().c_str());
    return 1;
  }
  simrank::TablePrinter table({"field", "value"});
  table.AddRow({"path", options.index_path});
  table.AddRow({"format version", simrank::StrFormat("%u", info->version)});
  table.AddRow({"segments",
                info->compressed ? "delta+varint compressed" : "raw"});
  table.AddRow({"vertices (= segment count)",
                simrank::FormatCount(info->meta.n)});
  table.AddRow({"fingerprints (R)",
                simrank::FormatCount(info->meta.num_fingerprints)});
  table.AddRow({"walk length (L)",
                simrank::FormatCount(info->meta.walk_length)});
  table.AddRow({"damping", simrank::StrFormat("%g", info->meta.damping)});
  table.AddRow({"seed", simrank::StrFormat(
                            "%llu", static_cast<unsigned long long>(
                                        info->meta.seed))});
  table.AddRow({"graph fingerprint",
                simrank::FormatFingerprint(info->meta.graph_fingerprint)});
  table.AddSeparator();
  table.AddRow({"file size", simrank::FormatBytes(info->file_bytes)});
  table.AddRow({"segment directory",
                simrank::FormatBytes(info->directory_bytes)});
  table.AddRow({"walk segments (on disk)",
                simrank::FormatBytes(info->segment_bytes)});
  table.AddRow({"inverted index (on disk)",
                simrank::FormatBytes(info->inverted_bytes)});
  table.AddRow({"raw walk table (decoded)",
                simrank::FormatBytes(info->raw_walk_bytes)});
  if (info->segment_bytes > 0) {
    table.AddRow({"segment compression",
                  simrank::StrFormat("%.2fx",
                                     static_cast<double>(
                                         info->raw_walk_bytes) /
                                         info->segment_bytes)});
  }
  table.Print();
  return 0;
}

int RunQuery(const CliOptions& options) {
  auto graph = LoadGraph(options.graph_path);
  if (!graph.ok()) return 1;
  simrank::WalkIndex::LoadOptions load_options;
  load_options.use_mmap = options.use_mmap;
  auto index = simrank::WalkIndex::Load(options.index_path, load_options);
  if (!index.ok()) {
    std::fprintf(stderr, "cannot load index: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  auto valid = index->ValidateGraph(*graph);
  if (!valid.ok()) {
    std::fprintf(stderr, "index does not match graph: %s\n",
                 valid.ToString().c_str());
    return 1;
  }
  // One query per invocation: no batch fan-out, so a single-worker pool.
  simrank::QueryEngineOptions engine_options;
  engine_options.num_threads = 1;
  if (options.cache_shards_set) {
    engine_options.cache_shards = options.cache_shards;
  }
  if (options.cache_capacity_set) {
    engine_options.cache_capacity_per_shard = options.cache_capacity;
  }
  simrank::QueryEngine engine(*index, engine_options);

  if (options.pair_a >= 0) {
    auto score = engine.Pair(static_cast<simrank::VertexId>(options.pair_a),
                             static_cast<simrank::VertexId>(options.pair_b));
    if (!score.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   score.status().ToString().c_str());
      return 1;
    }
    std::printf("s(%lld, %lld) = %.6f\n",
                static_cast<long long>(options.pair_a),
                static_cast<long long>(options.pair_b), *score);
    return 0;
  }

  auto top = engine.TopK(static_cast<simrank::VertexId>(options.query),
                         options.topk);
  if (!top.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 top.status().ToString().c_str());
    return 1;
  }
  std::printf("# top-%u similar to %lld (walk index estimate)\n",
              options.topk, static_cast<long long>(options.query));
  for (const auto& sv : *top) {
    std::printf("%u\t%.6f\n", sv.vertex, sv.score);
  }
  return 0;
}

/// The index (heap-allocated: the updater keeps a reference to it) and
/// its bound updater.
struct OpenedUpdater {
  std::unique_ptr<simrank::WalkIndex> index;
  std::unique_ptr<simrank::IndexUpdater> updater;
};

/// Shared by update/compact: loads the base graph and index, binds the
/// updater (replaying the WAL).
simrank::Result<OpenedUpdater> OpenUpdater(const CliOptions& options) {
  auto graph = LoadGraph(options.graph_path);
  if (!graph.ok()) return graph.status();
  simrank::WalkIndex::LoadOptions load_options;
  load_options.use_mmap = options.use_mmap;
  auto loaded = simrank::WalkIndex::Load(options.index_path, load_options);
  if (!loaded.ok()) return loaded.status();
  OpenedUpdater opened;
  opened.index =
      std::make_unique<simrank::WalkIndex>(std::move(*loaded));
  simrank::IndexUpdaterOptions updater_options;
  updater_options.wal_path = options.wal_path;
  updater_options.sync_wal = options.sync_wal;
  // --threads parallelizes walk patching and the compaction merge the
  // same way it does index construction; results are identical for any
  // value.
  updater_options.num_threads = options.threads;
  auto updater = simrank::IndexUpdater::Open(
      *opened.index, std::move(*graph), updater_options);
  if (!updater.ok()) return updater.status();
  opened.updater = std::move(*updater);
  return opened;
}

int RunUpdate(const CliOptions& options) {
  auto updates = simrank::ReadEdgeUpdates(options.updates_path);
  if (!updates.ok()) {
    std::fprintf(stderr, "cannot read update batch: %s\n",
                 updates.status().ToString().c_str());
    return 1;
  }
  auto updater = OpenUpdater(options);
  if (!updater.ok()) {
    std::fprintf(stderr, "cannot open updater: %s\n",
                 updater.status().ToString().c_str());
    return 1;
  }
  const simrank::IndexUpdateStats before = updater->updater->stats();
  simrank::WallTimer timer;
  timer.Start();
  auto status = updater->updater->ApplyUpdates(*updates);
  timer.Stop();
  if (!status.ok()) {
    std::fprintf(stderr, "update failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const simrank::IndexUpdateStats after = updater->updater->stats();
  std::fprintf(
      stderr,
      "applied %zu update(s) in %s (%llu batch(es) replayed first): "
      "%llu walk(s) re-simulated, %llu changed; overlay sequence %llu, "
      "%llu patched vertex segment(s), %llu inverted-slot diff(s); "
      "graph now %llu edges, fingerprint %s; WAL %s (%llu record(s))\n",
      updates->size(),
      simrank::FormatDuration(timer.ElapsedSeconds()).c_str(),
      static_cast<unsigned long long>(before.batches_replayed),
      static_cast<unsigned long long>(after.walks_resimulated -
                                      before.walks_resimulated),
      static_cast<unsigned long long>(after.walks_changed -
                                      before.walks_changed),
      static_cast<unsigned long long>(after.overlay_sequence),
      static_cast<unsigned long long>(after.patched_vertices),
      static_cast<unsigned long long>(after.changed_slots),
      static_cast<unsigned long long>(after.graph_edges),
      simrank::FormatFingerprint(after.current_graph_fingerprint).c_str(),
      options.wal_path.c_str(),
      static_cast<unsigned long long>(after.wal_records));
  if (!options.write_graph_path.empty()) {
    auto written = simrank::WriteBinary(updater->updater->CurrentGraph(),
                                        options.write_graph_path);
    if (!written.ok()) {
      std::fprintf(stderr, "cannot write updated graph: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote updated graph (binary format) to %s\n",
                 options.write_graph_path.c_str());
  }
  return 0;
}

int RunCompact(const CliOptions& options) {
  auto updater = OpenUpdater(options);
  if (!updater.ok()) {
    std::fprintf(stderr, "cannot open updater: %s\n",
                 updater.status().ToString().c_str());
    return 1;
  }
  const simrank::IndexUpdateStats stats = updater->updater->stats();
  simrank::WalkIndex::SaveOptions save;
  save.compress = options.compress;
  simrank::WallTimer timer;
  timer.Start();
  auto status = updater->updater->Compact(options.out_path, save,
                                          options.reset_wal);
  timer.Stop();
  if (!status.ok()) {
    std::fprintf(stderr, "compact failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::fprintf(
      stderr,
      "compacted %llu batch(es) (%llu patched vertex segment(s)) into %s "
      "in %s (v2%s, graph fingerprint %s)%s\n",
      static_cast<unsigned long long>(stats.batches_applied),
      static_cast<unsigned long long>(stats.patched_vertices),
      options.out_path.c_str(),
      simrank::FormatDuration(timer.ElapsedSeconds()).c_str(),
      options.compress ? ", compressed segments" : "",
      simrank::FormatFingerprint(stats.current_graph_fingerprint).c_str(),
      options.reset_wal ? "; WAL reset" : "");
  return 0;
}

int RunAllPairs(const CliOptions& options) {
  auto graph = LoadGraph(options.graph_path);
  if (!graph.ok()) return 1;

  auto run = simrank::ComputeSimRank(*graph, options.engine);
  if (!run.ok()) {
    std::fprintf(stderr, "SimRank failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "%s: %u iterations, %.3f s (setup %.3f s), %llu additions, "
               "%llu B intermediate, %u thread(s)\n",
               simrank::AlgorithmName(options.engine.algorithm),
               run->stats.iterations, run->stats.seconds_total(),
               run->stats.seconds_setup,
               static_cast<unsigned long long>(run->stats.ops.total_adds()),
               static_cast<unsigned long long>(run->stats.aux_peak_bytes),
               simrank::ThreadPool::ResolveThreadCount(
                   options.engine.simrank.threads));

  if (options.query >= 0) {
    if (options.query >= graph->n()) {
      std::fprintf(stderr, "query vertex out of range\n");
      return 1;
    }
    auto top = simrank::TopKSimilar(
        run->scores, static_cast<simrank::VertexId>(options.query),
        options.topk);
    std::printf("# top-%u similar to %lld\n", options.topk,
                static_cast<long long>(options.query));
    for (const auto& sv : top) {
      std::printf("%u\t%.6f\n", sv.vertex, sv.score);
    }
  }

  if (!options.csv_path.empty()) {
    simrank::CsvWriter csv({"src", "dst", "score"});
    if (options.query >= 0) {
      const auto q = static_cast<simrank::VertexId>(options.query);
      for (uint32_t v = 0; v < graph->n(); ++v) {
        csv.AddRow({simrank::StrFormat("%u", q), simrank::StrFormat("%u", v),
                    simrank::StrFormat("%.8f", run->scores(q, v))});
      }
    } else {
      if (graph->n() > 2000) {
        std::fprintf(stderr,
                     "refusing to dump full matrix for n > 2000; "
                     "use --query\n");
        return 1;
      }
      for (uint32_t a = 0; a < graph->n(); ++a) {
        for (uint32_t b = 0; b < graph->n(); ++b) {
          if (run->scores(a, b) == 0.0) continue;
          csv.AddRow({simrank::StrFormat("%u", a),
                      simrank::StrFormat("%u", b),
                      simrank::StrFormat("%.8f", run->scores(a, b))});
        }
      }
    }
    auto status = csv.WriteToFile(options.csv_path);
    if (!status.ok()) {
      std::fprintf(stderr, "csv write failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s (%zu rows)\n", options.csv_path.c_str(),
                 csv.num_rows());
  }
  return 0;
}

/// `shard-plan`: split one v2 index into per-shard index files plus the
/// plan that binds them — the offline step of bringing up a cluster.
/// Self-contained flag parsing: the subcommand shares nothing with the
/// all-pairs/index modes' flag groups.
int RunShardPlan(int argc, char** argv) {
  std::string graph_path;
  std::string index_path;
  std::string out_dir;
  uint64_t num_shards = 0;
  uint64_t epoch = 1;
  bool compress = false;
  bool use_mmap = false;
  for (int i = 2; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto value_of = [&arg](std::string_view prefix) {
      return std::string(arg.substr(prefix.size()));
    };
    if (simrank::StartsWith(arg, "--index=")) {
      index_path = value_of("--index=");
    } else if (simrank::StartsWith(arg, "--shards=")) {
      if (!simrank::ParseUint64(value_of("--shards="), &num_shards)) {
        std::fprintf(stderr, "--shards must be a positive integer\n");
        return 2;
      }
    } else if (simrank::StartsWith(arg, "--out-dir=")) {
      out_dir = value_of("--out-dir=");
    } else if (simrank::StartsWith(arg, "--epoch=")) {
      if (!simrank::ParseUint64(value_of("--epoch="), &epoch)) {
        std::fprintf(stderr, "--epoch must be a non-negative integer\n");
        return 2;
      }
    } else if (arg == "--compress") {
      compress = true;
    } else if (arg == "--mmap") {
      use_mmap = true;
    } else if (!simrank::StartsWith(arg, "--") && graph_path.empty()) {
      graph_path = std::string(arg);
    } else {
      std::fprintf(stderr, "shard-plan: unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (graph_path.empty() || index_path.empty() || out_dir.empty() ||
      num_shards == 0 || num_shards > UINT32_MAX) {
    std::fprintf(stderr,
                 "shard-plan requires GRAPH, --index=PATH, --shards=N and "
                 "--out-dir=DIR\n");
    return 2;
  }

  simrank::WalkIndex::LoadOptions load_options;
  load_options.use_mmap = use_mmap;
  auto index = simrank::WalkIndex::Load(index_path, load_options);
  if (!index.ok()) {
    std::fprintf(stderr, "cannot load index: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  auto graph = simrank::ReadGraphAuto(graph_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "cannot load graph: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  const uint64_t fingerprint = simrank::GraphFingerprint(*graph);
  if (fingerprint != index->graph_fingerprint()) {
    std::fprintf(stderr,
                 "graph %s (fingerprint %s) is not the graph index %s was "
                 "built from (fingerprint %s)\n",
                 graph_path.c_str(),
                 simrank::FormatFingerprint(fingerprint).c_str(),
                 index_path.c_str(),
                 simrank::FormatFingerprint(index->graph_fingerprint())
                     .c_str());
    return 1;
  }

  auto plan = simrank::ShardPlan::EvenSplit(
      index->n(), fingerprint, static_cast<uint32_t>(num_shards), epoch);
  if (!plan.ok()) {
    std::fprintf(stderr, "cannot build plan: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }

  simrank::WallTimer timer;
  timer.Start();
  for (const simrank::ShardRange& range : plan->shards) {
    const std::string shard_path =
        simrank::StrFormat("%s/shard-%u.widx", out_dir.c_str(),
                           range.shard_id);
    auto written =
        simrank::WriteShardIndex(index->store(), range, shard_path,
                                 compress);
    if (!written.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", shard_path.c_str(),
                   written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "shard %u: vertices [%u, %u) -> %s\n",
                 range.shard_id, range.begin, range.end,
                 shard_path.c_str());
  }
  // One shared graph copy in the id-exact binary format: every shard
  // server re-simulates walks against the *full* graph, and the binary
  // round-trip keeps its fingerprint identical.
  const std::string graph_out = out_dir + "/graph.bin";
  auto graph_written = simrank::WriteBinary(*graph, graph_out);
  if (!graph_written.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", graph_out.c_str(),
                 graph_written.ToString().c_str());
    return 1;
  }
  const std::string plan_out = out_dir + "/plan.txt";
  auto plan_written = plan->SaveFile(plan_out);
  if (!plan_written.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", plan_out.c_str(),
                 plan_written.ToString().c_str());
    return 1;
  }
  timer.Stop();
  std::fprintf(
      stderr,
      "split %s into %zu shard(s) in %s: plan %s (epoch %llu, "
      "fingerprint %s), graph copy %s\n",
      index_path.c_str(), plan->shards.size(),
      simrank::FormatDuration(timer.ElapsedSeconds()).c_str(),
      plan_out.c_str(), static_cast<unsigned long long>(plan->epoch),
      simrank::FormatFingerprint(fingerprint).c_str(), graph_out.c_str());
  return 0;
}

int RealMain(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "shard-plan") == 0) {
    return RunShardPlan(argc, argv);
  }
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage(argv[0]);
    return 2;
  }
  auto status = ValidateOptions(options);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 2;
  }
  if (options.subcommand == "build-index") return RunBuildIndex(options);
  if (options.subcommand == "query") return RunQuery(options);
  if (options.subcommand == "index-info") return RunIndexInfo(options);
  if (options.subcommand == "update") return RunUpdate(options);
  if (options.subcommand == "compact") return RunCompact(options);
  return RunAllPairs(options);
}

}  // namespace

int main(int argc, char** argv) { return RealMain(argc, argv); }
