// simrank_cli — command-line SimRank over an edge-list file.
//
// Usage:
//   simrank_cli GRAPH.txt [--algo=oip|oip-dsr|psum|naive|matrix|mtx]
//                         [--damping=0.6] [--epsilon=1e-3] [--iters=K]
//                         [--query=VERTEX --topk=K] [--csv=OUT.csv]
//
// GRAPH.txt is a whitespace edge list ("src dst" per line, '#'/'%'
// comments allowed, SNAP-style). Without --query, prints run statistics
// only; with --query, prints the top-k most similar vertices. With --csv,
// writes the query row (or, if no query, the full score matrix for graphs
// up to 2000 vertices) as CSV.
#include <cstdio>
#include <cstring>
#include <string>

#include "simrank/common/csv_writer.h"
#include "simrank/common/string_util.h"
#include "simrank/core/engine.h"
#include "simrank/extra/topk.h"
#include "simrank/graph/graph_io.h"

namespace {

struct CliOptions {
  std::string graph_path;
  simrank::EngineOptions engine;
  int64_t query = -1;
  uint32_t topk = 10;
  std::string csv_path;
};

bool ParseAlgorithm(const std::string& name, simrank::Algorithm* out) {
  if (name == "oip") *out = simrank::Algorithm::kOip;
  else if (name == "oip-dsr") *out = simrank::Algorithm::kOipDsr;
  else if (name == "psum") *out = simrank::Algorithm::kPsum;
  else if (name == "naive") *out = simrank::Algorithm::kNaive;
  else if (name == "matrix") *out = simrank::Algorithm::kMatrix;
  else if (name == "mtx") *out = simrank::Algorithm::kMtx;
  else return false;
  return true;
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  if (argc < 2) return false;
  options->graph_path = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto value_of = [&arg](std::string_view prefix) {
      return std::string(arg.substr(prefix.size()));
    };
    double d = 0;
    uint64_t u = 0;
    if (simrank::StartsWith(arg, "--algo=")) {
      if (!ParseAlgorithm(value_of("--algo="),
                          &options->engine.algorithm)) {
        return false;
      }
    } else if (simrank::StartsWith(arg, "--damping=")) {
      if (!simrank::ParseDouble(value_of("--damping="), &d)) return false;
      options->engine.simrank.damping = d;
    } else if (simrank::StartsWith(arg, "--epsilon=")) {
      if (!simrank::ParseDouble(value_of("--epsilon="), &d)) return false;
      options->engine.simrank.epsilon = d;
    } else if (simrank::StartsWith(arg, "--iters=")) {
      if (!simrank::ParseUint64(value_of("--iters="), &u)) return false;
      options->engine.simrank.iterations = static_cast<uint32_t>(u);
    } else if (simrank::StartsWith(arg, "--query=")) {
      if (!simrank::ParseUint64(value_of("--query="), &u)) return false;
      options->query = static_cast<int64_t>(u);
    } else if (simrank::StartsWith(arg, "--topk=")) {
      if (!simrank::ParseUint64(value_of("--topk="), &u)) return false;
      options->topk = static_cast<uint32_t>(u);
    } else if (simrank::StartsWith(arg, "--csv=")) {
      options->csv_path = value_of("--csv=");
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

int RealMain(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    std::fprintf(stderr,
                 "usage: %s GRAPH.txt [--algo=oip|oip-dsr|psum|naive|matrix|"
                 "mtx]\n"
                 "       [--damping=C] [--epsilon=EPS] [--iters=K]\n"
                 "       [--query=V --topk=K] [--csv=OUT.csv]\n",
                 argv[0]);
    return 2;
  }

  auto graph = simrank::ReadEdgeList(options.graph_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "cannot load graph: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "graph: %u vertices, %llu edges, avg in-degree %.2f\n",
               graph->n(), static_cast<unsigned long long>(graph->m()),
               graph->AverageInDegree());

  auto run = simrank::ComputeSimRank(*graph, options.engine);
  if (!run.ok()) {
    std::fprintf(stderr, "SimRank failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "%s: %u iterations, %.3f s (setup %.3f s), %llu additions, "
               "%llu B intermediate\n",
               simrank::AlgorithmName(options.engine.algorithm),
               run->stats.iterations, run->stats.seconds_total(),
               run->stats.seconds_setup,
               static_cast<unsigned long long>(run->stats.ops.total_adds()),
               static_cast<unsigned long long>(run->stats.aux_peak_bytes));

  if (options.query >= 0) {
    if (options.query >= graph->n()) {
      std::fprintf(stderr, "query vertex out of range\n");
      return 1;
    }
    auto top = simrank::TopKSimilar(
        run->scores, static_cast<simrank::VertexId>(options.query),
        options.topk);
    std::printf("# top-%u similar to %lld\n", options.topk,
                static_cast<long long>(options.query));
    for (const auto& sv : top) {
      std::printf("%u\t%.6f\n", sv.vertex, sv.score);
    }
  }

  if (!options.csv_path.empty()) {
    simrank::CsvWriter csv({"src", "dst", "score"});
    if (options.query >= 0) {
      const auto q = static_cast<simrank::VertexId>(options.query);
      for (uint32_t v = 0; v < graph->n(); ++v) {
        csv.AddRow({simrank::StrFormat("%u", q), simrank::StrFormat("%u", v),
                    simrank::StrFormat("%.8f", run->scores(q, v))});
      }
    } else {
      if (graph->n() > 2000) {
        std::fprintf(stderr,
                     "refusing to dump full matrix for n > 2000; "
                     "use --query\n");
        return 1;
      }
      for (uint32_t a = 0; a < graph->n(); ++a) {
        for (uint32_t b = 0; b < graph->n(); ++b) {
          if (run->scores(a, b) == 0.0) continue;
          csv.AddRow({simrank::StrFormat("%u", a),
                      simrank::StrFormat("%u", b),
                      simrank::StrFormat("%.8f", run->scores(a, b))});
        }
      }
    }
    auto status = csv.WriteToFile(options.csv_path);
    if (!status.ok()) {
      std::fprintf(stderr, "csv write failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s (%zu rows)\n", options.csv_path.c_str(),
                 csv.num_rows());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return RealMain(argc, argv); }
